//! The refinement-check engine: instruction-by-instruction verification
//! of an RTL implementation against its (module-)ILA specification.
//!
//! For each atomic instruction the engine builds the property of Fig. 5:
//! starting from any RTL state whose mapped signals agree with the ILA
//! architectural state (plus user invariants), if the instruction's
//! start condition holds, then after the instruction finishes in the RTL
//! the mapped signals again agree with the ILA state produced by the
//! instruction's next-state functions. Each property is discharged by
//! bit-blasting to SAT; a satisfying assignment is a counterexample
//! trace, UNSAT is a proof for that instruction.
//!
//! Checks are planned per port ([`PortPlan`]: signal resolution and
//! condition parsing happen once), then executed either sequentially or
//! on the work-stealing pool in [`crate::scheduler`], where each worker
//! owns a persistent unrolling and incremental solver so the blasted
//! transition relation and learned clauses are paid once per worker.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gila_core::{Instruction, ModuleIla, PortIla};
use gila_expr::{import, import_mapped, simplify_cached, ExprNode, ExprRef, Op, Sort, Value};
use gila_mc::{coi_slice, support, CoiStats, TransitionSystem, Unrolling};
use gila_rtl::{parse_rtl_expr, RtlModule, VerilogError};
use gila_smt::{
    BlastStats, CancelToken, InprocessConfig, InprocessStats, ResourceOut, SmtResult, SmtSolver,
    SolveLimits, SolverStats,
};
use gila_trace::{Event, SpanKind, Telemetry, Tracer};

use crate::checkpoint::CheckpointWriter;
use crate::fault::{FaultAction, FaultPlan};
use crate::refmap::{FinishCondition, InputPolicy, RefinementMap};

/// An error in the verification setup (not a property failure).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A refinement-map entry names an RTL signal that does not exist.
    UnknownRtlSignal {
        /// The missing signal.
        signal: String,
        /// Which map entry referenced it.
        context: String,
    },
    /// An ILA state or input has no refinement-map entry but appears in
    /// the instruction being checked.
    UnmappedIlaVar {
        /// The unmapped variable.
        var: String,
        /// The instruction being checked.
        instruction: String,
    },
    /// Mapped ILA/RTL pair have incompatible sorts.
    SortMismatch {
        /// The ILA state or input.
        ila: String,
        /// Its sort.
        ila_sort: Sort,
        /// The RTL signal.
        rtl: String,
        /// Its sort.
        rtl_sort: Sort,
    },
    /// A Verilog condition string failed to parse or elaborate.
    Verilog(
        /// The underlying error.
        VerilogError,
    ),
    /// A finish bound of zero cycles was requested.
    BadBound,
    /// The [`VerifyOptions`] combine settings that contradict each other
    /// (e.g. the legacy `parallel` flag with `stop_at_first_cex`).
    BadOptions {
        /// Which combination is rejected and what to use instead.
        reason: String,
    },
    /// The RTL module is internally inconsistent (e.g. an init value
    /// whose sort does not match its register, or a next-state function
    /// for an undeclared signal).
    MalformedRtl {
        /// What was inconsistent.
        reason: String,
    },
    /// A checkpoint file could not be written, read, or parsed.
    Checkpoint {
        /// The offending file.
        path: String,
        /// The underlying problem.
        reason: String,
    },
    /// An internal engine failure (e.g. the worker pool could not be
    /// joined). These map to the CLI's "internal error" exit code.
    Internal {
        /// What failed.
        reason: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnknownRtlSignal { signal, context } => {
                write!(f, "{context}: RTL has no signal {signal:?}")
            }
            VerifyError::UnmappedIlaVar { var, instruction } => write!(
                f,
                "instruction {instruction:?} references ILA variable {var:?} with no refinement-map entry"
            ),
            VerifyError::SortMismatch {
                ila,
                ila_sort,
                rtl,
                rtl_sort,
            } => write!(
                f,
                "ILA {ila:?} ({ila_sort}) cannot map to RTL {rtl:?} ({rtl_sort})"
            ),
            VerifyError::Verilog(e) => write!(f, "{e}"),
            VerifyError::BadBound => write!(f, "finish condition must allow at least one cycle"),
            VerifyError::BadOptions { reason } => write!(f, "conflicting options: {reason}"),
            VerifyError::MalformedRtl { reason } => write!(f, "malformed RTL: {reason}"),
            VerifyError::Checkpoint { path, reason } => {
                write!(f, "checkpoint {path}: {reason}")
            }
            VerifyError::Internal { reason } => write!(f, "internal error: {reason}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<VerilogError> for VerifyError {
    fn from(e: VerilogError) -> Self {
        VerifyError::Verilog(e)
    }
}

/// A counterexample to one instruction's refinement property.
#[derive(Clone, Debug)]
pub struct RefinementCex {
    /// The cycle at which the equivalence check failed.
    pub finish_cycle: usize,
    /// RTL state at cycle 0 (the symbolic start the solver chose).
    pub rtl_start_state: BTreeMap<String, Value>,
    /// RTL inputs per cycle, `0..finish_cycle`.
    pub rtl_inputs: Vec<BTreeMap<String, Value>>,
    /// RTL state at every cycle `0..=finish_cycle` (index 0 equals
    /// `rtl_start_state`, the last entry equals `rtl_finish_state`).
    pub rtl_trace: Vec<BTreeMap<String, Value>>,
    /// RTL state at the finish cycle.
    pub rtl_finish_state: BTreeMap<String, Value>,
    /// ILA architectural state after the instruction (per mapped state).
    pub ila_post_state: BTreeMap<String, Value>,
    /// The mapped states that disagree at the finish cycle.
    pub mismatched_states: Vec<String>,
}

/// Per-job resource budget. Applies to every SAT query a job issues;
/// the wall-clock allowance is armed when the job's attempt starts.
/// `Default` is unbounded (today's behavior).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveBudget {
    /// Maximum SAT conflicts per query before the query gives up.
    pub conflicts: Option<u64>,
    /// Wall-clock allowance per job attempt.
    pub timeout: Option<Duration>,
}

impl SolveBudget {
    /// True if no limit is configured.
    pub fn is_unbounded(&self) -> bool {
        self.conflicts.is_none() && self.timeout.is_none()
    }

    /// The budget for retry attempt `attempt` (0 = the first try):
    /// every limit grows geometrically, 4x per retry, so a handful of
    /// retries spans orders of magnitude. A zero timeout stays zero —
    /// it means "give up immediately", not "escalate from nothing".
    pub(crate) fn escalated(&self, attempt: u32) -> SolveBudget {
        let factor = 4u64.saturating_pow(attempt);
        SolveBudget {
            conflicts: self.conflicts.map(|c| c.saturating_mul(factor)),
            timeout: self.timeout.map(|t| t.saturating_mul(factor.min(u32::MAX as u64) as u32)),
        }
    }

    /// Converts to solver limits, arming the deadline now.
    pub(crate) fn to_limits(self) -> SolveLimits {
        SolveLimits {
            conflicts: self.conflicts,
            propagations: None,
            deadline: self.timeout.map(|t| Instant::now() + t),
        }
    }
}

/// What a job that gave up actually consumed, across all its attempts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BudgetSpent {
    /// SAT conflicts over all attempts.
    pub conflicts: u64,
    /// SAT propagations over all attempts.
    pub propagations: u64,
    /// Wall-clock time over all attempts.
    pub wall: Duration,
    /// How many attempts ran (1 = no retries).
    pub attempts: u32,
}

/// Result of checking one instruction.
#[derive(Clone, Debug)]
pub enum CheckResult {
    /// The refinement property holds (the SAT query was UNSAT).
    Holds,
    /// A counterexample was found.
    CounterExample(
        /// The witnessing trace.
        Box<RefinementCex>,
    ),
    /// A `Condition` finish never occurred within its bound (the check
    /// is vacuous; reported so the user can raise the bound).
    FinishNotReached {
        /// The bound that was exhausted.
        max_cycles: usize,
    },
    /// The job gave up: every attempt exhausted its solve budget (or
    /// the run was cancelled mid-solve). Neither a proof nor a
    /// counterexample — rerun with a larger budget to decide it.
    Unknown {
        /// Which resource ran out on the final attempt.
        reason: ResourceOut,
        /// What the job consumed before giving up.
        budget_spent: BudgetSpent,
    },
    /// The job panicked and was isolated by the scheduler; the rest of
    /// the run is unaffected.
    JobPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl CheckResult {
    /// True for [`CheckResult::Holds`].
    pub fn holds(&self) -> bool {
        matches!(self, CheckResult::Holds)
    }

    /// True for [`CheckResult::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, CheckResult::Unknown { .. })
    }

    /// True for [`CheckResult::JobPanicked`].
    pub fn is_panicked(&self) -> bool {
        matches!(self, CheckResult::JobPanicked { .. })
    }

    /// Stable lowercase tag, used in trace spans and checkpoints.
    pub fn tag(&self) -> &'static str {
        match self {
            CheckResult::Holds => "holds",
            CheckResult::CounterExample(_) => "cex",
            CheckResult::FinishNotReached { .. } => "unreached",
            CheckResult::Unknown { .. } => "unknown",
            CheckResult::JobPanicked { .. } => "panicked",
        }
    }
}

/// Per-instruction verdict with effort statistics.
#[derive(Clone, Debug)]
pub struct InstrVerdict {
    /// The atomic instruction's name.
    pub instruction: String,
    /// The outcome.
    pub result: CheckResult,
    /// Wall-clock time spent on this instruction.
    pub time: Duration,
    /// CNF size of the solver that served this instruction, measured
    /// when its check finished (cumulative for shared/pooled engines).
    pub stats: BlastStats,
    /// How much CNF this instruction *added* to its solver. On a
    /// persistent engine (incremental mode or a pool worker) this drops
    /// sharply after the first instruction: the blasted transition
    /// relation is reused, so later instructions pay only for their
    /// start conditions and post-state equalities.
    pub cnf_growth: BlastStats,
    /// SAT-solver effort this instruction alone cost (per-instruction
    /// deltas of the shared solver's counters; `learnt_clauses` is the
    /// delta too, saturating at zero under clause deletion).
    pub effort: SolverStats,
    /// Number of SAT checks issued for this instruction.
    pub solves: u64,
    /// How many extra attempts the budget-escalation loop ran after the
    /// first one exhausted its budget (0 when the first attempt decided
    /// the job or no budget was configured).
    pub retries: u32,
    /// Pool worker that served this instruction (`None` when run
    /// sequentially).
    pub worker: Option<usize>,
    /// Scheduler batch this instruction was dispatched in (`None` when
    /// run sequentially). Under port batching one work item carries a
    /// whole port (or chunk of one), so `queue_ns` and `stolen` below
    /// describe the *batch*, not the individual instruction; the batch
    /// id lets `--stats` queue-latency rows aggregate per dispatch
    /// instead of multiply-counting one pickup.
    pub batch_id: Option<u64>,
    /// Number of instructions in this verdict's batch (0 when run
    /// sequentially, 1 when batching is off).
    pub batch_size: u64,
    /// Time this verdict's *batch* spent queued before a worker picked
    /// it up, in nanoseconds (zero when run sequentially). Shared by
    /// every verdict of the batch.
    pub queue_ns: u64,
    /// Whether this verdict's *batch* was stolen from a peer's deque
    /// rather than taken from the worker's own queue or the global
    /// injector. Shared by every verdict of the batch.
    pub stolen: bool,
    /// Learnt clauses this instruction's worker published to the shared
    /// clause pool after the check (0 unless `--share-clauses`).
    pub clauses_exported: u64,
    /// Shared-pool clauses imported into the worker's solver after the
    /// check (0 unless `--share-clauses`).
    pub clauses_imported: u64,
    /// Shared-pool clauses skipped by the worker's dedup filter —
    /// already imported earlier or published by the worker itself.
    pub clauses_deduped: u64,
    /// What the inprocessing pass run after this job reclaimed from the
    /// shared clause database (all-zero when preprocessing is off or
    /// the pass found nothing).
    pub inprocess: InprocessStats,
}

/// The verification report for one port.
#[derive(Clone, Debug)]
pub struct PortReport {
    /// The port's name.
    pub port: String,
    /// One verdict per atomic instruction, in declaration order.
    pub verdicts: Vec<InstrVerdict>,
    /// Total wall-clock time.
    pub total_time: Duration,
    /// Peak CNF size over all queries (the "memory usage" proxy).
    pub peak_stats: BlastStats,
    /// Aggregated solver/CNF/scheduling totals over the port's verdicts
    /// — the same numbers the CLI `--stats` table prints.
    pub telemetry: Telemetry,
}

/// Aggregate pass/fail/unknown tallies over a report's verdicts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerdictCounts {
    /// Instructions whose property holds.
    pub holds: usize,
    /// Instructions with a counterexample.
    pub cex: usize,
    /// Vacuous checks (finish condition never reached).
    pub unreached: usize,
    /// Jobs that exhausted their budget (or were cancelled).
    pub unknown: usize,
    /// Jobs that panicked and were isolated.
    pub panicked: usize,
}

impl VerdictCounts {
    fn tally(counts: &mut VerdictCounts, verdicts: &[InstrVerdict]) {
        for v in verdicts {
            match &v.result {
                CheckResult::Holds => counts.holds += 1,
                CheckResult::CounterExample(_) => counts.cex += 1,
                CheckResult::FinishNotReached { .. } => counts.unreached += 1,
                CheckResult::Unknown { .. } => counts.unknown += 1,
                CheckResult::JobPanicked { .. } => counts.panicked += 1,
            }
        }
    }
}

impl PortReport {
    /// True if every instruction's property holds.
    pub fn all_hold(&self) -> bool {
        self.verdicts.iter().all(|v| v.result.holds())
    }

    /// Pass/fail/unknown tallies over this port's verdicts.
    pub fn counts(&self) -> VerdictCounts {
        let mut c = VerdictCounts::default();
        VerdictCounts::tally(&mut c, &self.verdicts);
        c
    }

    /// The first counterexample, if any.
    pub fn first_counterexample(&self) -> Option<&InstrVerdict> {
        self.verdicts
            .iter()
            .find(|v| matches!(v.result, CheckResult::CounterExample(_)))
    }

    /// Time until the first counterexample was found (the paper's
    /// "Time (bug)" column), if any.
    pub fn time_to_first_counterexample(&self) -> Option<Duration> {
        let mut acc = Duration::ZERO;
        for v in &self.verdicts {
            acc += v.time;
            if matches!(v.result, CheckResult::CounterExample(_)) {
                return Some(acc);
            }
        }
        None
    }
}

/// The verification report for a whole module-ILA.
#[derive(Clone, Debug)]
pub struct ModuleReport {
    /// The module's name.
    pub module: String,
    /// One report per port.
    pub ports: Vec<PortReport>,
    /// Aggregated totals across all ports (counters sum; `workers` is
    /// the number of pool workers spawned, 1 for sequential runs).
    pub telemetry: Telemetry,
}

impl ModuleReport {
    /// True if every port verifies.
    pub fn all_hold(&self) -> bool {
        self.ports.iter().all(|p| p.all_hold())
    }

    /// Pass/fail/unknown tallies across all ports.
    pub fn counts(&self) -> VerdictCounts {
        let mut c = VerdictCounts::default();
        for p in &self.ports {
            VerdictCounts::tally(&mut c, &p.verdicts);
        }
        c
    }

    /// Total wall-clock time across ports.
    pub fn total_time(&self) -> Duration {
        self.ports.iter().map(|p| p.total_time).sum()
    }

    /// Component-wise peak CNF size across ports.
    pub fn peak_stats(&self) -> BlastStats {
        let mut peak = BlastStats::default();
        for p in &self.ports {
            peak = peak.max(p.peak_stats);
        }
        peak
    }

    /// Time until the first counterexample across ports ("Time (bug)").
    pub fn time_to_first_counterexample(&self) -> Option<Duration> {
        let mut acc = Duration::ZERO;
        for p in &self.ports {
            for v in &p.verdicts {
                acc += v.time;
                if matches!(v.result, CheckResult::CounterExample(_)) {
                    return Some(acc);
                }
            }
        }
        None
    }

    /// Total number of instructions checked.
    pub fn instructions_checked(&self) -> usize {
        self.ports.iter().map(|p| p.verdicts.len()).sum()
    }
}

/// Options controlling a verification run.
#[derive(Clone, Debug)]
pub struct VerifyOptions {
    /// Stop a port's run at the first counterexample (used for the
    /// "Time (bug)" measurement). Under a worker pool (`jobs`) this
    /// cancels outstanding work as soon as any worker finds one.
    pub stop_at_first_cex: bool,
    /// Legacy flag: check a port's instructions on parallel threads.
    /// Now served by a bounded worker pool; conflicts with
    /// `stop_at_first_cex`, `incremental`, and `jobs` (a
    /// [`VerifyError::BadOptions`] error). Prefer `jobs`.
    pub parallel: bool,
    /// Share one incremental SAT solver (and one unrolling) across all
    /// of a port's instructions, discharging each property under
    /// assumptions so learned clauses and the blasted transition
    /// relation are reused. Pool workers (`jobs` ≥ 2) are always
    /// incremental in this sense; with `jobs = Some(1)` this picks the
    /// shared-engine sequential path.
    pub incremental: bool,
    /// Size of the work-stealing verification pool:
    /// `None` — legacy behavior (sequential, or `parallel`/`incremental`
    /// if set); `Some(0)` — one worker per available CPU;
    /// `Some(1)` — sequential; `Some(n)` — a pool of exactly `n`
    /// workers, each owning a persistent unrolling + incremental solver.
    pub jobs: Option<usize>,
    /// Telemetry tracer; every unroll/blast/solve/instruction/port
    /// event of the run is emitted through it. Defaults to the
    /// disabled (no-op) tracer, which costs one branch per event site.
    pub tracer: Tracer,
    /// Per-job resource budget. Unbounded by default; with a limit set,
    /// a job that exhausts it reports [`CheckResult::Unknown`] instead
    /// of running forever.
    pub budget: SolveBudget,
    /// Extra attempts for a budget-exhausted job, each with a 4x larger
    /// budget ([`SolveBudget::escalated`]). Ignored when no budget is
    /// configured.
    pub retries: u32,
    /// Test-only fault injection: panics, forced unknowns, and delays
    /// per (port, instruction). `None` (the default) injects nothing.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Stream every decided verdict to this JSONL checkpoint file
    /// (created fresh, replacing any previous content).
    pub checkpoint: Option<PathBuf>,
    /// Resume from a checkpoint written by a previous run: jobs already
    /// decided there (holds / cex / unreached) are not re-verified, and
    /// newly decided verdicts are appended to the same file. `unknown`
    /// and `panicked` entries are re-verified.
    pub resume: Option<PathBuf>,
    /// Formula preprocessing (on by default; `--no-preprocess` for A/B
    /// comparisons): cone-of-influence slicing of the transition system
    /// per port plan, cached expression simplification before blasting,
    /// persistent per-port solver reuse on the sequential path, and a
    /// bounded SAT inprocessing pass between instructions.
    pub preprocess: bool,
    /// Batch pool jobs per port (on by default; `--no-batch-ports` for
    /// A/B comparisons): one work item carries a whole `PortPlan` — or
    /// a chunk of one when the port has more instructions than the
    /// pool can otherwise keep busy — so a single worker amortizes one
    /// unrolling + blast across the port instead of paying it per
    /// instruction. Off, the pool reverts to one job per
    /// `(port, instruction)` pair.
    pub batch_ports: bool,
    /// Adaptive sequential fallback: a pooled run whose estimated blast
    /// work ([`ctx.dag_size`](gila_expr::ExprCtx::dag_size) of each
    /// port's sliced frame logic times its unroll depth) falls below
    /// this threshold routes to the persistent sequential engine
    /// instead, so small designs never pay pool overhead. `0` disables
    /// the fallback (always pool when `jobs` asks for one).
    pub par_threshold: u64,
    /// Exchange short learnt clauses between pool workers serving the
    /// same port (off by default): workers publish activation-free
    /// learnt clauses over the port's shared CNF prefix to a
    /// lock-striped pool between instructions and import what peers
    /// published. Changes solver effort, never verdicts.
    pub share_clauses: bool,
    /// External cancellation: when this token is cancelled (by a
    /// disconnecting client, a watchdog, or any other supervisor), every
    /// engine of the run fast-fails its remaining solves with
    /// [`CheckResult::Unknown`] (`reason: cancelled`). `None` (the
    /// default) leaves cancellation to the run's internal token.
    pub cancel: Option<CancelToken>,
    /// Externally decided verdicts keyed by `(port, instruction)` — the
    /// proof cache's seam. Jobs found here are not re-verified; they are
    /// merged with `resume` entries (and win over them) and flow into
    /// reports exactly like resumed checkpoint verdicts, with zero
    /// solver work.
    pub decided: HashMap<(String, String), InstrVerdict>,
    /// Abstract interpretation (on by default; `--no-absint` for A/B
    /// comparisons): run the `gila-absint` widening fixpoint over each
    /// port's sliced transition system and assert every proven
    /// invariant as a step-implication lemma (`I(j-1) → I(j)`, never
    /// `I(0)`) before BMC. The lemmas are consequences of the raw
    /// transition relation, so they prune solver search without ever
    /// changing a verdict. Ports whose estimated solver work is below
    /// [`ABSINT_WORK_THRESHOLD`] skip the fixpoint — the lemmas cannot
    /// repay their cost there (verdicts are identical either way).
    pub absint: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            stop_at_first_cex: false,
            parallel: false,
            incremental: false,
            jobs: None,
            tracer: Tracer::default(),
            budget: SolveBudget::default(),
            retries: 0,
            fault_plan: None,
            checkpoint: None,
            resume: None,
            preprocess: true,
            batch_ports: true,
            par_threshold: DEFAULT_PAR_THRESHOLD,
            share_clauses: false,
            cancel: None,
            decided: HashMap::new(),
            absint: true,
        }
    }
}

/// Default for [`VerifyOptions::par_threshold`], tuned on the bundled
/// case studies (`BENCH_verify.json`): designs whose estimated blast
/// work sits below this run faster on the persistent sequential engine
/// than on a pool, because their solve time is too small to amortize
/// worker spawn + per-worker blast duplication. On the bundled designs
/// the split is wide — the control-dominated modules (decoder, AXI,
/// memory interface, L2 cache) estimate below ~17.5k weighted clause
/// groups and lose time on the pool, while the solver-bound ones
/// (store buffer, NoC router, datapath) estimate above ~19k and gain
/// 1.2-1.6x from it.
pub const DEFAULT_PAR_THRESHOLD: u64 = 18_000;

/// The per-job knobs a scheduler threads through to every check.
#[derive(Clone, Default)]
pub(crate) struct JobPolicy {
    pub(crate) budget: SolveBudget,
    pub(crate) retries: u32,
    pub(crate) fault: Option<Arc<FaultPlan>>,
    /// Preprocessing on the job path: cached simplification before
    /// blasting and an inprocessing pass after each job.
    pub(crate) preprocess: bool,
    /// External cancellation token installed on every engine the run
    /// creates (see [`VerifyOptions::cancel`]).
    pub(crate) cancel: Option<CancelToken>,
}

/// Shared run state: job policy, checkpoint sink, and verdicts resumed
/// from a previous run's checkpoint, keyed by `(port, instruction)`.
pub(crate) struct RunCtx<'t> {
    pub(crate) policy: JobPolicy,
    pub(crate) tracer: &'t Tracer,
    pub(crate) checkpoint: Option<Arc<CheckpointWriter>>,
    pub(crate) resumed: HashMap<(String, String), InstrVerdict>,
}

impl<'t> RunCtx<'t> {
    /// A plain context with no budget, faults, or checkpointing.
    #[cfg(test)]
    pub(crate) fn plain(tracer: &'t Tracer) -> Self {
        RunCtx {
            policy: JobPolicy::default(),
            tracer,
            checkpoint: None,
            resumed: HashMap::new(),
        }
    }

    fn from_opts(opts: &'t VerifyOptions) -> Result<Self, VerifyError> {
        let mut resumed = match &opts.resume {
            Some(path) => crate::checkpoint::load_resume(path)?,
            None => HashMap::new(),
        };
        // Externally decided verdicts (the proof cache) win over resumed
        // checkpoint entries: the cache key covers the property content,
        // a checkpoint file only its name.
        resumed.extend(opts.decided.clone());
        // `--checkpoint` starts a fresh file; `--resume` alone keeps
        // appending to the file it read, so an interrupted resumed run
        // can itself be resumed.
        let checkpoint = match (&opts.checkpoint, &opts.resume) {
            (Some(path), _) => Some(Arc::new(CheckpointWriter::create(path)?)),
            (None, Some(path)) => Some(Arc::new(CheckpointWriter::append(path)?)),
            (None, None) => None,
        };
        Ok(RunCtx {
            policy: JobPolicy {
                budget: opts.budget,
                retries: opts.retries,
                fault: opts.fault_plan.clone(),
                preprocess: opts.preprocess,
                cancel: opts.cancel.clone(),
            },
            tracer: &opts.tracer,
            checkpoint,
            resumed,
        })
    }

    /// The resumed verdict for a job, if its checkpoint entry decided it.
    pub(crate) fn resumed_verdict(&self, port: &str, instr: &str) -> Option<InstrVerdict> {
        self.resumed
            .get(&(port.to_string(), instr.to_string()))
            .cloned()
    }

    /// Streams a decided verdict to the checkpoint, if one is open.
    /// Write failures are swallowed: a broken checkpoint must not take
    /// down an otherwise healthy verification run.
    pub(crate) fn record_checkpoint(&self, port: &str, verdict: &InstrVerdict) {
        if let Some(w) = &self.checkpoint {
            w.record(port, verdict);
        }
    }
}

/// Scheduling context of one job, recorded into its verdict and its
/// instruction span.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct JobMeta {
    pub(crate) worker: Option<usize>,
    pub(crate) queue_ns: u64,
    pub(crate) stolen: bool,
    /// Scheduler batch the job was dispatched in (pool runs only).
    pub(crate) batch_id: Option<u64>,
    /// Instructions in the batch (0 on the sequential path).
    pub(crate) batch_size: u64,
}

/// One worker's persistent verification state: a single unrolling of
/// the RTL transition system and a single incremental solver that
/// accumulates the blasted transition relation and learned clauses
/// across every instruction the worker serves. Per-instruction
/// conditions live in solver scopes ([`SmtSolver::push_scope`]) so they
/// retract without discarding the CNF.
pub(crate) struct WorkerEngine {
    pub(crate) u: Unrolling,
    pub(crate) smt: SmtSolver,
    /// Memo table for [`simplify_cached`], shared across every
    /// instruction this engine serves: the unrolling's context only
    /// grows (hash-consing survives rollback), so simplifications of
    /// the common next-state logic are computed once per engine.
    pub(crate) simplify_memo: HashMap<ExprRef, ExprRef>,
    /// Total blasted clauses when the last inprocessing pass ran;
    /// inprocessing is amortized against CNF growth (see
    /// [`run_job_guarded`]), so small engines are never scanned
    /// repeatedly for nothing.
    pub(crate) inprocess_mark: u64,
}

impl WorkerEngine {
    /// A fresh engine over `ts` with nothing blasted yet. The tracer
    /// receives the engine's unrolling events.
    pub(crate) fn new(ts: &TransitionSystem, tracer: &Tracer) -> Self {
        let mut u = Unrolling::new(ts, false);
        u.set_tracer(tracer.clone());
        WorkerEngine {
            u,
            smt: SmtSolver::new(),
            simplify_memo: HashMap::new(),
            inprocess_mark: 0,
        }
    }
}

/// Converts an RTL module into a transition system (same state/input
/// names) plus a map from every named signal (inputs, registers,
/// memories, wires) to its expression in the system's context.
///
/// Useful beyond refinement checking: BMC, k-induction, and liveness
/// checking of RTL modules all go through this conversion.
///
/// # Errors
///
/// [`VerifyError::MalformedRtl`] if the module is internally
/// inconsistent — an init value whose sort disagrees with its signal,
/// or a next-state function for a signal the module never declared.
pub fn rtl_to_ts(
    rtl: &RtlModule,
) -> Result<(TransitionSystem, BTreeMap<String, ExprRef>), VerifyError> {
    let malformed = |what: &str, name: &str, e: &dyn fmt::Display| VerifyError::MalformedRtl {
        reason: format!("{what} of {name:?}: {e}"),
    };
    let mut ts = TransitionSystem::new(rtl.name());
    for i in rtl.inputs() {
        ts.input(i.name.clone(), Sort::Bv(i.width));
    }
    for r in rtl.regs() {
        ts.state(r.name.clone(), Sort::Bv(r.width));
        if let Some(init) = &r.init {
            ts.set_init(&r.name, init.clone())
                .map_err(|e| malformed("init value", &r.name, &e))?;
        }
    }
    for m in rtl.mems() {
        ts.state(
            m.name.clone(),
            Sort::Mem {
                addr_width: m.addr_width,
                data_width: m.data_width,
            },
        );
        if let Some(init) = &m.init {
            ts.set_init(&m.name, init.clone())
                .map_err(|e| malformed("init value", &m.name, &e))?;
        }
    }
    let mut memo = HashMap::new();
    for r in rtl.regs() {
        let next = import(ts.ctx_mut(), rtl.ctx(), r.next, &mut memo);
        ts.set_next(&r.name, next)
            .map_err(|e| malformed("next-state function", &r.name, &e))?;
    }
    for m in rtl.mems() {
        let next = import(ts.ctx_mut(), rtl.ctx(), m.next, &mut memo);
        ts.set_next(&m.name, next)
            .map_err(|e| malformed("next-state function", &m.name, &e))?;
    }
    let mut signals = BTreeMap::new();
    let lookup = |ts: &TransitionSystem, name: &str| {
        ts.ctx().find_var(name).ok_or_else(|| VerifyError::MalformedRtl {
            reason: format!("signal {name:?} vanished after declaration"),
        })
    };
    for i in rtl.inputs() {
        signals.insert(i.name.clone(), lookup(&ts, &i.name)?);
    }
    for r in rtl.regs() {
        signals.insert(r.name.clone(), lookup(&ts, &r.name)?);
    }
    for m in rtl.mems() {
        signals.insert(m.name.clone(), lookup(&ts, &m.name)?);
    }
    for s in rtl.signals() {
        let e = import(ts.ctx_mut(), rtl.ctx(), s.expr, &mut memo);
        signals.insert(s.name.clone(), e);
    }
    Ok((ts, signals))
}

/// Everything about one instruction that can be computed before any
/// solver exists.
pub(crate) struct InstrPlan {
    /// Unrolling depth (the finish cycle, or the `Condition` bound).
    pub(crate) bound: usize,
    /// Parsed finish condition, in the plan's scratch-RTL context.
    pub(crate) finish_expr: Option<ExprRef>,
    /// Parsed start strengthening, in the plan's scratch-RTL context.
    pub(crate) strengthening: Option<ExprRef>,
    pub(crate) input_policy: InputPolicy,
}

/// A port's verification work, planned once and then executed by any
/// number of engines: mapped signals resolved against the transition
/// system, and every Verilog condition string (invariants,
/// strengthenings, finish conditions) parsed exactly once into a single
/// scratch copy of the RTL — instead of re-cloning and re-parsing the
/// whole module per instruction.
pub(crate) struct PortPlan<'a> {
    pub(crate) port: &'a PortIla,
    pub(crate) map: &'a RefinementMap,
    /// `(ila state, ts expr, ila sort)` per state-map entry.
    pub(crate) mapped_states: Vec<(String, ExprRef, Sort)>,
    /// `(ila input, ts expr, ila sort)` per interface-map entry.
    pub(crate) mapped_inputs: Vec<(String, ExprRef, Sort)>,
    /// Scratch RTL whose context owns all parsed condition expressions.
    pub(crate) cond_rtl: RtlModule,
    /// Parsed invariants, in `cond_rtl`'s context.
    pub(crate) invariants: Vec<ExprRef>,
    pub(crate) instrs: Vec<InstrPlan>,
    /// Conjunction of every invariant the abstract interpreter proved
    /// over the port's (sliced) transition system, interned in that
    /// system's context — `None` until [`absint_preprocess`] runs, or
    /// when it proves nothing.
    pub(crate) absint_lemma: Option<ExprRef>,
    /// How many individual invariants the lemma conjoins.
    pub(crate) invariants_proved: u64,
}

impl<'a> PortPlan<'a> {
    /// Resolves the refinement map against `ts_signals` (from
    /// [`rtl_to_ts`]) and parses all condition strings.
    pub(crate) fn build(
        port: &'a PortIla,
        rtl: &RtlModule,
        map: &'a RefinementMap,
        ts_signals: &BTreeMap<String, ExprRef>,
    ) -> Result<Self, VerifyError> {
        let lookup_signal = |name: &str, context: &str| -> Result<ExprRef, VerifyError> {
            ts_signals
                .get(name)
                .copied()
                .ok_or_else(|| VerifyError::UnknownRtlSignal {
                    signal: name.to_string(),
                    context: context.to_string(),
                })
        };

        let mut mapped_states: Vec<(String, ExprRef, Sort)> = Vec::new();
        for (ila_state, rtl_name) in &map.state_map {
            let sv = port.find_state(ila_state).ok_or_else(|| {
                VerifyError::UnknownRtlSignal {
                    signal: ila_state.clone(),
                    context: format!("state map of {}: no such ILA state", map.name),
                }
            })?;
            let e = lookup_signal(rtl_name, "state map")?;
            mapped_states.push((ila_state.clone(), e, sv.sort));
        }
        let mut mapped_inputs: Vec<(String, ExprRef, Sort)> = Vec::new();
        for (ila_input, rtl_name) in &map.interface_map {
            let iv = port.find_input(ila_input).ok_or_else(|| {
                VerifyError::UnknownRtlSignal {
                    signal: ila_input.clone(),
                    context: format!("interface map of {}: no such ILA input", map.name),
                }
            })?;
            let e = lookup_signal(rtl_name, "interface map")?;
            mapped_inputs.push((ila_input.clone(), e, iv.sort));
        }

        // Parse every condition string once, all into one scratch RTL
        // (parsing needs &mut for expression interning).
        let mut cond_rtl = rtl.clone();
        let mut invariants = Vec::new();
        for inv in &map.invariants {
            invariants.push(parse_rtl_expr(&mut cond_rtl, inv)?);
        }
        let mut instrs = Vec::new();
        for instr in port.instructions() {
            let imap = map.instruction_map_for(&instr.name);
            let (bound, finish_src) = match &imap.finish {
                FinishCondition::Cycles(n) => {
                    if *n == 0 {
                        return Err(VerifyError::BadBound);
                    }
                    (*n, None)
                }
                FinishCondition::Condition { expr, max_cycles } => {
                    if *max_cycles == 0 {
                        return Err(VerifyError::BadBound);
                    }
                    (*max_cycles, Some(expr.clone()))
                }
            };
            let finish_expr = match &finish_src {
                Some(s) => Some(parse_rtl_expr(&mut cond_rtl, s)?),
                None => None,
            };
            let strengthening = match &imap.start_strengthening {
                Some(s) => Some(parse_rtl_expr(&mut cond_rtl, s)?),
                None => None,
            };
            instrs.push(InstrPlan {
                bound,
                finish_expr,
                strengthening,
                input_policy: imap.input_policy,
            });
        }
        Ok(PortPlan {
            port,
            map,
            mapped_states,
            mapped_inputs,
            cond_rtl,
            invariants,
            instrs,
            absint_lemma: None,
            invariants_proved: 0,
        })
    }
}

/// Checks one planned instruction on the given engine.
///
/// The engine's unrolling is extended to the instruction's bound (a
/// no-op if a previous instruction already went deeper — re-extension
/// after rollback is bit-identical, see [`Unrolling::rollback_to`]),
/// and all per-instruction conditions are confined to one solver scope
/// so they retract afterwards while the blasted CNF stays cached. On
/// error the engine is restored, so a worker can keep serving jobs.
pub(crate) fn check_instruction_planned(
    plan: &PortPlan<'_>,
    idx: usize,
    engine: &mut WorkerEngine,
    tracer: &Tracer,
    meta: JobMeta,
    policy: &JobPolicy,
) -> Result<InstrVerdict, VerifyError> {
    let t0 = Instant::now();
    let instr = &plan.port.instructions()[idx];

    // Test-only fault injection. An injected panic exercises the
    // schedulers' isolation; a forced unknown swaps this job's budget
    // for an already-expired deadline, so the Unknown flows through the
    // real resource-out machinery instead of being faked here.
    let mut budget = policy.budget;
    let mut retries = policy.retries;
    if let Some(fault) = policy.fault.as_deref() {
        match fault.fire(plan.port.name(), &instr.name) {
            Some(FaultAction::Panic(msg)) => panic!("injected fault: {msg}"),
            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(FaultAction::ForceUnknown) => {
                budget = SolveBudget {
                    conflicts: None,
                    timeout: Some(Duration::ZERO),
                };
                retries = 0;
            }
            None => {}
        }
    }

    let before = engine.smt.stats();
    let sat_before = engine.smt.sat_stats();
    let mut attempt = 0u32;
    let mut solves = 0u64;
    // Budget-escalation loop. Each attempt runs in its own solver scope
    // against the same persistent CNF, so learned clauses from an
    // exhausted attempt carry into the next, larger-budget one.
    let result = loop {
        engine.smt.set_limits(budget.escalated(attempt).to_limits());
        let snap = engine.u.snapshot();
        engine.u.extend_to(plan.instrs[idx].bound);
        engine.smt.push_scope();
        let result = check_instruction_inner(
            plan,
            idx,
            instr,
            engine,
            tracer,
            meta,
            &mut solves,
            policy.preprocess,
        );
        engine.smt.pop_scope();
        engine.smt.set_limits(SolveLimits::default());
        match result {
            Ok(CheckResult::Unknown { reason, .. }) => {
                let spent_so_far = engine.smt.sat_stats().since(sat_before);
                tracer.record(|| {
                    Event::new(SpanKind::BudgetExhausted)
                        .port(plan.port.name())
                        .instruction(&instr.name)
                        .label(reason.as_str())
                        .worker(meta.worker)
                        .field("attempt", attempt as u64)
                        .field("conflicts", spent_so_far.conflicts)
                });
                // Cancellation is a run-level abort, not a too-small
                // budget: retrying would only be cancelled again.
                if attempt < retries && reason != ResourceOut::Cancelled {
                    attempt += 1;
                    tracer.record(|| {
                        Event::new(SpanKind::Retry)
                            .port(plan.port.name())
                            .instruction(&instr.name)
                            .worker(meta.worker)
                            .field("attempt", attempt as u64)
                    });
                    continue;
                }
                break CheckResult::Unknown {
                    reason,
                    budget_spent: BudgetSpent {
                        conflicts: spent_so_far.conflicts,
                        propagations: spent_so_far.propagations,
                        wall: t0.elapsed(),
                        attempts: attempt + 1,
                    },
                };
            }
            Ok(result) => break result,
            Err(e) => {
                engine.u.rollback_to(snap);
                return Err(e);
            }
        }
    };
    let stats = engine.smt.stats();
    let sat_after = engine.smt.sat_stats();
    let mut effort = sat_after.since(sat_before);
    effort.learnt_clauses = sat_after.learnt_clauses.saturating_sub(sat_before.learnt_clauses);
    let cnf_growth = stats.since(before);
    let time = t0.elapsed();
    tracer.record(|| {
        Event::new(SpanKind::Blast)
            .port(plan.port.name())
            .instruction(&instr.name)
            .worker(meta.worker)
            .field("cnf_vars", cnf_growth.variables)
            .field("cnf_clauses", cnf_growth.clauses)
            .field("total_vars", stats.variables)
            .field("total_clauses", stats.clauses)
    });
    tracer.record(|| {
        let mut ev = Event::new(SpanKind::Instruction)
            .port(plan.port.name())
            .instruction(&instr.name)
            .label(result.tag())
            .worker(meta.worker)
            .field("solves", solves)
            .field("decisions", effort.decisions)
            .field("propagations", effort.propagations)
            .field("conflicts", effort.conflicts)
            .field("learnt_clauses", effort.learnt_clauses)
            .field("cnf_vars", cnf_growth.variables)
            .field("cnf_clauses", cnf_growth.clauses)
            .field("wall_ns", time.as_nanos() as u64)
            .field("queue_ns", meta.queue_ns)
            .field("steals", meta.stolen as u64);
        // Batch fields only exist on pooled runs, so sequential golden
        // traces are unchanged.
        if let Some(batch) = meta.batch_id {
            ev = ev.field("batch_id", batch).field("batch_size", meta.batch_size);
        }
        ev
    });
    Ok(InstrVerdict {
        instruction: instr.name.clone(),
        result,
        time,
        stats,
        cnf_growth,
        effort,
        solves,
        retries: attempt,
        worker: meta.worker,
        batch_id: meta.batch_id,
        batch_size: meta.batch_size,
        queue_ns: meta.queue_ns,
        stolen: meta.stolen,
        clauses_exported: 0,
        clauses_imported: 0,
        clauses_deduped: 0,
        inprocess: InprocessStats::default(),
    })
}

/// Runs one job with panic isolation: the check is wrapped in
/// [`catch_unwind`], and a panicking job becomes a
/// [`CheckResult::JobPanicked`] verdict instead of tearing down the
/// scheduler. The worker's engine is discarded on panic (its solver may
/// have been mid-update), so `engine_slot` comes back `None` and the
/// caller's `mk_engine` rebuilds it for the next job.
pub(crate) fn run_job_guarded(
    plan: &PortPlan<'_>,
    idx: usize,
    engine_slot: &mut Option<WorkerEngine>,
    mk_engine: impl FnOnce() -> WorkerEngine,
    tracer: &Tracer,
    meta: JobMeta,
    policy: &JobPolicy,
) -> Result<InstrVerdict, VerifyError> {
    let t0 = Instant::now();
    let engine = match engine_slot {
        Some(e) => e,
        None => engine_slot.insert(mk_engine()),
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        check_instruction_planned(plan, idx, engine, tracer, meta, policy)
    }));
    match outcome {
        Ok(mut res) => {
            // Inprocess between jobs, outside the job's effort window:
            // popped activation scopes leave permanently satisfied
            // clauses behind, and level-0 simplification of the shared
            // database benefits every later instruction on this engine.
            // Amortized: a pass scans the whole clause database, so it
            // only fires once the CNF has grown enough since the last
            // one to plausibly pay for the scan.
            const INPROCESS_GROWTH: u64 = 4096;
            if policy.preprocess {
                if let (Ok(v), Some(engine)) = (&mut res, engine_slot.as_mut()) {
                    let clauses = engine.smt.stats().clauses;
                    if clauses >= engine.inprocess_mark + INPROCESS_GROWTH {
                        engine.inprocess_mark = clauses;
                        let st = engine.smt.inprocess(&InprocessConfig::default());
                        v.inprocess = st;
                        if !st.is_noop() {
                            tracer.record(|| {
                                Event::new(SpanKind::Inprocess)
                                    .port(plan.port.name())
                                    .instruction(&v.instruction)
                                    .worker(meta.worker)
                                    .field("clauses_satisfied", st.clauses_satisfied)
                                    .field("clauses_subsumed", st.clauses_subsumed)
                                    .field("lits_removed", st.lits_removed)
                                    .field("failed_literals", st.failed_literals)
                                    .field("probes", st.probes)
                            });
                        }
                    }
                }
            }
            res
        }
        Err(payload) => {
            *engine_slot = None;
            let message = panic_message(payload.as_ref());
            let instr = &plan.port.instructions()[idx].name;
            tracer.record(|| {
                Event::new(SpanKind::Panic)
                    .port(plan.port.name())
                    .instruction(instr)
                    .label(&message)
                    .worker(meta.worker)
            });
            Ok(InstrVerdict {
                instruction: instr.clone(),
                result: CheckResult::JobPanicked { message },
                time: t0.elapsed(),
                stats: BlastStats::default(),
                cnf_growth: BlastStats::default(),
                effort: SolverStats::default(),
                solves: 0,
                retries: 0,
                worker: meta.worker,
                batch_id: meta.batch_id,
                batch_size: meta.batch_size,
                queue_ns: meta.queue_ns,
                stolen: meta.stolen,
                clauses_exported: 0,
                clauses_imported: 0,
                clauses_deduped: 0,
                inprocess: InprocessStats::default(),
            })
        }
    }
}

/// The human-readable part of a panic payload, when there is one.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The body of [`check_instruction_planned`], run inside an open solver
/// scope so every early return still retracts its asserts.
#[allow(clippy::too_many_arguments)]
fn check_instruction_inner(
    plan: &PortPlan<'_>,
    idx: usize,
    instr: &Instruction,
    engine: &mut WorkerEngine,
    tracer: &Tracer,
    meta: JobMeta,
    solves: &mut u64,
    preprocess: bool,
) -> Result<CheckResult, VerifyError> {
    let WorkerEngine {
        u,
        smt,
        simplify_memo,
        ..
    } = engine;
    // Rewrite-simplify a conjunct before it reaches the blaster; the
    // engine-wide memo makes repeat sub-circuits (the grafted
    // next-state logic) free on later instructions.
    let simp = |u: &mut Unrolling, memo: &mut HashMap<ExprRef, ExprRef>, e: ExprRef| {
        if preprocess {
            simplify_cached(u.ctx_mut(), e, memo)
        } else {
            e
        }
    };
    let port = plan.port;
    let map = plan.map;
    let ip = &plan.instrs[idx];
    let bound = ip.bound;

    // ILA variable -> frame-0 product expression.
    let mut var_map: HashMap<ExprRef, ExprRef> = HashMap::new();
    let adapt = |u: &mut Unrolling,
                 ila_name: &str,
                 ila_sort: Sort,
                 ts_expr: ExprRef,
                 rtl_name: &str|
     -> Result<ExprRef, VerifyError> {
        let mapped = u.map_expr(0, ts_expr);
        let found = u.ctx().sort_of(mapped);
        match (ila_sort, found) {
            (a, b) if a == b => Ok(mapped),
            (Sort::Bool, Sort::Bv(1)) => Ok(u.ctx_mut().bv_to_bool(mapped)),
            (a, b) => Err(VerifyError::SortMismatch {
                ila: ila_name.to_string(),
                ila_sort: a,
                rtl: rtl_name.to_string(),
                rtl_sort: b,
            }),
        }
    };
    for (ila_state, ts_expr, ila_sort) in &plan.mapped_states {
        let rtl_name = &map.state_map[ila_state];
        let e = adapt(u, ila_state, *ila_sort, *ts_expr, rtl_name)?;
        let v = port.find_state(ila_state).expect("resolved in plan").var;
        var_map.insert(v, e);
    }
    for (ila_input, ts_expr, ila_sort) in &plan.mapped_inputs {
        let rtl_name = &map.interface_map[ila_input];
        let e = adapt(u, ila_input, *ila_sort, *ts_expr, rtl_name)?;
        let v = port.find_input(ila_input).expect("resolved in plan").var;
        var_map.insert(v, e);
    }

    // Start condition: decode (grafted onto frame 0) + invariants +
    // optional strengthening, all pre-parsed in the plan.
    let mut import_memo = HashMap::new();
    let decode0 = import_mapped(u.ctx_mut(), port.ctx(), instr.decode, &var_map, &mut import_memo)
        .map_err(|var| VerifyError::UnmappedIlaVar {
            var,
            instruction: instr.name.clone(),
        })?;
    let mut start_conjuncts = vec![decode0];
    let mut cond_memo = HashMap::new();
    let graft0 = |u: &mut Unrolling, cond: ExprRef, memo: &mut HashMap<ExprRef, ExprRef>| {
        let e = import(u.ctx_mut(), plan.cond_rtl.ctx(), cond, memo);
        let e0 = u.map_expr(0, e);
        u.ctx_mut().bv_to_bool(e0)
    };
    for &inv in &plan.invariants {
        let eb = graft0(u, inv, &mut cond_memo);
        start_conjuncts.push(eb);
    }
    if let Some(s) = ip.strengthening {
        let eb = graft0(u, s, &mut cond_memo);
        start_conjuncts.push(eb);
    }

    // Input policy.
    let mut policy_conjuncts = Vec::new();
    if ip.input_policy == InputPolicy::Hold {
        for k in 1..bound {
            let names: Vec<String> = u.frames()[k].inputs.keys().cloned().collect();
            for n in names {
                let ik = u.frames()[k].inputs[&n];
                let i0 = u.frames()[0].inputs[&n];
                policy_conjuncts.push(u.ctx_mut().eq(ik, i0));
            }
        }
    }

    // ILA post-state per mapped state.
    let mut ila_post: BTreeMap<String, ExprRef> = BTreeMap::new();
    for (ila_state, _, _) in &plan.mapped_states {
        let e = match instr.updates.get(ila_state) {
            Some(&upd) => {
                import_mapped(u.ctx_mut(), port.ctx(), upd, &var_map, &mut import_memo)
                    .map_err(|var| VerifyError::UnmappedIlaVar {
                        var,
                        instruction: instr.name.clone(),
                    })?
            }
            None => {
                let v = port.find_state(ila_state).expect("resolved").var;
                var_map[&v]
            }
        };
        ila_post.insert(ila_state.clone(), e);
    }

    // The post-equivalence at a given frame (pre-state-only entries
    // are excluded; they anchor the start correspondence only).
    let post_eq_at = |u: &mut Unrolling, frame: usize| -> Vec<(String, ExprRef)> {
        plan.mapped_states
            .iter()
            .filter(|(ila_state, _, _)| !map.unchecked_states.contains(ila_state))
            .map(|(ila_state, ts_expr, ila_sort)| {
                let rtl_f = u.map_expr(frame, *ts_expr);
                let rtl_f = match (ila_sort, u.ctx().sort_of(rtl_f)) {
                    (Sort::Bool, Sort::Bv(1)) => u.ctx_mut().bv_to_bool(rtl_f),
                    _ => rtl_f,
                };
                let eq = u.ctx_mut().eq(ila_post[ila_state], rtl_f);
                (ila_state.clone(), eq)
            })
            .collect()
    };

    let finish_ts: Option<ExprRef> = ip
        .finish_expr
        .map(|e| import(u.ctx_mut(), plan.cond_rtl.ctx(), e, &mut cond_memo));

    // The caller opened a scope for us: assert the per-instruction
    // conditions there (retracted on pop, CNF kept). Per-frame cases
    // then differ only in their assumption lists.
    for &c in &start_conjuncts {
        let c = simp(u, simplify_memo, c);
        smt.assert(u.ctx(), c);
    }
    for &c in &policy_conjuncts {
        let c = simp(u, simplify_memo, c);
        smt.assert(u.ctx(), c);
    }

    // Abstract-interpretation lemmas: each proven invariant I is
    // inductive for the raw transition relation (inputs unconstrained),
    // so `I(j-1) → I(j)` is already a consequence of the unrolled
    // constraints at every step — asserting it prunes solver search
    // without removing a single model. `I(0)` is deliberately NOT
    // asserted: the property starts from an *arbitrary* mapped state,
    // which need not satisfy the reachable-state invariant.
    if let Some(lemma) = plan.absint_lemma {
        for j in 1..=bound {
            let prev = u.map_expr(j - 1, lemma);
            let cur = u.map_expr(j, lemma);
            let imp = u.ctx_mut().implies(prev, cur);
            let imp = simp(u, simplify_memo, imp);
            smt.assert(u.ctx(), imp);
        }
    }

    let frames_to_check: Vec<(usize, Vec<ExprRef>)> = match &finish_ts {
        None => vec![(bound, Vec::new())],
        Some(cond) => {
            // Check at the first frame where cond holds; one query per
            // candidate frame with "not finished before" assumptions.
            let mut cases = Vec::new();
            for j in 1..=bound {
                let mut assumptions = Vec::new();
                for k in 1..j {
                    let ck = u.map_expr(k, *cond);
                    let cb = u.ctx_mut().bv_to_bool(ck);
                    let nb = u.ctx_mut().not(cb);
                    assumptions.push(simp(u, simplify_memo, nb));
                }
                let cj = u.map_expr(j, *cond);
                let cb = u.ctx_mut().bv_to_bool(cj);
                assumptions.push(simp(u, simplify_memo, cb));
                cases.push((j, assumptions));
            }
            cases
        }
    };

    let mut result = CheckResult::Holds;
    let mut finish_reachable = finish_ts.is_none();
    for (frame, extra_assumptions) in frames_to_check {
        // Check that this case is reachable at all (for Condition
        // finishes); unreachable cases are skipped.
        if finish_ts.is_some() {
            let reach = smt.check_assuming(u.ctx(), &extra_assumptions);
            *solves += 1;
            record_solve(smt, tracer, meta, port.name(), &instr.name, "reach", frame, reach.is_sat());
            if let SmtResult::Unknown(reason) = reach {
                return Ok(CheckResult::Unknown {
                    reason,
                    budget_spent: BudgetSpent::default(),
                });
            }
            if !reach.is_sat() {
                continue;
            }
            finish_reachable = true;
        }
        let eqs = post_eq_at(u, frame);
        let eq_exprs: Vec<ExprRef> = eqs.iter().map(|(_, e)| *e).collect();
        let all_eq = u.ctx_mut().and_many(&eq_exprs);
        let all_eq = simp(u, simplify_memo, all_eq);
        let viol = u.ctx_mut().not(all_eq);
        let mut assumptions = extra_assumptions;
        assumptions.push(viol);
        let violation = smt.check_assuming(u.ctx(), &assumptions);
        *solves += 1;
        let violated = violation.is_sat();
        record_solve(smt, tracer, meta, port.name(), &instr.name, "violation", frame, violated);
        if let SmtResult::Unknown(reason) = violation {
            return Ok(CheckResult::Unknown {
                reason,
                budget_spent: BudgetSpent::default(),
            });
        }
        if violated {
            // Diagnose which states mismatch.
            let mismatched: Vec<String> = {
                let vals = u.concretize(
                    smt,
                    eqs.iter().cloned().collect::<BTreeMap<String, ExprRef>>(),
                );
                vals.into_iter()
                    .filter(|(_, v)| !v.as_bool())
                    .map(|(n, _)| n)
                    .collect()
            };
            let rtl_inputs = (0..frame)
                .map(|k| u.concretize_inputs(smt, k))
                .collect();
            let rtl_trace: Vec<_> = (0..=frame)
                .map(|k| u.concretize_states(smt, k))
                .collect();
            result = CheckResult::CounterExample(Box::new(RefinementCex {
                finish_cycle: frame,
                rtl_start_state: rtl_trace[0].clone(),
                rtl_inputs,
                rtl_finish_state: rtl_trace[frame].clone(),
                rtl_trace,
                ila_post_state: u.concretize(smt, ila_post.clone()),
                mismatched_states: mismatched,
            }));
            break;
        }
    }
    if !finish_reachable && result.holds() {
        result = CheckResult::FinishNotReached { max_cycles: bound };
    }
    Ok(result)
}

/// Emits one `solve` span for a completed SAT check: its per-call
/// solver effort and incremental CNF delta. The closure only runs when
/// tracing is enabled.
#[allow(clippy::too_many_arguments)]
fn record_solve(
    smt: &SmtSolver,
    tracer: &Tracer,
    meta: JobMeta,
    port: &str,
    instr: &str,
    label: &str,
    frame: usize,
    sat: bool,
) {
    tracer.record(|| {
        let effort = smt.last_check_effort();
        let cnf = smt.last_check_cnf_delta();
        Event::new(SpanKind::Solve)
            .port(port)
            .instruction(instr)
            .label(label)
            .worker(meta.worker)
            .field("frame", frame as u64)
            .field("sat", sat as u64)
            .field("decisions", effort.decisions)
            .field("propagations", effort.propagations)
            .field("conflicts", effort.conflicts)
            .field("cnf_vars", cnf.variables)
            .field("cnf_clauses", cnf.clauses)
    });
}

/// How a run executes after option validation.
enum ExecMode {
    Sequential { incremental: bool },
    Pool { workers: usize },
}

fn validate_options(opts: &VerifyOptions) -> Result<(), VerifyError> {
    let bad = |reason: &str| {
        Err(VerifyError::BadOptions {
            reason: reason.to_string(),
        })
    };
    if opts.parallel && opts.stop_at_first_cex {
        return bad(
            "`parallel` with `stop_at_first_cex` — first-cex timing needs declaration \
             order; use `jobs` for a pool that cancels on the first counterexample",
        );
    }
    if opts.parallel && opts.incremental {
        return bad(
            "`parallel` with `incremental` — the legacy mode cannot share a solver \
             across threads; use `jobs`, whose workers are incremental by construction",
        );
    }
    if opts.parallel && opts.jobs.is_some() {
        return bad("`parallel` with `jobs` — `jobs` supersedes `parallel`; set only `jobs`");
    }
    if opts.incremental && matches!(opts.jobs, Some(n) if n != 1) {
        return bad(
            "`incremental` with a multi-worker `jobs` pool — pool workers are already \
             incremental by construction; drop `incremental` or set `jobs` to 1",
        );
    }
    Ok(())
}

fn resolve_mode(opts: &VerifyOptions, total_jobs: usize) -> ExecMode {
    match opts.jobs {
        Some(1) => ExecMode::Sequential {
            incremental: opts.incremental,
        },
        Some(0) => ExecMode::Pool {
            workers: default_workers(),
        },
        Some(n) => ExecMode::Pool { workers: n },
        None if opts.parallel && total_jobs > 1 => ExecMode::Pool {
            workers: default_workers(),
        },
        None => ExecMode::Sequential {
            incremental: opts.incremental,
        },
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs a port's instructions in declaration order: one throwaway
/// engine per instruction, or (incremental) one engine for all of them.
/// Jobs decided by a resumed checkpoint are not re-run; a panicking job
/// is isolated ([`run_job_guarded`]) and, in incremental mode, costs
/// only a rebuild of the shared engine.
fn run_port_sequential(
    plan: &PortPlan<'_>,
    ts: &TransitionSystem,
    incremental: bool,
    stop_at_first_cex: bool,
    ctx: &RunCtx<'_>,
) -> Result<Vec<InstrVerdict>, VerifyError> {
    let mut shared: Option<WorkerEngine> = None;
    let mut verdicts = Vec::new();
    for idx in 0..plan.instrs.len() {
        let instr_name = &plan.port.instructions()[idx].name;
        let v = match ctx.resumed_verdict(plan.port.name(), instr_name) {
            Some(v) => v,
            None => {
                let mut own = None;
                // Preprocessing implies the shared persistent engine:
                // structural CNF sharing across a port's instructions
                // is the point of keeping one solver alive.
                let slot = if incremental || ctx.policy.preprocess {
                    &mut shared
                } else {
                    &mut own
                };
                let v = run_job_guarded(
                    plan,
                    idx,
                    slot,
                    || {
                        let mut e = WorkerEngine::new(ts, ctx.tracer);
                        if let Some(tok) = &ctx.policy.cancel {
                            e.smt.set_cancel(tok.clone());
                        }
                        e
                    },
                    ctx.tracer,
                    JobMeta::default(),
                    &ctx.policy,
                )?;
                ctx.record_checkpoint(plan.port.name(), &v);
                v
            }
        };
        let is_cex = matches!(v.result, CheckResult::CounterExample(_));
        verdicts.push(v);
        if is_cex && stop_at_first_cex {
            break;
        }
    }
    Ok(verdicts)
}

fn peak_of(verdicts: &[InstrVerdict]) -> BlastStats {
    let mut peak = BlastStats::default();
    for v in verdicts {
        peak = peak.max(v.stats);
    }
    peak
}

/// Sums a verdict slice into the telemetry totals; `workers` counts the
/// distinct pool workers that appear (1 for purely sequential runs).
fn telemetry_of(verdicts: &[InstrVerdict]) -> Telemetry {
    let mut t = Telemetry::default();
    let mut workers: Vec<usize> = Vec::new();
    let mut batches: Vec<u64> = Vec::new();
    for v in verdicts {
        // Under batching, queue latency and steal status describe the
        // *batch* (every verdict of a batch carries copies); count them
        // once per distinct batch id so the `--stats` queue-latency
        // rows are not multiplied by the batch size.
        let new_batch = match v.batch_id {
            Some(b) => {
                let first = !batches.contains(&b);
                if first {
                    batches.push(b);
                }
                first
            }
            None => true,
        };
        if new_batch {
            t.queue_ns += v.queue_ns;
            t.steals += v.stolen as u64;
        }
        t.clauses_exported += v.clauses_exported;
        t.clauses_imported += v.clauses_imported;
        t.clauses_deduped += v.clauses_deduped;
        t.instructions += 1;
        t.solves += v.solves;
        t.decisions += v.effort.decisions;
        t.propagations += v.effort.propagations;
        t.conflicts += v.effort.conflicts;
        t.learnt_clauses += v.effort.learnt_clauses;
        t.cnf_vars += v.cnf_growth.variables;
        t.cnf_clauses += v.cnf_growth.clauses;
        t.wall_ns += v.time.as_nanos() as u64;
        t.retries += v.retries as u64;
        t.inprocess_clauses_removed +=
            v.inprocess.clauses_satisfied + v.inprocess.clauses_subsumed;
        t.inprocess_lits_removed += v.inprocess.lits_removed;
        t.inprocess_failed_literals += v.inprocess.failed_literals;
        match &v.result {
            CheckResult::Unknown { budget_spent, .. } => {
                t.unknown += 1;
                t.budget_spent_conflicts += budget_spent.conflicts;
            }
            CheckResult::JobPanicked { .. } => t.panicked += 1,
            _ => {}
        }
        if let Some(w) = v.worker {
            if !workers.contains(&w) {
                workers.push(w);
            }
        }
    }
    t.workers = (workers.len() as u64).max(1);
    t.batches = batches.len() as u64;
    t
}

/// Rough proxy for the CNF a pooled run of `plan` over its sliced
/// system `ts` would blast: every per-frame DAG node (next-state
/// functions plus invariant constraints) weighted by its approximate
/// clause contribution, times the deepest unroll any instruction
/// needs, scaled by the instruction count (the number of solve
/// obligations the pool could parallelize). Compared against
/// [`VerifyOptions::par_threshold`] to route small modules to the
/// persistent sequential engine.
///
/// The weights mirror `gila_smt::Blaster`: linear bit-vector ops cost
/// one clause group per output bit, multiplication and division build
/// a width-squared shift-add/restoring network, shifts a barrel of
/// `w log w` muxes, and memory ops touch all `2^addr_width` words.
pub(crate) fn estimate_port_work(plan: &PortPlan<'_>, ts: &TransitionSystem) -> u64 {
    let ctx = ts.ctx();
    let mut roots: Vec<ExprRef> = Vec::new();
    for s in ts.states() {
        if let Some(e) = ts.next_of(&s.name) {
            roots.push(e);
        }
    }
    roots.extend(ts.constraints().iter().copied());
    let bits = |e: ExprRef| -> u64 {
        match ctx.sort_of(e) {
            Sort::Bool => 1,
            Sort::Bv(w) => w as u64,
            // A memory node materializes every word.
            Sort::Mem {
                addr_width,
                data_width,
            } => (1u64 << addr_width.min(24)) * data_width as u64,
        }
    };
    let mut cnf: u64 = 0;
    for e in ctx.post_order(&roots) {
        let ExprNode::App { op, args, .. } = ctx.node(e) else {
            continue; // leaves blast to fresh literals, no clauses
        };
        // Widest involved sort: comparisons output Bool but still
        // blast a full-width comparator chain.
        let w = args
            .iter()
            .map(|&a| bits(a))
            .chain([bits(e)])
            .max()
            .unwrap_or(1);
        cnf += match op {
            Op::BvMul | Op::BvUdiv | Op::BvUrem => w.saturating_mul(w),
            Op::BvShl | Op::BvLshr | Op::BvAshr => {
                w.saturating_mul(64 - w.leading_zeros() as u64)
            }
            _ => w,
        };
    }
    let frames = plan
        .instrs
        .iter()
        .map(|ip| ip.bound as u64 + 1)
        .max()
        .unwrap_or(1);
    cnf.saturating_mul(frames)
        .saturating_mul(plan.instrs.len() as u64)
}

/// Every transition-system expression a port plan will instantiate
/// over the unrolling — the root set for cone-of-influence slicing.
///
/// Mapped state/input expressions are roots directly. Conditions
/// (invariants, strengthenings, finish conditions) are parsed in the
/// plan's scratch RTL, so their support is resolved back to
/// transition-system expressions by signal name; a name that resolves
/// to a wire contributes that wire's defining expression, which keeps
/// the whole cone of the condition.
fn coi_roots(
    plan: &PortPlan<'_>,
    ts: &TransitionSystem,
    ts_signals: &BTreeMap<String, ExprRef>,
) -> Vec<ExprRef> {
    let mut roots: Vec<ExprRef> = Vec::new();
    for (_, e, _) in &plan.mapped_states {
        roots.push(*e);
    }
    for (_, e, _) in &plan.mapped_inputs {
        roots.push(*e);
    }
    let mut cond_exprs: Vec<ExprRef> = plan.invariants.clone();
    for ip in &plan.instrs {
        cond_exprs.extend(ip.finish_expr);
        cond_exprs.extend(ip.strengthening);
    }
    for name in support(plan.cond_rtl.ctx(), &cond_exprs) {
        if let Some(&e) = ts_signals.get(&name) {
            roots.push(e);
        } else if let Some(e) = ts.ctx().find_var(&name) {
            roots.push(e);
        }
    }
    roots
}

/// Slices `ts` to the union cone of `plans` and emits a `coi` span.
/// Returns the system unchanged when `preprocess` is off.
fn coi_preprocess(
    ts: TransitionSystem,
    ts_signals: &BTreeMap<String, ExprRef>,
    plans: &[&PortPlan<'_>],
    scope: &str,
    preprocess: bool,
    tracer: &Tracer,
) -> (TransitionSystem, Option<CoiStats>) {
    if !preprocess {
        return (ts, None);
    }
    let mut roots = Vec::new();
    for plan in plans {
        roots.extend(coi_roots(plan, &ts, ts_signals));
    }
    let (sliced, stats) = coi_slice(&ts, &roots);
    tracer.record(|| {
        Event::new(SpanKind::Coi)
            .port(scope)
            .field("states_kept", stats.states_kept as u64)
            .field("states_dropped", stats.states_dropped as u64)
            .field("inputs_kept", stats.inputs_kept as u64)
            .field("inputs_dropped", stats.inputs_dropped as u64)
    });
    (sliced, Some(stats))
}

/// Minimum [`estimate_port_work`] before the invariant-lemma pass is
/// worth running: on millisecond-scale ports the whole verification
/// finishes in less time than the fixpoint, so the lemmas can never
/// repay their cost. The cutoff reuses [`DEFAULT_PAR_THRESHOLD`] — the
/// same estimate already separates the bundled control-dominated
/// designs (≤17.5k, where solves are trivial) from the solver-bound
/// ones (≥19k, where the lemmas showed 1.05–1.14x). Skipping is purely
/// a scheduling decision: the lemmas are redundant consequences of the
/// transition relation, so verdicts are identical either way.
const ABSINT_WORK_THRESHOLD: u64 = DEFAULT_PAR_THRESHOLD;

/// Runs the `gila-absint` widening fixpoint over a port's (sliced)
/// transition system and attaches the proven invariants to the plan as
/// one lemma conjunction, interned in the system's own context so
/// [`Unrolling::map_expr`] can instantiate it per frame. Emits an
/// `absint` span; a no-op when `enabled` is off or the port's
/// estimated solver work is too small to repay the fixpoint
/// ([`ABSINT_WORK_THRESHOLD`]).
fn absint_preprocess(
    plan: &mut PortPlan<'_>,
    ts: &mut TransitionSystem,
    enabled: bool,
    tracer: &Tracer,
) {
    if !enabled || estimate_port_work(plan, ts) < ABSINT_WORK_THRESHOLD {
        return;
    }
    let t0 = Instant::now();
    let analysis = gila_absint::analyze_ts(ts);
    let exprs: Vec<ExprRef> = analysis.invariants.iter().map(|i| i.expr).collect();
    if !exprs.is_empty() {
        plan.absint_lemma = Some(ts.ctx_mut().and_many(&exprs));
        plan.invariants_proved = exprs.len() as u64;
    }
    tracer.record(|| {
        Event::new(SpanKind::Absint)
            .port(plan.port.name())
            .field("invariants", exprs.len() as u64)
            .field("iterations", analysis.iterations as u64)
            .field("wall_ns", t0.elapsed().as_nanos() as u64)
    });
}

/// Folds a slicing report into a run's telemetry totals.
fn add_coi_telemetry(t: &mut Telemetry, coi: Option<CoiStats>) {
    if let Some(s) = coi {
        t.coi_states_dropped += s.states_dropped as u64;
        t.coi_inputs_dropped += s.inputs_dropped as u64;
    }
}

/// Emits the per-port summary span once a port's verdicts are in.
fn record_port_span(tracer: &Tracer, report: &PortReport) {
    tracer.record(|| {
        Event::new(SpanKind::Port)
            .port(&report.port)
            .label(if report.all_hold() { "holds" } else { "fails" })
            .field("instructions", report.verdicts.len() as u64)
            .field("solves", report.telemetry.solves)
            .field("conflicts", report.telemetry.conflicts)
            .field("wall_ns", report.total_time.as_nanos() as u64)
    });
}

/// Verifies one port-ILA against an RTL implementation.
///
/// # Errors
///
/// Returns a [`VerifyError`] for malformed refinement maps or
/// conflicting options; property *failures* are reported in the
/// [`PortReport`], not as errors.
pub fn verify_port(
    port: &PortIla,
    rtl: &RtlModule,
    map: &RefinementMap,
    opts: &VerifyOptions,
) -> Result<PortReport, VerifyError> {
    validate_options(opts)?;
    let ctx = RunCtx::from_opts(opts)?;
    verify_port_with(port, rtl, map, opts, &ctx)
}

/// [`verify_port`] against an existing run context, so a module run
/// shares one checkpoint writer and resume set across its ports.
fn verify_port_with(
    port: &PortIla,
    rtl: &RtlModule,
    map: &RefinementMap,
    opts: &VerifyOptions,
    ctx: &RunCtx<'_>,
) -> Result<PortReport, VerifyError> {
    let start_all = Instant::now();
    let (ts, ts_signals) = rtl_to_ts(rtl)?;
    let mut plan = PortPlan::build(port, rtl, map, &ts_signals)?;
    let (mut ts, coi) = coi_preprocess(
        ts,
        &ts_signals,
        &[&plan],
        port.name(),
        opts.preprocess,
        &opts.tracer,
    );
    absint_preprocess(&mut plan, &mut ts, opts.absint, &opts.tracer);
    let verdicts = match resolve_mode(opts, plan.instrs.len()) {
        ExecMode::Sequential { incremental } => {
            run_port_sequential(&plan, &ts, incremental, opts.stop_at_first_cex, ctx)?
        }
        // Adaptive fallback: a port whose estimated blast work is below
        // the threshold runs on the persistent sequential engine — the
        // pool cannot win back its spawn + duplicate-blast overhead on
        // designs this small.
        ExecMode::Pool { .. }
            if opts.par_threshold > 0
                && estimate_port_work(&plan, &ts) < opts.par_threshold =>
        {
            run_port_sequential(&plan, &ts, true, opts.stop_at_first_cex, ctx)?
        }
        ExecMode::Pool { workers } => {
            let outcome = crate::scheduler::run_pool(
                std::slice::from_ref(&plan),
                std::slice::from_ref(&ts),
                crate::scheduler::PoolConfig {
                    workers,
                    stop_at_first_cex: opts.stop_at_first_cex,
                    batch_ports: opts.batch_ports,
                    share_clauses: opts.share_clauses,
                },
                ctx,
            )?;
            let port_result = outcome.ports.into_iter().next().ok_or_else(|| {
                VerifyError::Internal {
                    reason: "pool returned no result for the submitted plan".to_string(),
                }
            })?;
            port_result.verdicts.into_iter().map(|(_, v)| v).collect()
        }
    };
    let mut telemetry = telemetry_of(&verdicts);
    add_coi_telemetry(&mut telemetry, coi);
    telemetry.invariants_proved += plan.invariants_proved;
    let report = PortReport {
        port: port.name().to_string(),
        peak_stats: peak_of(&verdicts),
        telemetry,
        verdicts,
        total_time: start_all.elapsed(),
    };
    record_port_span(&opts.tracer, &report);
    opts.tracer.flush();
    Ok(report)
}

/// Verifies a whole module-ILA: each port against the same RTL, using
/// the refinement map with the matching name (falling back to a map
/// named `"*"`).
///
/// Under a worker pool (`jobs`), all ports' instructions are flattened
/// into one global job queue so workers stay busy across port
/// boundaries and their cached CNF serves every port.
///
/// # Errors
///
/// Returns a [`VerifyError`] if a port has no refinement map, a map is
/// malformed, or the options conflict.
pub fn verify_module(
    module: &ModuleIla,
    rtl: &RtlModule,
    maps: &[RefinementMap],
    opts: &VerifyOptions,
) -> Result<ModuleReport, VerifyError> {
    validate_options(opts)?;
    let map_for = |port: &PortIla| -> Result<&RefinementMap, VerifyError> {
        maps.iter()
            .find(|m| m.name == port.name())
            .or_else(|| maps.iter().find(|m| m.name == "*"))
            .ok_or_else(|| VerifyError::UnknownRtlSignal {
                signal: port.name().to_string(),
                context: "no refinement map for port".to_string(),
            })
    };
    let total_jobs: usize = module.ports().iter().map(|p| p.instructions().len()).sum();
    let ctx = RunCtx::from_opts(opts)?;
    let mut pool_workers = None;
    let mut module_coi: Vec<Option<CoiStats>> = Vec::new();
    let ports = match resolve_mode(opts, total_jobs) {
        ExecMode::Sequential { .. } => {
            let mut ports = Vec::new();
            for port in module.ports() {
                let report = verify_port_with(port, rtl, map_for(port)?, opts, &ctx)?;
                let has_cex = report.first_counterexample().is_some();
                ports.push(report);
                if has_cex && opts.stop_at_first_cex {
                    break;
                }
            }
            ports
        }
        ExecMode::Pool { workers } => {
            let (ts, ts_signals) = rtl_to_ts(rtl)?;
            let mut plans = Vec::new();
            for port in module.ports() {
                plans.push(PortPlan::build(port, rtl, map_for(port)?, &ts_signals)?);
            }
            // Slice per port — the same tight cones the sequential path
            // gets — so a worker serving a port blasts only that port's
            // logic instead of the union cone of the whole module.
            let mut tss = Vec::with_capacity(plans.len());
            for plan in plans.iter_mut() {
                let (mut sliced, coi) = coi_preprocess(
                    ts.clone(),
                    &ts_signals,
                    &[&*plan],
                    plan.port.name(),
                    opts.preprocess,
                    &opts.tracer,
                );
                absint_preprocess(plan, &mut sliced, opts.absint, &opts.tracer);
                tss.push(sliced);
                module_coi.push(coi);
            }
            let estimate: u64 = plans
                .iter()
                .zip(&tss)
                .map(|(p, t)| estimate_port_work(p, t))
                .sum();
            if opts.par_threshold > 0 && estimate < opts.par_threshold {
                // Adaptive fallback: too small for the pool to win back
                // its spawn + duplicate-blast overhead. One persistent
                // sequential engine per port, ports in declaration order.
                let mut ports = Vec::new();
                for (plan, pts) in plans.iter().zip(&tss) {
                    let t0 = Instant::now();
                    let verdicts = run_port_sequential(
                        plan,
                        pts,
                        true,
                        opts.stop_at_first_cex,
                        &ctx,
                    )?;
                    let mut telemetry = telemetry_of(&verdicts);
                    telemetry.invariants_proved += plan.invariants_proved;
                    let report = PortReport {
                        port: plan.port.name().to_string(),
                        peak_stats: peak_of(&verdicts),
                        telemetry,
                        verdicts,
                        total_time: t0.elapsed(),
                    };
                    record_port_span(&opts.tracer, &report);
                    let has_cex = report.first_counterexample().is_some();
                    ports.push(report);
                    if has_cex && opts.stop_at_first_cex {
                        break;
                    }
                }
                ports
            } else {
                let outcome = crate::scheduler::run_pool(
                    &plans,
                    &tss,
                    crate::scheduler::PoolConfig {
                        workers,
                        stop_at_first_cex: opts.stop_at_first_cex,
                        batch_ports: opts.batch_ports,
                        share_clauses: opts.share_clauses,
                    },
                    &ctx,
                )?;
                pool_workers = Some(outcome.workers_spawned as u64);
                module
                    .ports()
                    .iter()
                    .zip(outcome.ports)
                    .zip(&plans)
                    .map(|((port, pr), plan)| {
                        let verdicts: Vec<InstrVerdict> =
                            pr.verdicts.into_iter().map(|(_, v)| v).collect();
                        let mut telemetry = telemetry_of(&verdicts);
                        telemetry.invariants_proved += plan.invariants_proved;
                        let report = PortReport {
                            port: port.name().to_string(),
                            peak_stats: peak_of(&verdicts),
                            telemetry,
                            verdicts,
                            total_time: pr.last_done,
                        };
                        record_port_span(&opts.tracer, &report);
                        report
                    })
                    .collect()
            }
        }
    };
    let mut telemetry = ports
        .iter()
        .fold(Telemetry::default(), |acc, p| acc.merge(&p.telemetry));
    for coi in module_coi {
        add_coi_telemetry(&mut telemetry, coi);
    }
    if let Some(w) = pool_workers {
        telemetry.workers = w;
    }
    opts.tracer.flush();
    Ok(ModuleReport {
        module: module.name().to_string(),
        ports,
        telemetry,
    })
}

/// Counter fixtures shared by the engine and scheduler test modules.
#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use gila_core::StateKind;
    use gila_rtl::parse_verilog;

    /// A counter ILA and matching/buggy RTL for engine smoke tests.
    pub(crate) fn counter_ila() -> PortIla {
        let mut p = PortIla::new("counter");
        let en = p.input("en", Sort::Bv(1));
        let cnt = p.state("cnt", Sort::Bv(4), StateKind::Output);
        let d = p.ctx_mut().eq_u64(en, 1);
        let one = p.ctx_mut().bv_u64(1, 4);
        let nx = p.ctx_mut().bvadd(cnt, one);
        p.instr("inc").decode(d).update("cnt", nx).add().unwrap();
        let d = p.ctx_mut().eq_u64(en, 0);
        p.instr("hold").decode(d).add().unwrap();
        p
    }

    pub(crate) fn counter_rtl(buggy: bool) -> RtlModule {
        let step = if buggy { "4'd2" } else { "4'd1" };
        parse_verilog(&format!(
            r#"
module counter(clk, en_in);
  input clk;
  input en_in;
  reg [3:0] count;
  always @(posedge clk) if (en_in) count <= count + {step};
endmodule
"#
        ))
        .unwrap()
    }

    pub(crate) fn counter_map() -> RefinementMap {
        let mut m = RefinementMap::new("counter");
        m.map_state("cnt", "count");
        m.map_input("en", "en_in");
        m
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{counter_ila, counter_map, counter_rtl};
    use super::*;
    use gila_core::StateKind;
    use gila_rtl::parse_verilog;

    /// An 8-bit multiplier whose refinement proof needs real SAT search:
    /// the RTL computes `b * a`, the ILA `a * b`, so UNSAT amounts to
    /// proving bit-level multiplication commutativity — cheap enough to
    /// finish, expensive enough that small conflict budgets run out.
    fn mul_ila() -> PortIla {
        let mut p = PortIla::new("mul");
        let en = p.input("en", Sort::Bv(1));
        let a = p.input("a", Sort::Bv(8));
        let b = p.input("b", Sort::Bv(8));
        p.state("out", Sort::Bv(8), StateKind::Output);
        let d = p.ctx_mut().eq_u64(en, 1);
        let prod = p.ctx_mut().bvmul(a, b);
        p.instr("mul").decode(d).update("out", prod).add().unwrap();
        p
    }

    fn mul_rtl() -> RtlModule {
        parse_verilog(
            r#"
module mul(clk, en, a, b);
  input clk;
  input en;
  input [7:0] a;
  input [7:0] b;
  reg [7:0] out_r;
  always @(posedge clk) if (en) out_r <= b * a;
endmodule
"#,
        )
        .unwrap()
    }

    fn mul_map() -> RefinementMap {
        let mut m = RefinementMap::new("mul");
        m.map_state("out", "out_r");
        m.map_input("en", "en");
        m.map_input("a", "a");
        m.map_input("b", "b");
        m
    }

    #[test]
    fn exhausted_conflict_budget_reports_unknown_with_spent_effort() {
        let report = verify_port(
            &mul_ila(),
            &mul_rtl(),
            &mul_map(),
            &VerifyOptions {
                budget: SolveBudget {
                    conflicts: Some(1),
                    timeout: None,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!report.all_hold());
        let v = &report.verdicts[0];
        let CheckResult::Unknown { reason, budget_spent } = &v.result else {
            panic!("expected Unknown, got {:?}", v.result);
        };
        assert_eq!(*reason, ResourceOut::Conflicts);
        // "spent > max" semantics: giving up means the limit was passed.
        assert!(budget_spent.conflicts > 1, "{budget_spent:?}");
        assert_eq!(budget_spent.attempts, 1);
        assert_eq!(v.retries, 0);
        assert_eq!(report.telemetry.unknown, 1);
        assert!(report.telemetry.budget_spent_conflicts > 1);
        assert_eq!(report.counts().unknown, 1);
    }

    #[test]
    fn retry_escalation_converges_to_unbounded_verdict() {
        let baseline =
            verify_port(&mul_ila(), &mul_rtl(), &mul_map(), &VerifyOptions::default()).unwrap();
        assert!(baseline.all_hold(), "commutativity proof should close");
        let budgeted = verify_port(
            &mul_ila(),
            &mul_rtl(),
            &mul_map(),
            &VerifyOptions {
                budget: SolveBudget {
                    conflicts: Some(1),
                    timeout: None,
                },
                retries: 16,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(budgeted.all_hold(), "{:?}", budgeted.verdicts[0].result);
        let v = &budgeted.verdicts[0];
        assert!(v.retries > 0, "a 1-conflict budget cannot decide this in one try");
        assert_eq!(budgeted.telemetry.retries, v.retries as u64);
        assert_eq!(budgeted.telemetry.unknown, 0);
    }

    #[test]
    fn expired_deadline_is_unknown_and_attempts_are_counted() {
        let report = verify_port(
            &mul_ila(),
            &mul_rtl(),
            &mul_map(),
            &VerifyOptions {
                budget: SolveBudget {
                    conflicts: None,
                    timeout: Some(Duration::ZERO),
                },
                retries: 2, // a zero timeout never escalates: all 3 attempts expire
                ..Default::default()
            },
        )
        .unwrap();
        let CheckResult::Unknown { reason, budget_spent } = &report.verdicts[0].result else {
            panic!("expected Unknown, got {:?}", report.verdicts[0].result);
        };
        assert_eq!(*reason, ResourceOut::Deadline);
        assert_eq!(budget_spent.attempts, 3);
        assert_eq!(report.verdicts[0].retries, 2);
    }

    #[test]
    fn budget_prop_unknown_only_past_the_limit() {
        // Property over the budget axis: for any conflict budget, the
        // verdict is either decided (never Unknown without a cause) or
        // Unknown with strictly more conflicts spent than the budget
        // allowed — and an unbounded budget is never Unknown.
        for conflicts in [0u64, 1, 2, 5, 17, 1 << 40] {
            let report = verify_port(
                &mul_ila(),
                &mul_rtl(),
                &mul_map(),
                &VerifyOptions {
                    budget: SolveBudget {
                        conflicts: Some(conflicts),
                        timeout: None,
                    },
                    ..Default::default()
                },
            )
            .unwrap();
            match &report.verdicts[0].result {
                CheckResult::Unknown { reason, budget_spent } => {
                    assert_eq!(*reason, ResourceOut::Conflicts, "budget={conflicts}");
                    assert!(budget_spent.conflicts > conflicts, "budget={conflicts}");
                }
                CheckResult::Holds => {}
                other => panic!("budget={conflicts}: unexpected {other:?}"),
            }
        }
        let unbounded =
            verify_port(&mul_ila(), &mul_rtl(), &mul_map(), &VerifyOptions::default()).unwrap();
        assert_eq!(unbounded.telemetry.unknown, 0);
        assert!(unbounded.all_hold());
    }

    #[test]
    fn forced_unknown_fault_flows_through_resource_out_path() {
        let fault = FaultPlan::new().inject("counter", "inc", FaultAction::ForceUnknown, Some(1));
        let report = verify_port(
            &counter_ila(),
            &counter_rtl(false),
            &counter_map(),
            &VerifyOptions {
                fault_plan: Some(Arc::new(fault)),
                ..Default::default()
            },
        )
        .unwrap();
        let inc = &report.verdicts[0];
        let CheckResult::Unknown { reason, .. } = &inc.result else {
            panic!("expected forced Unknown, got {:?}", inc.result);
        };
        assert_eq!(*reason, ResourceOut::Deadline);
        // The untouched instruction is unaffected.
        assert!(report.verdicts[1].result.holds());
    }

    #[test]
    fn checkpoint_resume_reverifies_only_undecided_jobs() {
        let dir = std::env::temp_dir().join("gila_engine_resume");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.jsonl");
        // First run: `inc` is forced Unknown (once), `hold` decides.
        let fault = FaultPlan::new().inject("counter", "inc", FaultAction::ForceUnknown, Some(1));
        let first = verify_port(
            &counter_ila(),
            &counter_rtl(false),
            &counter_map(),
            &VerifyOptions {
                fault_plan: Some(Arc::new(fault)),
                checkpoint: Some(path.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(first.counts().unknown, 1);
        assert_eq!(first.counts().holds, 1);
        // Resumed run: `hold` is replayed from the checkpoint (zero
        // solves), `inc` is re-verified for real and now holds.
        let second = verify_port(
            &counter_ila(),
            &counter_rtl(false),
            &counter_map(),
            &VerifyOptions {
                resume: Some(path.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(second.all_hold(), "{:#?}", second.verdicts);
        let inc = &second.verdicts[0];
        let hold = &second.verdicts[1];
        assert!(inc.solves > 0, "undecided job must be re-verified");
        assert_eq!(hold.solves, 0, "decided job must be replayed, not re-solved");
        // The resumed run appended its new verdicts: resuming again
        // re-solves nothing.
        let third = verify_port(
            &counter_ila(),
            &counter_rtl(false),
            &counter_map(),
            &VerifyOptions {
                resume: Some(path.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(third.all_hold());
        assert!(third.verdicts.iter().all(|v| v.solves == 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn panicked_job_in_sequential_run_is_isolated() {
        let fault =
            FaultPlan::new().inject("counter", "inc", FaultAction::Panic("seq boom".into()), None);
        let report = verify_port(
            &counter_ila(),
            &counter_rtl(false),
            &counter_map(),
            &VerifyOptions {
                fault_plan: Some(Arc::new(fault)),
                jobs: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.counts().panicked, 1);
        assert!(matches!(
            &report.verdicts[0].result,
            CheckResult::JobPanicked { message } if message.contains("seq boom")
        ));
        assert!(report.verdicts[1].result.holds());
        assert_eq!(report.telemetry.panicked, 1);
    }

    #[test]
    fn correct_rtl_verifies() {
        let port = counter_ila();
        let rtl = counter_rtl(false);
        let report =
            verify_port(&port, &rtl, &counter_map(), &VerifyOptions::default()).unwrap();
        assert!(report.all_hold(), "{report:#?}");
        assert_eq!(report.verdicts.len(), 2);
        assert!(report.peak_stats.clauses > 0);
    }

    #[test]
    fn buggy_rtl_produces_counterexample() {
        let port = counter_ila();
        let rtl = counter_rtl(true);
        let report =
            verify_port(&port, &rtl, &counter_map(), &VerifyOptions::default()).unwrap();
        assert!(!report.all_hold());
        let v = report.first_counterexample().unwrap();
        assert_eq!(v.instruction, "inc");
        let CheckResult::CounterExample(cex) = &v.result else {
            panic!()
        };
        assert_eq!(cex.mismatched_states, vec!["cnt".to_string()]);
        // The RTL stepped by 2, the ILA by 1.
        let start = cex.rtl_start_state["count"].as_bv().to_u64();
        let finish = cex.rtl_finish_state["count"].as_bv().to_u64();
        assert_eq!((start + 2) % 16, finish);
        assert_eq!(
            cex.ila_post_state["cnt"].as_bv().to_u64(),
            (start + 1) % 16
        );
        // `hold` still verifies.
        assert!(report.verdicts.iter().any(|v| v.instruction == "hold" && v.result.holds()));
    }

    #[test]
    fn parallel_matches_sequential() {
        let port = counter_ila();
        let rtl = counter_rtl(false);
        let seq = verify_port(&port, &rtl, &counter_map(), &VerifyOptions::default()).unwrap();
        let par = verify_port(
            &port,
            &rtl,
            &counter_map(),
            &VerifyOptions {
                parallel: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(seq.all_hold() && par.all_hold());
        let names = |r: &PortReport| -> Vec<String> {
            r.verdicts.iter().map(|v| v.instruction.clone()).collect()
        };
        assert_eq!(names(&seq), names(&par));
        // And on a buggy design both find the same failing instruction.
        let buggy = counter_rtl(true);
        let par = verify_port(
            &port,
            &buggy,
            &counter_map(),
            &VerifyOptions {
                parallel: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            par.first_counterexample().unwrap().instruction,
            "inc"
        );
    }

    #[test]
    fn incremental_matches_isolated() {
        let port = counter_ila();
        for buggy in [false, true] {
            let rtl = counter_rtl(buggy);
            let base =
                verify_port(&port, &rtl, &counter_map(), &VerifyOptions::default()).unwrap();
            let inc = verify_port(
                &port,
                &rtl,
                &counter_map(),
                &VerifyOptions {
                    incremental: true,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(base.all_hold(), inc.all_hold(), "buggy={buggy}");
            for (a, b) in base.verdicts.iter().zip(&inc.verdicts) {
                assert_eq!(a.instruction, b.instruction);
                assert_eq!(a.result.holds(), b.result.holds(), "{}", a.instruction);
            }
        }
    }

    #[test]
    fn conflicting_options_are_rejected() {
        let port = counter_ila();
        let rtl = counter_rtl(false);
        let map = counter_map();
        let combos = [
            VerifyOptions {
                parallel: true,
                stop_at_first_cex: true,
                ..Default::default()
            },
            VerifyOptions {
                parallel: true,
                incremental: true,
                ..Default::default()
            },
            VerifyOptions {
                parallel: true,
                jobs: Some(4),
                ..Default::default()
            },
            VerifyOptions {
                incremental: true,
                jobs: Some(4),
                ..Default::default()
            },
        ];
        for opts in combos {
            let err = verify_port(&port, &rtl, &map, &opts).unwrap_err();
            assert!(matches!(err, VerifyError::BadOptions { .. }), "{opts:?}");
        }
        // `jobs` composes with the non-legacy flags.
        let ok = VerifyOptions {
            jobs: Some(2),
            stop_at_first_cex: true,
            ..Default::default()
        };
        verify_port(&port, &rtl, &map, &ok).unwrap();
        // `jobs = 1` + `incremental` is the shared sequential engine.
        let ok = VerifyOptions {
            jobs: Some(1),
            incremental: true,
            ..Default::default()
        };
        verify_port(&port, &rtl, &map, &ok).unwrap();
    }

    #[test]
    fn module_peak_stats_is_componentwise() {
        let mk = |variables: u64, clauses: u64| PortReport {
            port: "p".into(),
            verdicts: Vec::new(),
            total_time: Duration::ZERO,
            peak_stats: BlastStats { variables, clauses },
            telemetry: Telemetry::default(),
        };
        let report = ModuleReport {
            module: "m".into(),
            ports: vec![mk(100, 1), mk(1, 90)],
            telemetry: Telemetry::default(),
        };
        let peak = report.peak_stats();
        assert_eq!(peak.variables, 100);
        assert_eq!(peak.clauses, 90);
    }

    #[test]
    fn unknown_signal_is_config_error() {
        let port = counter_ila();
        let rtl = counter_rtl(false);
        let mut map = counter_map();
        map.map_state("cnt", "ghost");
        let err = verify_port(&port, &rtl, &map, &VerifyOptions::default()).unwrap_err();
        assert!(matches!(err, VerifyError::UnknownRtlSignal { .. }));
    }

    #[test]
    fn unmapped_ila_var_is_config_error() {
        let port = counter_ila();
        let rtl = counter_rtl(false);
        let mut map = counter_map();
        map.interface_map.clear(); // decode references `en`, now unmapped
        let err = verify_port(&port, &rtl, &map, &VerifyOptions::default()).unwrap_err();
        assert!(matches!(err, VerifyError::UnmappedIlaVar { .. }));
    }

    #[test]
    fn sort_mismatch_is_config_error() {
        let port = counter_ila();
        let rtl = counter_rtl(false);
        let mut map = counter_map();
        map.map_state("cnt", "en_in"); // 4-bit state vs 1-bit input
        let err = verify_port(&port, &rtl, &map, &VerifyOptions::default()).unwrap_err();
        assert!(matches!(err, VerifyError::SortMismatch { .. }));
    }

    #[test]
    fn invariant_restricts_start_states() {
        // RTL that misbehaves only when count == 15 (unreachable if we
        // assume count < 8); the invariant makes verification pass.
        let port = counter_ila();
        let rtl = parse_verilog(
            r#"
module counter(clk, en_in);
  input clk;
  input en_in;
  reg [3:0] count;
  always @(posedge clk)
    if (en_in) begin
      if (count == 4'd15) count <= 4'd7;
      else count <= count + 4'd1;
    end
endmodule
"#,
        )
        .unwrap();
        let map = counter_map();
        let report = verify_port(&port, &rtl, &map, &VerifyOptions::default()).unwrap();
        assert!(!report.all_hold(), "without invariant the wrap case fails");
        let mut map = counter_map();
        map.add_invariant("count < 4'd8");
        let report = verify_port(&port, &rtl, &map, &VerifyOptions::default()).unwrap();
        assert!(report.all_hold());
    }

    #[test]
    fn multi_cycle_finish_with_hold_policy() {
        // RTL takes 2 cycles: first latches, then commits. The ILA does
        // it in one instruction. finish = 2 cycles with held inputs.
        let mut p = PortIla::new("two_phase");
        let go = p.input("go", Sort::Bv(1));
        let data = p.input("data", Sort::Bv(4));
        p.state("out", Sort::Bv(4), StateKind::Output);
        let d = p.ctx_mut().eq_u64(go, 1);
        p.instr("write").decode(d).update("out", data).add().unwrap();
        let d = p.ctx_mut().eq_u64(go, 0);
        p.instr("nop").decode(d).add().unwrap();

        let rtl = parse_verilog(
            r#"
module two_phase(clk, go, data);
  input clk;
  input go;
  input [3:0] data;
  reg [3:0] buffer;
  reg [3:0] out_r;
  reg pending;
  always @(posedge clk) begin
    if (go) begin
      buffer <= data;
      pending <= 1'b1;
    end
    else pending <= 1'b0;
    if (pending) out_r <= buffer;
  end
endmodule
"#,
        )
        .unwrap();
        let mut map = RefinementMap::new("two_phase");
        map.map_state("out", "out_r");
        map.map_input("go", "go");
        map.map_input("data", "data");
        map.add_invariant("pending == 1'b0");
        map.add_instruction_map(crate::refmap::InstructionMap {
            instruction: "write".into(),
            start_strengthening: None,
            finish: FinishCondition::Cycles(2),
            input_policy: InputPolicy::Hold,
        });
        // nop: out unchanged after 1 cycle given pending==0.
        let report = verify_port(&p, &rtl, &map, &VerifyOptions::default()).unwrap();
        assert!(report.all_hold(), "{report:#?}");
    }

    #[test]
    fn condition_finish() {
        // RTL raises `done` one cycle after go; equivalence checked at
        // the first done cycle.
        let mut p = PortIla::new("cond");
        let go = p.input("go", Sort::Bv(1));
        let data = p.input("data", Sort::Bv(4));
        p.state("out", Sort::Bv(4), StateKind::Output);
        let d = p.ctx_mut().eq_u64(go, 1);
        p.instr("write").decode(d).update("out", data).add().unwrap();
        let d = p.ctx_mut().eq_u64(go, 0);
        p.instr("nop").decode(d).add().unwrap();
        let rtl = parse_verilog(
            r#"
module cond(clk, go, data);
  input clk;
  input go;
  input [3:0] data;
  reg [3:0] out_r;
  reg done;
  always @(posedge clk) begin
    if (go) begin
      out_r <= data;
      done <= 1'b1;
    end
    else done <= 1'b0;
  end
endmodule
"#,
        )
        .unwrap();
        let mut map = RefinementMap::new("cond");
        map.map_state("out", "out_r");
        map.map_input("go", "go");
        map.map_input("data", "data");
        map.add_instruction_map(crate::refmap::InstructionMap {
            instruction: "write".into(),
            start_strengthening: None,
            finish: FinishCondition::Condition {
                expr: "done == 1'b1".into(),
                max_cycles: 3,
            },
            input_policy: InputPolicy::Hold,
        });
        let report = verify_port(&p, &rtl, &map, &VerifyOptions::default()).unwrap();
        assert!(report.all_hold(), "{report:#?}");
        // An impossible finish condition is reported, not silently passed.
        let mut map2 = map.clone();
        map2.instruction_maps[0].finish = FinishCondition::Condition {
            expr: "done == 1'b1 && go == 1'b0 && done == 1'b0".into(),
            max_cycles: 2,
        };
        let report = verify_port(&p, &rtl, &map2, &VerifyOptions::default()).unwrap();
        assert!(report
            .verdicts
            .iter()
            .any(|v| matches!(v.result, CheckResult::FinishNotReached { .. })));
    }
}
