//! The refinement-check engine: instruction-by-instruction verification
//! of an RTL implementation against its (module-)ILA specification.
//!
//! For each atomic instruction the engine builds the property of Fig. 5:
//! starting from any RTL state whose mapped signals agree with the ILA
//! architectural state (plus user invariants), if the instruction's
//! start condition holds, then after the instruction finishes in the RTL
//! the mapped signals again agree with the ILA state produced by the
//! instruction's next-state functions. Each property is discharged by
//! bit-blasting to SAT; a satisfying assignment is a counterexample
//! trace, UNSAT is a proof for that instruction.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::{Duration, Instant};

use gila_core::{ModuleIla, PortIla};
use gila_expr::{import, import_mapped, ExprRef, Sort, Value};
use gila_mc::{TransitionSystem, Unrolling};
use gila_rtl::{parse_rtl_expr, RtlModule, VerilogError};
use gila_smt::{BlastStats, SmtSolver};

use crate::refmap::{FinishCondition, InputPolicy, RefinementMap};

/// An error in the verification setup (not a property failure).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A refinement-map entry names an RTL signal that does not exist.
    UnknownRtlSignal {
        /// The missing signal.
        signal: String,
        /// Which map entry referenced it.
        context: String,
    },
    /// An ILA state or input has no refinement-map entry but appears in
    /// the instruction being checked.
    UnmappedIlaVar {
        /// The unmapped variable.
        var: String,
        /// The instruction being checked.
        instruction: String,
    },
    /// Mapped ILA/RTL pair have incompatible sorts.
    SortMismatch {
        /// The ILA state or input.
        ila: String,
        /// Its sort.
        ila_sort: Sort,
        /// The RTL signal.
        rtl: String,
        /// Its sort.
        rtl_sort: Sort,
    },
    /// A Verilog condition string failed to parse or elaborate.
    Verilog(
        /// The underlying error.
        VerilogError,
    ),
    /// A finish bound of zero cycles was requested.
    BadBound,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnknownRtlSignal { signal, context } => {
                write!(f, "{context}: RTL has no signal {signal:?}")
            }
            VerifyError::UnmappedIlaVar { var, instruction } => write!(
                f,
                "instruction {instruction:?} references ILA variable {var:?} with no refinement-map entry"
            ),
            VerifyError::SortMismatch {
                ila,
                ila_sort,
                rtl,
                rtl_sort,
            } => write!(
                f,
                "ILA {ila:?} ({ila_sort}) cannot map to RTL {rtl:?} ({rtl_sort})"
            ),
            VerifyError::Verilog(e) => write!(f, "{e}"),
            VerifyError::BadBound => write!(f, "finish condition must allow at least one cycle"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<VerilogError> for VerifyError {
    fn from(e: VerilogError) -> Self {
        VerifyError::Verilog(e)
    }
}

/// A counterexample to one instruction's refinement property.
#[derive(Clone, Debug)]
pub struct RefinementCex {
    /// The cycle at which the equivalence check failed.
    pub finish_cycle: usize,
    /// RTL state at cycle 0 (the symbolic start the solver chose).
    pub rtl_start_state: BTreeMap<String, Value>,
    /// RTL inputs per cycle, `0..finish_cycle`.
    pub rtl_inputs: Vec<BTreeMap<String, Value>>,
    /// RTL state at every cycle `0..=finish_cycle` (index 0 equals
    /// `rtl_start_state`, the last entry equals `rtl_finish_state`).
    pub rtl_trace: Vec<BTreeMap<String, Value>>,
    /// RTL state at the finish cycle.
    pub rtl_finish_state: BTreeMap<String, Value>,
    /// ILA architectural state after the instruction (per mapped state).
    pub ila_post_state: BTreeMap<String, Value>,
    /// The mapped states that disagree at the finish cycle.
    pub mismatched_states: Vec<String>,
}

/// Result of checking one instruction.
#[derive(Clone, Debug)]
pub enum CheckResult {
    /// The refinement property holds (the SAT query was UNSAT).
    Holds,
    /// A counterexample was found.
    CounterExample(
        /// The witnessing trace.
        Box<RefinementCex>,
    ),
    /// A `Condition` finish never occurred within its bound (the check
    /// is vacuous; reported so the user can raise the bound).
    FinishNotReached {
        /// The bound that was exhausted.
        max_cycles: usize,
    },
}

impl CheckResult {
    /// True for [`CheckResult::Holds`].
    pub fn holds(&self) -> bool {
        matches!(self, CheckResult::Holds)
    }
}

/// Per-instruction verdict with effort statistics.
#[derive(Clone, Debug)]
pub struct InstrVerdict {
    /// The atomic instruction's name.
    pub instruction: String,
    /// The outcome.
    pub result: CheckResult,
    /// Wall-clock time spent on this instruction.
    pub time: Duration,
    /// CNF size of the (largest) query for this instruction.
    pub stats: BlastStats,
}

/// The verification report for one port.
#[derive(Clone, Debug)]
pub struct PortReport {
    /// The port's name.
    pub port: String,
    /// One verdict per atomic instruction, in declaration order.
    pub verdicts: Vec<InstrVerdict>,
    /// Total wall-clock time.
    pub total_time: Duration,
    /// Peak CNF size over all queries (the "memory usage" proxy).
    pub peak_stats: BlastStats,
}

impl PortReport {
    /// True if every instruction's property holds.
    pub fn all_hold(&self) -> bool {
        self.verdicts.iter().all(|v| v.result.holds())
    }

    /// The first counterexample, if any.
    pub fn first_counterexample(&self) -> Option<&InstrVerdict> {
        self.verdicts
            .iter()
            .find(|v| matches!(v.result, CheckResult::CounterExample(_)))
    }

    /// Time until the first counterexample was found (the paper's
    /// "Time (bug)" column), if any.
    pub fn time_to_first_counterexample(&self) -> Option<Duration> {
        let mut acc = Duration::ZERO;
        for v in &self.verdicts {
            acc += v.time;
            if matches!(v.result, CheckResult::CounterExample(_)) {
                return Some(acc);
            }
        }
        None
    }
}

/// The verification report for a whole module-ILA.
#[derive(Clone, Debug)]
pub struct ModuleReport {
    /// The module's name.
    pub module: String,
    /// One report per port.
    pub ports: Vec<PortReport>,
}

impl ModuleReport {
    /// True if every port verifies.
    pub fn all_hold(&self) -> bool {
        self.ports.iter().all(|p| p.all_hold())
    }

    /// Total wall-clock time across ports.
    pub fn total_time(&self) -> Duration {
        self.ports.iter().map(|p| p.total_time).sum()
    }

    /// Peak CNF size across ports.
    pub fn peak_stats(&self) -> BlastStats {
        let mut peak = BlastStats::default();
        for p in &self.ports {
            if p.peak_stats.variables + p.peak_stats.clauses > peak.variables + peak.clauses {
                peak = p.peak_stats;
            }
        }
        peak
    }

    /// Time until the first counterexample across ports ("Time (bug)").
    pub fn time_to_first_counterexample(&self) -> Option<Duration> {
        let mut acc = Duration::ZERO;
        for p in &self.ports {
            for v in &p.verdicts {
                acc += v.time;
                if matches!(v.result, CheckResult::CounterExample(_)) {
                    return Some(acc);
                }
            }
        }
        None
    }

    /// Total number of instructions checked.
    pub fn instructions_checked(&self) -> usize {
        self.ports.iter().map(|p| p.verdicts.len()).sum()
    }
}

/// Options controlling a verification run.
#[derive(Clone, Debug, Default)]
pub struct VerifyOptions {
    /// Stop a port's run at the first counterexample (used for the
    /// "Time (bug)" measurement).
    pub stop_at_first_cex: bool,
    /// Check the port's instructions on parallel threads (one SAT
    /// problem each, like the paper's multi-core model-checking server).
    /// Ignored when `stop_at_first_cex` is set, which needs sequential
    /// order for its timing semantics.
    pub parallel: bool,
    /// Share one incremental SAT solver (and one unrolling) across all
    /// of a port's instructions, discharging each property under
    /// assumptions so learned clauses and the blasted transition
    /// relation are reused. Ignored in parallel mode.
    pub incremental: bool,
}

/// The shared state of incremental mode: one unrolling of the RTL and
/// one solver accumulating its CNF and learned clauses.
struct SharedEngine {
    u: Unrolling,
    smt: SmtSolver,
}

/// Converts an RTL module into a transition system (same state/input
/// names) plus a map from every named signal (inputs, registers,
/// memories, wires) to its expression in the system's context.
///
/// Useful beyond refinement checking: BMC, k-induction, and liveness
/// checking of RTL modules all go through this conversion.
pub fn rtl_to_ts(rtl: &RtlModule) -> (TransitionSystem, BTreeMap<String, ExprRef>) {
    let mut ts = TransitionSystem::new(rtl.name());
    for i in rtl.inputs() {
        ts.input(i.name.clone(), Sort::Bv(i.width));
    }
    for r in rtl.regs() {
        ts.state(r.name.clone(), Sort::Bv(r.width));
        if let Some(init) = &r.init {
            ts.set_init(&r.name, init.clone()).expect("sort matches");
        }
    }
    for m in rtl.mems() {
        ts.state(
            m.name.clone(),
            Sort::Mem {
                addr_width: m.addr_width,
                data_width: m.data_width,
            },
        );
        if let Some(init) = &m.init {
            ts.set_init(&m.name, init.clone()).expect("sort matches");
        }
    }
    let mut memo = HashMap::new();
    for r in rtl.regs() {
        let next = import(ts.ctx_mut(), rtl.ctx(), r.next, &mut memo);
        ts.set_next(&r.name, next).expect("declared above");
    }
    for m in rtl.mems() {
        let next = import(ts.ctx_mut(), rtl.ctx(), m.next, &mut memo);
        ts.set_next(&m.name, next).expect("declared above");
    }
    let mut signals = BTreeMap::new();
    for i in rtl.inputs() {
        signals.insert(
            i.name.clone(),
            ts.ctx().find_var(&i.name).expect("declared"),
        );
    }
    for r in rtl.regs() {
        signals.insert(
            r.name.clone(),
            ts.ctx().find_var(&r.name).expect("declared"),
        );
    }
    for m in rtl.mems() {
        signals.insert(
            m.name.clone(),
            ts.ctx().find_var(&m.name).expect("declared"),
        );
    }
    for s in rtl.signals() {
        let e = import(ts.ctx_mut(), rtl.ctx(), s.expr, &mut memo);
        signals.insert(s.name.clone(), e);
    }
    (ts, signals)
}

/// Verifies one port-ILA against an RTL implementation.
///
/// # Errors
///
/// Returns a [`VerifyError`] for malformed refinement maps; property
/// *failures* are reported in the [`PortReport`], not as errors.
pub fn verify_port(
    port: &PortIla,
    rtl: &RtlModule,
    map: &RefinementMap,
    opts: &VerifyOptions,
) -> Result<PortReport, VerifyError> {
    let start_all = Instant::now();
    let (ts, ts_signals) = rtl_to_ts(rtl);

    let lookup_signal = |signals: &BTreeMap<String, ExprRef>,
                         name: &str,
                         context: &str|
     -> Result<ExprRef, VerifyError> {
        signals
            .get(name)
            .copied()
            .ok_or_else(|| VerifyError::UnknownRtlSignal {
                signal: name.to_string(),
                context: context.to_string(),
            })
    };

    // Pre-resolve the state and interface maps to TS expressions.
    let mut mapped_states: Vec<(String, ExprRef, Sort)> = Vec::new(); // (ila state, ts expr, ila sort)
    for (ila_state, rtl_name) in &map.state_map {
        let sv = port.find_state(ila_state).ok_or_else(|| {
            VerifyError::UnknownRtlSignal {
                signal: ila_state.clone(),
                context: format!("state map of {}: no such ILA state", map.name),
            }
        })?;
        let e = lookup_signal(&ts_signals, rtl_name, "state map")?;
        mapped_states.push((ila_state.clone(), e, sv.sort));
    }
    let mut mapped_inputs: Vec<(String, ExprRef, Sort)> = Vec::new();
    for (ila_input, rtl_name) in &map.interface_map {
        let iv = port.find_input(ila_input).ok_or_else(|| {
            VerifyError::UnknownRtlSignal {
                signal: ila_input.clone(),
                context: format!("interface map of {}: no such ILA input", map.name),
            }
        })?;
        let e = lookup_signal(&ts_signals, rtl_name, "interface map")?;
        mapped_inputs.push((ila_input.clone(), e, iv.sort));
    }
    // One self-contained check per atomic instruction; safe to run on
    // parallel threads (everything captured is shared immutably).
    let check_instruction = |instr: &gila_core::Instruction,
                             shared: Option<&mut SharedEngine>|
     -> Result<InstrVerdict, VerifyError> {
        let t0 = Instant::now();
        // Parse Verilog condition strings against a scratch copy of the
        // RTL (parsing needs &mut for expression interning).
        let mut rtl_scratch = rtl.clone();
        let imap = map.instruction_map_for(&instr.name);
        let (bound, finish) = match &imap.finish {
            FinishCondition::Cycles(n) => {
                if *n == 0 {
                    return Err(VerifyError::BadBound);
                }
                (*n, None)
            }
            FinishCondition::Condition { expr, max_cycles } => {
                if *max_cycles == 0 {
                    return Err(VerifyError::BadBound);
                }
                (*max_cycles, Some(expr.clone()))
            }
        };

        let mut fresh: Option<Unrolling> = None;
        let (u, mut shared_smt): (&mut Unrolling, Option<&mut SmtSolver>) = match shared {
            Some(se) => {
                se.u.extend_to(bound);
                (&mut se.u, Some(&mut se.smt))
            }
            None => {
                let mut x = Unrolling::new(&ts, false);
                x.extend_to(bound);
                (fresh.insert(x), None)
            }
        };
        let u: &mut Unrolling = u;

        // ILA variable -> frame-0 product expression.
        let mut var_map: HashMap<ExprRef, ExprRef> = HashMap::new();
        let adapt = |u: &mut Unrolling,
                         ila_name: &str,
                         ila_sort: Sort,
                         ts_expr: ExprRef,
                         rtl_name: &str|
         -> Result<ExprRef, VerifyError> {
            let mapped = u.map_expr(0, ts_expr);
            let found = u.ctx().sort_of(mapped);
            match (ila_sort, found) {
                (a, b) if a == b => Ok(mapped),
                (Sort::Bool, Sort::Bv(1)) => Ok(u.ctx_mut().bv_to_bool(mapped)),
                (a, b) => Err(VerifyError::SortMismatch {
                    ila: ila_name.to_string(),
                    ila_sort: a,
                    rtl: rtl_name.to_string(),
                    rtl_sort: b,
                }),
            }
        };
        for (ila_state, ts_expr, ila_sort) in &mapped_states {
            let rtl_name = &map.state_map[ila_state];
            let e = adapt(u, ila_state, *ila_sort, *ts_expr, rtl_name)?;
            let v = port
                .find_state(ila_state)
                .expect("resolved above")
                .var;
            var_map.insert(v, e);
        }
        for (ila_input, ts_expr, ila_sort) in &mapped_inputs {
            let rtl_name = &map.interface_map[ila_input];
            let e = adapt(u, ila_input, *ila_sort, *ts_expr, rtl_name)?;
            let v = port
                .find_input(ila_input)
                .expect("resolved above")
                .var;
            var_map.insert(v, e);
        }

        // Start condition: decode (grafted onto frame 0) + invariants +
        // optional strengthening.
        let mut import_memo = HashMap::new();
        let decode0 = import_mapped(u.ctx_mut(), port.ctx(), instr.decode, &var_map, &mut import_memo)
            .map_err(|var| VerifyError::UnmappedIlaVar {
                var,
                instruction: instr.name.clone(),
            })?;
        let mut start_conjuncts = vec![decode0];
        {
            let mut rtl_memo = HashMap::new();
            for inv in &map.invariants {
                let e = parse_rtl_expr(&mut rtl_scratch, inv)?;
                let e = import(u.ctx_mut(), rtl_scratch.ctx(), e, &mut rtl_memo);
                let e0 = u.map_expr(0, e);
                let eb = u.ctx_mut().bv_to_bool(e0);
                start_conjuncts.push(eb);
            }
            if let Some(s) = &imap.start_strengthening {
                let e = parse_rtl_expr(&mut rtl_scratch, s)?;
                let e = import(u.ctx_mut(), rtl_scratch.ctx(), e, &mut rtl_memo);
                let e0 = u.map_expr(0, e);
                let eb = u.ctx_mut().bv_to_bool(e0);
                start_conjuncts.push(eb);
            }
        }

        // Input policy.
        let mut policy_conjuncts = Vec::new();
        if imap.input_policy == InputPolicy::Hold {
            for k in 1..bound {
                let names: Vec<String> = u.frames()[k].inputs.keys().cloned().collect();
                for n in names {
                    let ik = u.frames()[k].inputs[&n];
                    let i0 = u.frames()[0].inputs[&n];
                    policy_conjuncts.push(u.ctx_mut().eq(ik, i0));
                }
            }
        }

        // ILA post-state per mapped state.
        let mut ila_post: BTreeMap<String, ExprRef> = BTreeMap::new();
        for (ila_state, _, _) in &mapped_states {
            let e = match instr.updates.get(ila_state) {
                Some(&upd) => {
                    import_mapped(u.ctx_mut(), port.ctx(), upd, &var_map, &mut import_memo)
                        .map_err(|var| VerifyError::UnmappedIlaVar {
                            var,
                            instruction: instr.name.clone(),
                        })?
                }
                None => {
                    let v = port.find_state(ila_state).expect("resolved").var;
                    var_map[&v]
                }
            };
            ila_post.insert(ila_state.clone(), e);
        }

        // The post-equivalence at a given frame (pre-state-only entries
        // are excluded; they anchor the start correspondence only).
        let post_eq_at = |u: &mut Unrolling, frame: usize| -> Vec<(String, ExprRef)> {
            mapped_states
                .iter()
                .filter(|(ila_state, _, _)| !map.unchecked_states.contains(ila_state))
                .map(|(ila_state, ts_expr, ila_sort)| {
                    let rtl_f = u.map_expr(frame, *ts_expr);
                    let rtl_f = match (ila_sort, u.ctx().sort_of(rtl_f)) {
                        (Sort::Bool, Sort::Bv(1)) => u.ctx_mut().bv_to_bool(rtl_f),
                        _ => rtl_f,
                    };
                    let eq = u.ctx_mut().eq(ila_post[ila_state], rtl_f);
                    (ila_state.clone(), eq)
                })
                .collect()
        };

        // Parse the finish condition once per instruction if present.
        let finish_ts: Option<ExprRef> = match &finish {
            Some(expr) => {
                let mut memo = HashMap::new();
                let e = parse_rtl_expr(&mut rtl_scratch, expr)?;
                Some(import(u.ctx_mut(), rtl_scratch.ctx(), e, &mut memo))
            }
            None => None,
        };

        // Run the check(s).
        let mut result = CheckResult::Holds;
        let mut best_stats = BlastStats::default();
        let frames_to_check: Vec<(usize, Vec<ExprRef>)> = match &finish_ts {
            None => vec![(bound, Vec::new())],
            Some(cond) => {
                // Check at the first frame where cond holds; one query per
                // candidate frame with "not finished before" assumptions.
                let mut cases = Vec::new();
                for j in 1..=bound {
                    let mut assumptions = Vec::new();
                    for k in 1..j {
                        let ck = u.map_expr(k, *cond);
                        let cb = u.ctx_mut().bv_to_bool(ck);
                        assumptions.push(u.ctx_mut().not(cb));
                    }
                    let cj = u.map_expr(j, *cond);
                    let cb = u.ctx_mut().bv_to_bool(cj);
                    assumptions.push(cb);
                    cases.push((j, assumptions));
                }
                cases
            }
        };

        let mut finish_reachable = finish_ts.is_none();
        for (frame, extra_assumptions) in frames_to_check {
            // In incremental mode every condition becomes an assumption
            // on the shared solver; otherwise a fresh solver per case.
            let mut fresh_smt = None;
            let mut base_assumptions: Vec<ExprRef> = Vec::new();
            let incremental = shared_smt.is_some();
            let smt: &mut SmtSolver = match shared_smt.as_deref_mut() {
                Some(s) => {
                    base_assumptions.extend(start_conjuncts.iter().copied());
                    base_assumptions.extend(policy_conjuncts.iter().copied());
                    base_assumptions.extend(extra_assumptions.iter().copied());
                    s
                }
                None => {
                    let s = fresh_smt.insert(SmtSolver::new());
                    for &c in &start_conjuncts {
                        s.assert(u.ctx(), c);
                    }
                    for &c in &policy_conjuncts {
                        s.assert(u.ctx(), c);
                    }
                    for &c in &extra_assumptions {
                        s.assert(u.ctx(), c);
                    }
                    s
                }
            };
            // Check that this case is reachable at all (for Condition
            // finishes); unreachable cases are skipped.
            if finish_ts.is_some() {
                let reachable = if incremental {
                    smt.check_assuming(u.ctx(), &base_assumptions).is_sat()
                } else {
                    smt.check().is_sat()
                };
                if !reachable {
                    best_stats = max_stats(best_stats, smt.stats());
                    continue;
                }
                finish_reachable = true;
            }
            let eqs = post_eq_at(u, frame);
            let eq_exprs: Vec<ExprRef> = eqs.iter().map(|(_, e)| *e).collect();
            let all_eq = u.ctx_mut().and_many(&eq_exprs);
            let viol = u.ctx_mut().not(all_eq);
            let sat = if incremental {
                let mut assumptions = base_assumptions.clone();
                assumptions.push(viol);
                smt.check_assuming(u.ctx(), &assumptions).is_sat()
            } else {
                smt.assert(u.ctx(), viol);
                smt.check().is_sat()
            };
            best_stats = max_stats(best_stats, smt.stats());
            if sat {
                // Diagnose which states mismatch.
                let mismatched: Vec<String> = {
                    let vals = u.concretize(
                        smt,
                        eqs.iter().cloned().collect::<BTreeMap<String, ExprRef>>(),
                    );
                    vals.into_iter()
                        .filter(|(_, v)| !v.as_bool())
                        .map(|(n, _)| n)
                        .collect()
                };
                let rtl_inputs = (0..frame)
                    .map(|k| u.concretize_inputs(smt, k))
                    .collect();
                let rtl_trace: Vec<_> = (0..=frame)
                    .map(|k| u.concretize_states(smt, k))
                    .collect();
                result = CheckResult::CounterExample(Box::new(RefinementCex {
                    finish_cycle: frame,
                    rtl_start_state: rtl_trace[0].clone(),
                    rtl_inputs,
                    rtl_finish_state: rtl_trace[frame].clone(),
                    rtl_trace,
                    ila_post_state: u.concretize(smt, ila_post.clone()),
                    mismatched_states: mismatched,
                }));
                break;
            }
        }
        if !finish_reachable && result.holds() {
            result = CheckResult::FinishNotReached { max_cycles: bound };
        }

        Ok(InstrVerdict {
            instruction: instr.name.clone(),
            result,
            time: t0.elapsed(),
            stats: best_stats,
        })
    };

    let mut verdicts: Vec<InstrVerdict> = Vec::new();
    if opts.parallel && !opts.stop_at_first_cex && port.instructions().len() > 1 {
        let results = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = port
                .instructions()
                .iter()
                .map(|instr| scope.spawn(move |_| check_instruction(instr, None)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("checker threads do not panic"))
                .collect::<Vec<_>>()
        })
        .expect("scope threads joined");
        for r in results {
            verdicts.push(r?);
        }
    } else {
        let mut shared = if opts.incremental {
            let u = Unrolling::new(&ts, false);
            Some(SharedEngine {
                u,
                smt: SmtSolver::new(),
            })
        } else {
            None
        };
        for instr in port.instructions() {
            let v = check_instruction(instr, shared.as_mut())?;
            let is_cex = matches!(v.result, CheckResult::CounterExample(_));
            verdicts.push(v);
            if is_cex && opts.stop_at_first_cex {
                break;
            }
        }
    }
    let mut peak_stats = BlastStats::default();
    for v in &verdicts {
        peak_stats = max_stats(peak_stats, v.stats);
    }

    Ok(PortReport {
        port: port.name().to_string(),
        verdicts,
        total_time: start_all.elapsed(),
        peak_stats,
    })
}

fn max_stats(a: BlastStats, b: BlastStats) -> BlastStats {
    if b.variables + b.clauses > a.variables + a.clauses {
        b
    } else {
        a
    }
}

/// Verifies a whole module-ILA: each port against the same RTL, using
/// the refinement map with the matching name (falling back to a map
/// named `"*"`).
///
/// # Errors
///
/// Returns a [`VerifyError`] if a port has no refinement map or a map is
/// malformed.
pub fn verify_module(
    module: &ModuleIla,
    rtl: &RtlModule,
    maps: &[RefinementMap],
    opts: &VerifyOptions,
) -> Result<ModuleReport, VerifyError> {
    let mut ports = Vec::new();
    for port in module.ports() {
        let map = maps
            .iter()
            .find(|m| m.name == port.name())
            .or_else(|| maps.iter().find(|m| m.name == "*"))
            .ok_or_else(|| VerifyError::UnknownRtlSignal {
                signal: port.name().to_string(),
                context: "no refinement map for port".to_string(),
            })?;
        let report = verify_port(port, rtl, map, opts)?;
        let has_cex = report.first_counterexample().is_some();
        ports.push(report);
        if has_cex && opts.stop_at_first_cex {
            break;
        }
    }
    Ok(ModuleReport {
        module: module.name().to_string(),
        ports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::StateKind;
    use gila_rtl::parse_verilog;

    /// A counter ILA and matching/buggy RTL for engine smoke tests.
    fn counter_ila() -> PortIla {
        let mut p = PortIla::new("counter");
        let en = p.input("en", Sort::Bv(1));
        let cnt = p.state("cnt", Sort::Bv(4), StateKind::Output);
        let d = p.ctx_mut().eq_u64(en, 1);
        let one = p.ctx_mut().bv_u64(1, 4);
        let nx = p.ctx_mut().bvadd(cnt, one);
        p.instr("inc").decode(d).update("cnt", nx).add().unwrap();
        let d = p.ctx_mut().eq_u64(en, 0);
        p.instr("hold").decode(d).add().unwrap();
        p
    }

    fn counter_rtl(buggy: bool) -> RtlModule {
        let step = if buggy { "4'd2" } else { "4'd1" };
        parse_verilog(&format!(
            r#"
module counter(clk, en_in);
  input clk;
  input en_in;
  reg [3:0] count;
  always @(posedge clk) if (en_in) count <= count + {step};
endmodule
"#
        ))
        .unwrap()
    }

    fn counter_map() -> RefinementMap {
        let mut m = RefinementMap::new("counter");
        m.map_state("cnt", "count");
        m.map_input("en", "en_in");
        m
    }

    #[test]
    fn correct_rtl_verifies() {
        let port = counter_ila();
        let rtl = counter_rtl(false);
        let report =
            verify_port(&port, &rtl, &counter_map(), &VerifyOptions::default()).unwrap();
        assert!(report.all_hold(), "{report:#?}");
        assert_eq!(report.verdicts.len(), 2);
        assert!(report.peak_stats.clauses > 0);
    }

    #[test]
    fn buggy_rtl_produces_counterexample() {
        let port = counter_ila();
        let rtl = counter_rtl(true);
        let report =
            verify_port(&port, &rtl, &counter_map(), &VerifyOptions::default()).unwrap();
        assert!(!report.all_hold());
        let v = report.first_counterexample().unwrap();
        assert_eq!(v.instruction, "inc");
        let CheckResult::CounterExample(cex) = &v.result else {
            panic!()
        };
        assert_eq!(cex.mismatched_states, vec!["cnt".to_string()]);
        // The RTL stepped by 2, the ILA by 1.
        let start = cex.rtl_start_state["count"].as_bv().to_u64();
        let finish = cex.rtl_finish_state["count"].as_bv().to_u64();
        assert_eq!((start + 2) % 16, finish);
        assert_eq!(
            cex.ila_post_state["cnt"].as_bv().to_u64(),
            (start + 1) % 16
        );
        // `hold` still verifies.
        assert!(report.verdicts.iter().any(|v| v.instruction == "hold" && v.result.holds()));
    }

    #[test]
    fn parallel_matches_sequential() {
        let port = counter_ila();
        let rtl = counter_rtl(false);
        let seq = verify_port(&port, &rtl, &counter_map(), &VerifyOptions::default()).unwrap();
        let par = verify_port(
            &port,
            &rtl,
            &counter_map(),
            &VerifyOptions {
                parallel: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(seq.all_hold() && par.all_hold());
        let names = |r: &PortReport| -> Vec<String> {
            r.verdicts.iter().map(|v| v.instruction.clone()).collect()
        };
        assert_eq!(names(&seq), names(&par));
        // And on a buggy design both find the same failing instruction.
        let buggy = counter_rtl(true);
        let par = verify_port(
            &port,
            &buggy,
            &counter_map(),
            &VerifyOptions {
                parallel: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            par.first_counterexample().unwrap().instruction,
            "inc"
        );
    }

    #[test]
    fn incremental_matches_isolated() {
        let port = counter_ila();
        for buggy in [false, true] {
            let rtl = counter_rtl(buggy);
            let base =
                verify_port(&port, &rtl, &counter_map(), &VerifyOptions::default()).unwrap();
            let inc = verify_port(
                &port,
                &rtl,
                &counter_map(),
                &VerifyOptions {
                    incremental: true,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(base.all_hold(), inc.all_hold(), "buggy={buggy}");
            for (a, b) in base.verdicts.iter().zip(&inc.verdicts) {
                assert_eq!(a.instruction, b.instruction);
                assert_eq!(a.result.holds(), b.result.holds(), "{}", a.instruction);
            }
        }
    }

    #[test]
    fn unknown_signal_is_config_error() {
        let port = counter_ila();
        let rtl = counter_rtl(false);
        let mut map = counter_map();
        map.map_state("cnt", "ghost");
        let err = verify_port(&port, &rtl, &map, &VerifyOptions::default()).unwrap_err();
        assert!(matches!(err, VerifyError::UnknownRtlSignal { .. }));
    }

    #[test]
    fn unmapped_ila_var_is_config_error() {
        let port = counter_ila();
        let rtl = counter_rtl(false);
        let mut map = counter_map();
        map.interface_map.clear(); // decode references `en`, now unmapped
        let err = verify_port(&port, &rtl, &map, &VerifyOptions::default()).unwrap_err();
        assert!(matches!(err, VerifyError::UnmappedIlaVar { .. }));
    }

    #[test]
    fn sort_mismatch_is_config_error() {
        let port = counter_ila();
        let rtl = counter_rtl(false);
        let mut map = counter_map();
        map.map_state("cnt", "en_in"); // 4-bit state vs 1-bit input
        let err = verify_port(&port, &rtl, &map, &VerifyOptions::default()).unwrap_err();
        assert!(matches!(err, VerifyError::SortMismatch { .. }));
    }

    #[test]
    fn invariant_restricts_start_states() {
        // RTL that misbehaves only when count == 15 (unreachable if we
        // assume count < 8); the invariant makes verification pass.
        let port = counter_ila();
        let rtl = parse_verilog(
            r#"
module counter(clk, en_in);
  input clk;
  input en_in;
  reg [3:0] count;
  always @(posedge clk)
    if (en_in) begin
      if (count == 4'd15) count <= 4'd7;
      else count <= count + 4'd1;
    end
endmodule
"#,
        )
        .unwrap();
        let map = counter_map();
        let report = verify_port(&port, &rtl, &map, &VerifyOptions::default()).unwrap();
        assert!(!report.all_hold(), "without invariant the wrap case fails");
        let mut map = counter_map();
        map.add_invariant("count < 4'd8");
        let report = verify_port(&port, &rtl, &map, &VerifyOptions::default()).unwrap();
        assert!(report.all_hold());
    }

    #[test]
    fn multi_cycle_finish_with_hold_policy() {
        // RTL takes 2 cycles: first latches, then commits. The ILA does
        // it in one instruction. finish = 2 cycles with held inputs.
        let mut p = PortIla::new("two_phase");
        let go = p.input("go", Sort::Bv(1));
        let data = p.input("data", Sort::Bv(4));
        p.state("out", Sort::Bv(4), StateKind::Output);
        let d = p.ctx_mut().eq_u64(go, 1);
        p.instr("write").decode(d).update("out", data).add().unwrap();
        let d = p.ctx_mut().eq_u64(go, 0);
        p.instr("nop").decode(d).add().unwrap();

        let rtl = parse_verilog(
            r#"
module two_phase(clk, go, data);
  input clk;
  input go;
  input [3:0] data;
  reg [3:0] buffer;
  reg [3:0] out_r;
  reg pending;
  always @(posedge clk) begin
    if (go) begin
      buffer <= data;
      pending <= 1'b1;
    end
    else pending <= 1'b0;
    if (pending) out_r <= buffer;
  end
endmodule
"#,
        )
        .unwrap();
        let mut map = RefinementMap::new("two_phase");
        map.map_state("out", "out_r");
        map.map_input("go", "go");
        map.map_input("data", "data");
        map.add_invariant("pending == 1'b0");
        map.add_instruction_map(crate::refmap::InstructionMap {
            instruction: "write".into(),
            start_strengthening: None,
            finish: FinishCondition::Cycles(2),
            input_policy: InputPolicy::Hold,
        });
        // nop: out unchanged after 1 cycle given pending==0.
        let report = verify_port(&p, &rtl, &map, &VerifyOptions::default()).unwrap();
        assert!(report.all_hold(), "{report:#?}");
    }

    #[test]
    fn condition_finish() {
        // RTL raises `done` one cycle after go; equivalence checked at
        // the first done cycle.
        let mut p = PortIla::new("cond");
        let go = p.input("go", Sort::Bv(1));
        let data = p.input("data", Sort::Bv(4));
        p.state("out", Sort::Bv(4), StateKind::Output);
        let d = p.ctx_mut().eq_u64(go, 1);
        p.instr("write").decode(d).update("out", data).add().unwrap();
        let d = p.ctx_mut().eq_u64(go, 0);
        p.instr("nop").decode(d).add().unwrap();
        let rtl = parse_verilog(
            r#"
module cond(clk, go, data);
  input clk;
  input go;
  input [3:0] data;
  reg [3:0] out_r;
  reg done;
  always @(posedge clk) begin
    if (go) begin
      out_r <= data;
      done <= 1'b1;
    end
    else done <= 1'b0;
  end
endmodule
"#,
        )
        .unwrap();
        let mut map = RefinementMap::new("cond");
        map.map_state("out", "out_r");
        map.map_input("go", "go");
        map.map_input("data", "data");
        map.add_instruction_map(crate::refmap::InstructionMap {
            instruction: "write".into(),
            start_strengthening: None,
            finish: FinishCondition::Condition {
                expr: "done == 1'b1".into(),
                max_cycles: 3,
            },
            input_policy: InputPolicy::Hold,
        });
        let report = verify_port(&p, &rtl, &map, &VerifyOptions::default()).unwrap();
        assert!(report.all_hold(), "{report:#?}");
        // An impossible finish condition is reported, not silently passed.
        let mut map2 = map.clone();
        map2.instruction_maps[0].finish = FinishCondition::Condition {
            expr: "done == 1'b1 && go == 1'b0 && done == 1'b0".into(),
            max_cycles: 2,
        };
        let report = verify_port(&p, &rtl, &map2, &VerifyOptions::default()).unwrap();
        assert!(report
            .verdicts
            .iter()
            .any(|v| matches!(v.result, CheckResult::FinishNotReached { .. })));
    }
}
