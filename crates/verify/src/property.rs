//! Human-readable rendering of the auto-generated refinement properties
//! (the right-hand side of the paper's Fig. 5).

use std::fmt::Write as _;

use gila_core::PortIla;

use crate::refmap::{FinishCondition, RefinementMap};

/// Renders the auto-generated correctness property for one instruction
/// in the notation of Fig. 5: equivalent starting states and mapped
/// inputs, the start condition (decode), and the post-state equivalence
/// at the finish cycle under the temporal next operator `X`.
///
/// # Examples
///
/// ```
/// use gila_core::{PortIla, StateKind};
/// use gila_expr::Sort;
/// use gila_verify::{render_property, RefinementMap};
///
/// let mut p = PortIla::new("decoder");
/// let w = p.input("wait", Sort::Bv(1));
/// p.state("step", Sort::Bv(2), StateKind::Internal);
/// let d = p.ctx_mut().eq_u64(w, 1);
/// p.instr("stall").decode(d).add()?;
/// let mut m = RefinementMap::new("decoder");
/// m.map_state("step", "status");
/// m.map_input("wait", "wait_data");
/// let text = render_property(&p, &m, "stall").unwrap();
/// assert!(text.contains("ila.step == rtl.status"));
/// assert!(text.contains("X^1"));
/// # Ok::<(), gila_core::ModelError>(())
/// ```
pub fn render_property(port: &PortIla, map: &RefinementMap, instruction: &str) -> Option<String> {
    let instr = port.find_instruction(instruction)?;
    let imap = map.instruction_map_for(instruction);
    let mut out = String::new();
    let _ = writeln!(out, "// auto-generated property for instruction {instruction:?}");
    let _ = writeln!(out, "[");
    // Yellow in Fig. 5: equivalent starting states.
    for (ila_state, rtl_signal) in &map.state_map {
        let _ = writeln!(out, "  (ila.{ila_state} == rtl.{rtl_signal}) &&");
    }
    // Green: corresponding inputs.
    for (ila_input, rtl_signal) in &map.interface_map {
        let _ = writeln!(out, "  (ila.{ila_input} == rtl.{rtl_signal}) &&");
    }
    // Blue: start condition (the decode function).
    let _ = writeln!(
        out,
        "  ({})  // start condition: decode",
        port.ctx().display(instr.decode)
    );
    for inv in &map.invariants {
        let _ = writeln!(out, "  && ({inv})  // reachability invariant");
    }
    if let Some(s) = &imap.start_strengthening {
        let _ = writeln!(out, "  && ({s})  // start strengthening");
    }
    // Orange: finish condition, then the post equivalence.
    let finish = match &imap.finish {
        FinishCondition::Cycles(n) => format!("X^{n}"),
        FinishCondition::Condition { expr, max_cycles } => {
            format!("X[first ({expr}) within {max_cycles}]")
        }
    };
    let _ = writeln!(out, "] -> {finish} [");
    for (ila_state, rtl_signal) in &map.state_map {
        let update = match instr.updates.get(ila_state) {
            Some(&u) => format!("{}", port.ctx().display(u)),
            None => format!("ila.{ila_state} (unchanged)"),
        };
        let _ = writeln!(out, "  (ila'.{ila_state} == rtl.{rtl_signal})  // ila' = {update}");
    }
    let _ = writeln!(out, "]");
    Some(out)
}

/// Renders the properties for every atomic instruction of a port.
pub fn render_all_properties(port: &PortIla, map: &RefinementMap) -> String {
    port.instructions()
        .iter()
        .filter_map(|i| render_property(port, map, &i.name))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::StateKind;
    use gila_expr::Sort;

    #[test]
    fn renders_all_parts() {
        let mut p = PortIla::new("dec");
        let w = p.input("wait", Sort::Bv(1));
        let step = p.state("step", Sort::Bv(2), StateKind::Internal);
        let d = p.ctx_mut().eq_u64(w, 1);
        p.instr("stall").decode(d).add().unwrap();
        let d = p.ctx_mut().eq_u64(w, 0);
        let one = p.ctx_mut().bv_u64(1, 2);
        let nx = p.ctx_mut().bvsub(step, one);
        p.instr("process").decode(d).update("step", nx).add().unwrap();
        let mut m = RefinementMap::new("dec");
        m.map_state("step", "status");
        m.map_input("wait", "wait_data");
        m.add_invariant("status <= 2'd3");

        let text = render_property(&p, &m, "stall").unwrap();
        assert!(text.contains("ila.step == rtl.status"));
        assert!(text.contains("ila.wait == rtl.wait_data"));
        assert!(text.contains("unchanged"));
        assert!(text.contains("reachability invariant"));

        let text = render_property(&p, &m, "process").unwrap();
        assert!(text.contains("bvsub"));

        assert!(render_property(&p, &m, "ghost").is_none());
        let all = render_all_properties(&p, &m);
        assert!(all.contains("stall") && all.contains("process"));
    }
}
