//! Work-stealing verification scheduler with per-port job batching and
//! optional learnt-clause sharing.
//!
//! Work is batched per port: one job carries a whole [`PortPlan`]'s
//! instruction list — or a contiguous chunk of it when the port has
//! enough instructions to keep several workers busy — so a single
//! worker amortizes one `Unrolling` + blast of the port's transition
//! relation across every instruction in the batch, exactly like the
//! sequential persistent engine does. Each plan brings its *own*
//! cone-of-influence-sliced transition system, so a worker serving a
//! port blasts only that port's logic. Workers keep a small cache of
//! per-port engines, so stealing a second chunk of a port they already
//! served costs no new blast.
//!
//! With clause sharing enabled, the workers serving chunks of the same
//! port exchange short learnt clauses through a per-port lock-striped
//! pool. Every engine of a shared port is warmed up with an identical
//! deterministic encoding of the port's frame logic, which makes the
//! CNF variable numbering below the warm-up mark line up across
//! engines; only activation-free clauses over that shared prefix are
//! exported (see [`SmtSolver::export_shared_learnts`] for the
//! soundness argument), so imports can change solver effort but never
//! verdicts.
//!
//! Scheduling is deterministic in its *results* but not its order:
//! workers pull from their local deque first, refill in batches from
//! the global injector, and steal from peers when both are empty.
//! Verdicts are reassembled into declaration order afterwards, so a
//! pooled run reports exactly what a sequential run would.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crossbeam::deque::{Injector, Stealer, Worker};
use gila_mc::TransitionSystem;
use gila_smt::{Lit, SmtSolver};

use crate::engine::{
    run_job_guarded, CheckResult, InstrVerdict, JobMeta, PortPlan, RunCtx, VerifyError,
    WorkerEngine,
};

/// One unit of work: a batch of instructions of a single port.
#[derive(Clone, Debug)]
struct Job {
    port: usize,
    /// Instruction indices of the batch, in declaration order.
    instrs: Vec<usize>,
    /// Run-unique batch id, recorded on every verdict of the batch.
    batch_id: u64,
}

/// Scheduler knobs, resolved from [`crate::engine::VerifyOptions`].
pub(crate) struct PoolConfig {
    /// Requested pool size (the spawned count is capped by the number
    /// of batches).
    pub(crate) workers: usize,
    /// Cancel all outstanding work on the first counterexample.
    pub(crate) stop_at_first_cex: bool,
    /// Batch jobs per port (chunked); off = one job per instruction.
    pub(crate) batch_ports: bool,
    /// Exchange learnt clauses between workers serving the same port.
    pub(crate) share_clauses: bool,
}

/// A port's share of a pool run.
pub(crate) struct PoolPortResult {
    /// `(instruction index, verdict)` in declaration order. Gaps occur
    /// only when the run was cancelled (`stop_at_first_cex`).
    pub(crate) verdicts: Vec<(usize, InstrVerdict)>,
    /// When the port's last verdict landed, measured from pool start.
    pub(crate) last_done: Duration,
}

/// The outcome of a pool run, plus introspection for tests.
pub(crate) struct PoolOutcome {
    /// One entry per input plan, in the same order.
    pub(crate) ports: Vec<PoolPortResult>,
    /// How many worker threads were spawned (≤ the requested size).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) workers_spawned: usize,
    /// How many engines were actually built (lazily created, so idle
    /// workers never blast anything).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) engines_created: usize,
}

/// Per-port batches a worker can serve without rebuilding its engine
/// cache entry. The cache holds this many ports' engines per worker;
/// serving a third port evicts the least recently used engine.
const ENGINE_CACHE: usize = 2;

/// Maximum literal count of a shared learnt clause. Short clauses
/// prune the most search per byte; long ones mostly burn import time
/// and clause-database space.
const SHARE_LEN_CAP: usize = 8;

/// Runs every instruction of every plan on a pool of at most
/// `cfg.workers` threads. `tss` holds one transition system per plan
/// (typically per-port COI slices of the same module); a job for plan
/// `i` is always served by an engine over `tss[i]`.
///
/// With `cfg.stop_at_first_cex`, the first counterexample found
/// anywhere cancels all queued work *and* interrupts in-flight solves
/// through the workers' [`CancelToken`]s; an interrupted job reports
/// `Unknown(Cancelled)`.
///
/// Jobs already decided by the context's resumed checkpoint are never
/// scheduled; their stored verdicts are merged into the result. A job
/// that panics is isolated into a [`CheckResult::JobPanicked`] verdict
/// ([`run_job_guarded`]) and the pool keeps draining; the rest of the
/// panicking batch continues on a rebuilt engine.
///
/// # Errors
///
/// A configuration error on any job cancels the run and is returned
/// (the lowest `(port, instruction)` one, for determinism).
pub(crate) fn run_pool(
    plans: &[PortPlan<'_>],
    tss: &[TransitionSystem],
    cfg: PoolConfig,
    ctx: &RunCtx<'_>,
) -> Result<PoolOutcome, VerifyError> {
    assert_eq!(plans.len(), tss.len(), "one transition system per plan");
    let tracer = ctx.tracer;
    let mut resumed: Vec<((usize, usize), InstrVerdict)> = Vec::new();
    let mut pending: Vec<Vec<usize>> = Vec::with_capacity(plans.len());
    for (port, plan) in plans.iter().enumerate() {
        let mut todo = Vec::new();
        for instr in 0..plan.instrs.len() {
            let name = &plan.port.instructions()[instr].name;
            match ctx.resumed_verdict(plan.port.name(), name) {
                Some(v) => resumed.push(((port, instr), v)),
                None => todo.push(instr),
            }
        }
        pending.push(todo);
    }
    let total: usize = pending.iter().map(Vec::len).sum();
    let jobs = make_jobs(&pending, cfg.workers, cfg.batch_ports);

    // A port's clause stripe only activates when its instructions are
    // split across at least two batches — with a single batch there is
    // no peer to share with, and the warm-up encoding would be pure
    // overhead.
    let mut batches_of_port = vec![0usize; plans.len()];
    for job in &jobs {
        batches_of_port[job.port] += 1;
    }
    let stripes: Vec<ShareStripe> = batches_of_port
        .iter()
        .map(|&n| ShareStripe {
            active: cfg.share_clauses && n >= 2,
            clauses: Mutex::new(Vec::new()),
        })
        .collect();

    let workers_spawned = cfg.workers.clamp(1, jobs.len().max(1));
    let injector = Injector::new();
    for job in jobs {
        injector.push(job);
    }
    let locals: Vec<Worker<Job>> = (0..workers_spawned).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<Job>> = locals.iter().map(Worker::stealer).collect();

    // An externally supplied token (a serve-layer client disconnect or
    // watchdog) doubles as the pool's internal stop token, so one
    // cancellation path interrupts job pickup and in-flight solves alike.
    let cancel = ctx
        .policy
        .cancel
        .clone()
        .unwrap_or_default();
    let engines_created = AtomicUsize::new(0);
    let t0 = Instant::now();
    type JobRecord = (
        (usize, usize),
        Result<InstrVerdict, VerifyError>,
        Duration,
    );
    let results: Mutex<Vec<JobRecord>> = Mutex::new(Vec::with_capacity(total));

    let scope_result = crossbeam::thread::scope(|scope| {
        for (worker_id, local) in locals.into_iter().enumerate() {
            let (injector, stealers, cancel) = (&injector, &stealers, &cancel);
            let (engines_created, results, ctx) = (&engines_created, &results, &ctx);
            let (tss, stripes) = (&tss, &stripes);
            scope.spawn(move |_| {
                // Per-port persistent engines, with the CNF-prefix mark
                // of each (0 when its port's stripe is inactive).
                let mut cache: Vec<(usize, WorkerEngine, usize)> = Vec::new();
                // Per-port clause-sharing state: what this worker has
                // already published or imported, and how far into the
                // stripe it has read.
                let mut share_local: HashMap<usize, ShareLocal> = HashMap::new();
                while !cancel.is_cancelled() {
                    let Some((job, stolen)) = find_job(&local, injector, stealers) else {
                        break;
                    };
                    let queue_ns = t0.elapsed().as_nanos() as u64;
                    let plan = &plans[job.port];
                    let ts = &tss[job.port];
                    let stripe = &stripes[job.port];
                    let (mut slot, mut mark) = cache_take(&mut cache, job.port);
                    for &idx in &job.instrs {
                        if cancel.is_cancelled() {
                            break;
                        }
                        let meta = JobMeta {
                            worker: Some(worker_id),
                            queue_ns,
                            stolen,
                            batch_id: Some(job.batch_id),
                            batch_size: job.instrs.len() as u64,
                        };
                        let had_engine = slot.is_some();
                        let mark_cell = std::cell::Cell::new(0usize);
                        let mut res = run_job_guarded(
                            plan,
                            idx,
                            &mut slot,
                            || {
                                engines_created.fetch_add(1, Ordering::Relaxed);
                                let mut e = WorkerEngine::new(ts, tracer);
                                // Cancellation interrupts this worker's
                                // solver mid-search, not just job pickup.
                                e.smt.set_cancel(cancel.clone());
                                if stripe.active {
                                    mark_cell.set(warm_engine(&mut e, plan, ts));
                                }
                                e
                            },
                            tracer,
                            meta,
                            &ctx.policy,
                        );
                        if !had_engine && slot.is_some() {
                            mark = mark_cell.get();
                        }
                        if slot.is_none() {
                            // The job panicked and wiped the engine. A
                            // rebuilt engine starts from a clean solver,
                            // so forget this worker's sharing history:
                            // the fresh solver may re-import everything.
                            share_local.remove(&job.port);
                            mark = 0;
                        }
                        if stripe.active {
                            if let (Ok(v), Some(engine)) = (&mut res, slot.as_mut()) {
                                let sl = share_local.entry(job.port).or_default();
                                exchange_clauses(&mut engine.smt, mark, stripe, sl, v);
                            }
                        }
                        let done_at = t0.elapsed();
                        let abort = match &res {
                            Ok(v) => {
                                ctx.record_checkpoint(plan.port.name(), v);
                                cfg.stop_at_first_cex
                                    && matches!(v.result, CheckResult::CounterExample(_))
                            }
                            Err(_) => true,
                        };
                        results.lock().unwrap_or_else(|p| p.into_inner()).push((
                            (job.port, idx),
                            res,
                            done_at,
                        ));
                        if abort {
                            cancel.cancel();
                            break;
                        }
                    }
                    cache_store(&mut cache, job.port, slot, mark);
                }
            });
        }
    });
    // Workers isolate job panics themselves; a panic escaping to here
    // is a scheduler bug, reported as an internal error rather than a
    // double panic out of the verification API.
    if scope_result.is_err() {
        return Err(VerifyError::Internal {
            reason: "a verification worker died outside job isolation".to_string(),
        });
    }

    let mut records = results
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    records.extend(resumed.into_iter().map(|(key, v)| (key, Ok(v), Duration::ZERO)));
    records.sort_by_key(|(key, _, _)| *key);
    let mut ports: Vec<PoolPortResult> = plans
        .iter()
        .map(|_| PoolPortResult {
            verdicts: Vec::new(),
            last_done: Duration::ZERO,
        })
        .collect();
    for ((port, instr), res, done_at) in records {
        let verdict = res?;
        let port = &mut ports[port];
        port.verdicts.push((instr, verdict));
        port.last_done = port.last_done.max(done_at);
    }
    Ok(PoolOutcome {
        ports,
        workers_spawned,
        engines_created: engines_created.load(Ordering::Relaxed),
    })
}

/// Splits each port's pending instruction indices into batches.
///
/// With batching on, a port is split into a number of contiguous chunks
/// proportional to its share of the total instruction count (rounded,
/// at least 1, at most one chunk per instruction), targeting `workers`
/// chunks overall: one heavyweight port is chunked so every worker gets
/// a piece, while a pile of small ports still costs one unrolling
/// each. Off, every instruction is its own single-element batch — the
/// pre-batching granularity, kept for A/B comparison.
fn make_jobs(pending: &[Vec<usize>], workers: usize, batch_ports: bool) -> Vec<Job> {
    let total: usize = pending.iter().map(Vec::len).sum();
    let mut jobs = Vec::new();
    let mut batch_id = 0u64;
    for (port, instrs) in pending.iter().enumerate() {
        let n = instrs.len();
        if n == 0 {
            continue;
        }
        let chunks = if batch_ports {
            ((n * workers + total / 2) / total.max(1)).clamp(1, n)
        } else {
            n
        };
        let base = n / chunks;
        let extra = n % chunks;
        let mut off = 0;
        for c in 0..chunks {
            let len = base + usize::from(c < extra);
            jobs.push(Job {
                port,
                instrs: instrs[off..off + len].to_vec(),
                batch_id,
            });
            batch_id += 1;
            off += len;
        }
    }
    jobs
}

/// Takes the cached engine for `port` out of the worker's cache, if
/// present, along with its warm-up mark.
fn cache_take(
    cache: &mut Vec<(usize, WorkerEngine, usize)>,
    port: usize,
) -> (Option<WorkerEngine>, usize) {
    match cache.iter().position(|(p, _, _)| *p == port) {
        Some(pos) => {
            let (_, engine, mark) = cache.remove(pos);
            (Some(engine), mark)
        }
        None => (None, 0),
    }
}

/// Returns an engine to the cache (most recently used at the back),
/// evicting the least recently used entry past [`ENGINE_CACHE`].
fn cache_store(
    cache: &mut Vec<(usize, WorkerEngine, usize)>,
    port: usize,
    engine: Option<WorkerEngine>,
    mark: usize,
) {
    if let Some(e) = engine {
        cache.push((port, e, mark));
        if cache.len() > ENGINE_CACHE {
            cache.remove(0);
        }
    }
}

/// The per-port shared clause pool. One mutex per port (lock striping):
/// workers serving different ports never contend, and workers of the
/// same port only touch the lock once per instruction.
struct ShareStripe {
    /// Sharing only pays when ≥ 2 batches of the port exist.
    active: bool,
    /// Published clauses, in canonical (sorted-literal) form. Append
    /// only; per-worker cursors track what each worker has read.
    clauses: Mutex<Vec<Vec<Lit>>>,
}

/// One worker's view of one port's stripe.
#[derive(Default)]
struct ShareLocal {
    /// Canonical clauses this worker has already published or imported
    /// — its own solver already knows them, so they are never imported
    /// (and never re-published).
    seen: HashSet<Vec<Lit>>,
    /// How far into the stripe this worker has read.
    cursor: usize,
}

/// Builds the deterministic shared CNF prefix of a port's engine: every
/// state, input, and invariant constraint of the sliced system, mapped
/// over every frame up to the port's deepest instruction bound, encoded
/// (not asserted — definitional clauses only). Any two engines of the
/// same port run this identical sequence from a fresh solver, so their
/// variable numbering agrees below the returned mark and activation-free
/// clauses over the prefix transfer soundly between them.
fn warm_engine(engine: &mut WorkerEngine, plan: &PortPlan<'_>, ts: &TransitionSystem) -> usize {
    let max_bound = plan.instrs.iter().map(|ip| ip.bound).max().unwrap_or(0);
    let WorkerEngine { u, smt, .. } = engine;
    u.extend_to(max_bound);
    for k in 0..=max_bound {
        for v in ts.states().iter().chain(ts.inputs().iter()) {
            let e = u.map_expr(k, v.var);
            smt.encode(u.ctx(), e);
        }
        for &c in ts.constraints() {
            let e = u.map_expr(k, c);
            smt.encode(u.ctx(), e);
        }
    }
    smt.cnf_vars()
}

/// One publish/import round against a port's stripe, run after each
/// instruction (outside its effort window, like inprocessing). Exports
/// go through the activation- and prefix-filtered
/// [`SmtSolver::export_shared_learnts`]; canonicalization (sorted
/// literals) makes the dedup set order-insensitive. Counters land on
/// the instruction's verdict.
fn exchange_clauses(
    smt: &mut SmtSolver,
    mark: usize,
    stripe: &ShareStripe,
    local: &mut ShareLocal,
    v: &mut InstrVerdict,
) {
    let mut fresh: Vec<Vec<Lit>> = Vec::new();
    for mut clause in smt.export_shared_learnts(SHARE_LEN_CAP, mark) {
        clause.sort_unstable();
        if local.seen.insert(clause.clone()) {
            fresh.push(clause);
        }
    }
    v.clauses_exported += fresh.len() as u64;
    let incoming: Vec<Vec<Lit>> = {
        let mut pool = stripe.clauses.lock().unwrap_or_else(|p| p.into_inner());
        // Read the peers' clauses since the last visit *before*
        // appending our own, so we never re-import what we publish.
        let incoming = pool[local.cursor..].to_vec();
        pool.extend(fresh);
        local.cursor = pool.len();
        incoming
    };
    let mut accept: Vec<Vec<Lit>> = Vec::new();
    for clause in incoming {
        if local.seen.insert(clause.clone()) {
            accept.push(clause);
        } else {
            v.clauses_deduped += 1;
        }
    }
    v.clauses_imported += smt.import_shared_clauses(accept.iter().map(Vec::as_slice)) as u64;
}

/// Local deque first, then a batch refill from the global injector,
/// then stealing from a peer. `None` means the run is drained (no
/// worker creates new jobs, so empty-everywhere is terminal). The
/// boolean marks jobs taken from a *peer's* deque — the telemetry
/// steal count.
fn find_job(
    local: &Worker<Job>,
    injector: &Injector<Job>,
    stealers: &[Stealer<Job>],
) -> Option<(Job, bool)> {
    if let Some(job) = local.pop() {
        return Some((job, false));
    }
    if let Some(job) = injector.steal_batch_and_pop(local).success() {
        return Some((job, false));
    }
    stealers
        .iter()
        .find_map(|s| s.steal().success())
        .map(|job| (job, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::{counter_ila, counter_map, counter_rtl};
    use crate::engine::{rtl_to_ts, verify_port, VerifyOptions};
    use crate::fault::{FaultAction, FaultPlan};

    fn counter_cfg(workers: usize, stop_at_first_cex: bool) -> PoolConfig {
        PoolConfig {
            workers,
            stop_at_first_cex,
            batch_ports: true,
            share_clauses: false,
        }
    }

    fn run_counter_pool(
        buggy: bool,
        workers: usize,
        stop_at_first_cex: bool,
    ) -> PoolOutcome {
        run_counter_pool_with(buggy, counter_cfg(workers, stop_at_first_cex), None)
    }

    fn run_counter_pool_with(
        buggy: bool,
        cfg: PoolConfig,
        fault: Option<FaultPlan>,
    ) -> PoolOutcome {
        let port = counter_ila();
        let rtl = counter_rtl(buggy);
        let map = counter_map();
        let (ts, ts_signals) = rtl_to_ts(&rtl).unwrap();
        let plan = PortPlan::build(&port, &rtl, &map, &ts_signals).unwrap();
        let tracer = gila_trace::Tracer::disabled();
        let mut ctx = RunCtx::plain(&tracer);
        ctx.policy.fault = fault.map(std::sync::Arc::new);
        run_pool(
            std::slice::from_ref(&plan),
            std::slice::from_ref(&ts),
            cfg,
            &ctx,
        )
        .unwrap()
    }

    #[test]
    fn pool_matches_sequential_verdicts() {
        for buggy in [false, true] {
            let port = counter_ila();
            let rtl = counter_rtl(buggy);
            let seq =
                verify_port(&port, &rtl, &counter_map(), &VerifyOptions::default()).unwrap();
            for workers in [1, 2, 8] {
                let outcome = run_counter_pool(buggy, workers, false);
                let pooled = &outcome.ports[0].verdicts;
                assert_eq!(pooled.len(), seq.verdicts.len(), "workers={workers}");
                for ((idx, got), want) in pooled.iter().zip(&seq.verdicts) {
                    assert_eq!(got.instruction, want.instruction, "idx={idx}");
                    assert_eq!(
                        got.result.holds(),
                        want.result.holds(),
                        "workers={workers} instr={}",
                        got.instruction
                    );
                }
            }
        }
    }

    #[test]
    fn worker_count_never_exceeds_batch_count() {
        // Two instructions: with 8 workers requested, batching splits
        // the port into (at most) one chunk per instruction, so at most
        // 2 workers spawn, and engines are only built for workers that
        // actually ran.
        let outcome = run_counter_pool(false, 8, false);
        assert_eq!(outcome.workers_spawned, 2);
        assert!(outcome.engines_created <= 2);
        let outcome = run_counter_pool(false, 1, false);
        assert_eq!(outcome.workers_spawned, 1);
        assert_eq!(outcome.engines_created, 1);
    }

    #[test]
    fn batching_amortizes_one_engine_across_the_port() {
        // With one worker, batching folds the whole port into one job:
        // one batch id, one engine, queue/steal metadata shared by every
        // verdict of the batch.
        let outcome = run_counter_pool(false, 1, false);
        assert_eq!(outcome.engines_created, 1);
        let verdicts = &outcome.ports[0].verdicts;
        assert_eq!(verdicts.len(), 2);
        let first = &verdicts[0].1;
        let second = &verdicts[1].1;
        assert_eq!(first.batch_id, Some(0));
        assert_eq!(second.batch_id, Some(0));
        assert_eq!(first.batch_size, 2);
        assert_eq!(second.batch_size, 2);
        assert_eq!(first.queue_ns, second.queue_ns, "queue latency is per-batch");
        assert_eq!(first.stolen, second.stolen);
    }

    #[test]
    fn batching_off_restores_per_instruction_jobs() {
        let cfg = PoolConfig {
            workers: 8,
            stop_at_first_cex: false,
            batch_ports: false,
            share_clauses: false,
        };
        let outcome = run_counter_pool_with(false, cfg, None);
        let verdicts = &outcome.ports[0].verdicts;
        assert_eq!(verdicts.len(), 2);
        let ids: Vec<_> = verdicts.iter().map(|(_, v)| v.batch_id).collect();
        assert_eq!(ids, vec![Some(0), Some(1)], "one batch per instruction");
        assert!(verdicts.iter().all(|(_, v)| v.batch_size == 1));
    }

    #[test]
    fn clause_sharing_preserves_verdicts() {
        for buggy in [false, true] {
            let baseline = run_counter_pool(buggy, 2, false);
            let cfg = PoolConfig {
                workers: 2,
                stop_at_first_cex: false,
                batch_ports: true,
                share_clauses: true,
            };
            let shared = run_counter_pool_with(buggy, cfg, None);
            let b = &baseline.ports[0].verdicts;
            let s = &shared.ports[0].verdicts;
            assert_eq!(b.len(), s.len(), "buggy={buggy}");
            for ((_, want), (_, got)) in b.iter().zip(s) {
                assert_eq!(want.instruction, got.instruction);
                assert_eq!(
                    want.result.holds(),
                    got.result.holds(),
                    "sharing flipped a verdict on {}",
                    got.instruction
                );
            }
        }
    }

    #[test]
    fn single_worker_pool_reuses_cnf_across_instructions() {
        // On a persistent engine the second instruction re-uses the
        // blasted transition relation: its CNF growth must collapse
        // relative to the first instruction on the same worker.
        let outcome = run_counter_pool(false, 1, false);
        let verdicts = &outcome.ports[0].verdicts;
        assert_eq!(verdicts.len(), 2);
        let first = verdicts[0].1.cnf_growth;
        let second = verdicts[1].1.cnf_growth;
        assert!(first.clauses > 0);
        assert!(
            second.clauses * 2 < first.clauses,
            "expected CNF reuse: first instruction grew by {first:?}, second by {second:?}"
        );
        assert!(second.variables * 2 < first.variables, "{first:?} vs {second:?}");
    }

    #[test]
    fn shared_engine_does_not_leak_assumptions_between_jobs() {
        // On the buggy counter, `inc` fails and `hold` passes. A single
        // worker serves both from one solver; if `inc`'s scoped asserts
        // (its decode en==1, or the violation clause) leaked, `hold`
        // would be judged under the wrong start condition.
        let outcome = run_counter_pool(true, 1, false);
        let verdicts = &outcome.ports[0].verdicts;
        assert_eq!(verdicts.len(), 2);
        let inc = &verdicts[0].1;
        let hold = &verdicts[1].1;
        assert_eq!(inc.instruction, "inc");
        assert!(matches!(inc.result, CheckResult::CounterExample(_)));
        assert_eq!(hold.instruction, "hold");
        assert!(hold.result.holds(), "leaked state poisoned the second job");
    }

    #[test]
    fn cancellation_stops_scheduling_after_first_cex() {
        let outcome = run_counter_pool(true, 2, true);
        let verdicts = &outcome.ports[0].verdicts;
        // The counterexample is always reported; later jobs may have
        // been cancelled before starting.
        assert!(verdicts
            .iter()
            .any(|(_, v)| matches!(v.result, CheckResult::CounterExample(_))));
        assert!(verdicts.len() <= 2);
    }

    #[test]
    fn empty_plan_set_yields_empty_outcome() {
        let rtl = counter_rtl(false);
        let (_ts, _) = rtl_to_ts(&rtl).unwrap();
        let tracer = gila_trace::Tracer::disabled();
        let outcome = run_pool(&[], &[], counter_cfg(4, false), &RunCtx::plain(&tracer)).unwrap();
        assert!(outcome.ports.is_empty());
        assert_eq!(outcome.engines_created, 0);
    }

    /// Regression test for the poisoning `.expect(...)` lock/join
    /// handling: a job that panics mid-check must become a
    /// `JobPanicked` verdict, not tear down the pool, and every other
    /// job must still be decided normally.
    #[test]
    fn panicking_job_is_isolated_and_pool_drains() {
        for workers in [1, 4] {
            let fault = FaultPlan::new().inject(
                "counter",
                "inc",
                FaultAction::Panic("injected".into()),
                Some(1),
            );
            let outcome =
                run_counter_pool_with(false, counter_cfg(workers, false), Some(fault));
            let verdicts = &outcome.ports[0].verdicts;
            assert_eq!(verdicts.len(), 2, "workers={workers}");
            let inc = &verdicts[0].1;
            assert_eq!(inc.instruction, "inc");
            let CheckResult::JobPanicked { message } = &inc.result else {
                panic!("expected JobPanicked, got {:?}", inc.result);
            };
            assert!(message.contains("injected"), "{message}");
            // The other instruction is decided as if nothing happened.
            let hold = &verdicts[1].1;
            assert_eq!(hold.instruction, "hold");
            assert!(hold.result.holds(), "workers={workers}");
        }
    }

    /// A worker whose engine was poisoned by a panic rebuilds it and
    /// keeps serving: with one worker, the panic on the first job must
    /// not leave the second job with a corrupt solver — even mid-batch.
    #[test]
    fn single_worker_rebuilds_engine_after_panic() {
        let fault = FaultPlan::new().inject(
            "counter",
            "inc",
            FaultAction::Panic("first job dies".into()),
            Some(1),
        );
        let outcome = run_counter_pool_with(true, counter_cfg(1, false), Some(fault));
        let verdicts = &outcome.ports[0].verdicts;
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts[0].1.result.is_panicked());
        // On the buggy counter `hold` still genuinely holds; deciding it
        // requires a fresh, working engine after the panic.
        assert!(verdicts[1].1.result.holds());
        // One engine for the panicked job, one rebuilt for the next.
        assert_eq!(outcome.engines_created, 2);
    }

    #[test]
    fn make_jobs_balances_chunks_proportionally() {
        // One port of 4 and one of 2, 4 workers: the big port gets 3
        // chunks, the small one 1, totalling the worker count.
        let pending = vec![vec![0, 1, 2, 3], vec![0, 1]];
        let jobs = make_jobs(&pending, 4, true);
        assert_eq!(jobs.len(), 4);
        let sizes: Vec<usize> = jobs.iter().map(|j| j.instrs.len()).collect();
        assert_eq!(sizes, vec![2, 1, 1, 2]);
        // Chunks are contiguous, in declaration order, with unique ids.
        assert_eq!(jobs[0].instrs, vec![0, 1]);
        assert_eq!(jobs[1].instrs, vec![2]);
        assert_eq!(jobs[2].instrs, vec![3]);
        assert_eq!(jobs[3].instrs, vec![0, 1]);
        let ids: Vec<u64> = jobs.iter().map(|j| j.batch_id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        // One worker: one batch per port regardless of size.
        let jobs = make_jobs(&pending, 1, true);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].instrs.len(), 4);
        assert_eq!(jobs[1].instrs.len(), 2);
    }
}
