//! Work-stealing verification scheduler.
//!
//! All `(port, instruction)` pairs of a run are flattened into one
//! global job queue served by a fixed pool of workers. Each worker owns
//! a persistent [`WorkerEngine`] — one unrolling of the RTL transition
//! system and one incremental solver — so *parallel* and *incremental*
//! compose: the blasted transition relation and learned clauses are
//! paid once per worker rather than once per instruction. Jobs carry no
//! solver state of their own; per-instruction conditions live in a
//! solver scope that is retracted when the job finishes (see
//! [`check_instruction_planned`]).
//!
//! Scheduling is deterministic in its *results* but not its order:
//! workers pull from their local deque first, refill in batches from
//! the global injector, and steal from peers when both are empty.
//! Verdicts are reassembled into declaration order afterwards, so a
//! pooled run reports exactly what a sequential run would.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crossbeam::deque::{Injector, Stealer, Worker};
use gila_mc::TransitionSystem;
use gila_smt::CancelToken;

use crate::engine::{
    run_job_guarded, CheckResult, InstrVerdict, JobMeta, PortPlan, RunCtx, VerifyError,
    WorkerEngine,
};

/// One unit of work: a single instruction of a single port.
#[derive(Clone, Copy, Debug)]
struct Job {
    port: usize,
    instr: usize,
}

/// A port's share of a pool run.
pub(crate) struct PoolPortResult {
    /// `(instruction index, verdict)` in declaration order. Gaps occur
    /// only when the run was cancelled (`stop_at_first_cex`).
    pub(crate) verdicts: Vec<(usize, InstrVerdict)>,
    /// When the port's last verdict landed, measured from pool start.
    pub(crate) last_done: Duration,
}

/// The outcome of a pool run, plus introspection for tests.
pub(crate) struct PoolOutcome {
    /// One entry per input plan, in the same order.
    pub(crate) ports: Vec<PoolPortResult>,
    /// How many worker threads were spawned (≤ the requested size).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) workers_spawned: usize,
    /// How many engines were actually built (≤ `workers_spawned`;
    /// lazily created, so idle workers never blast anything).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) engines_created: usize,
}

/// Runs every instruction of every plan on a pool of at most `workers`
/// threads. All plans must target the same transition system `ts` (one
/// [`crate::engine::rtl_to_ts`] call), so any worker's engine can serve
/// any job.
///
/// With `stop_at_first_cex`, the first counterexample found anywhere
/// cancels all queued work *and* interrupts in-flight solves through
/// the workers' [`CancelToken`]s; an interrupted job reports
/// `Unknown(Cancelled)`.
///
/// Jobs already decided by the context's resumed checkpoint are never
/// scheduled; their stored verdicts are merged into the result. A job
/// that panics is isolated into a [`CheckResult::JobPanicked`] verdict
/// ([`run_job_guarded`]) and the pool keeps draining.
///
/// # Errors
///
/// A configuration error on any job cancels the run and is returned
/// (the lowest `(port, instruction)` one, for determinism).
pub(crate) fn run_pool(
    plans: &[PortPlan<'_>],
    ts: &TransitionSystem,
    workers: usize,
    stop_at_first_cex: bool,
    ctx: &RunCtx<'_>,
) -> Result<PoolOutcome, VerifyError> {
    let tracer = ctx.tracer;
    let injector = Injector::new();
    let mut total = 0usize;
    let mut resumed: Vec<(Job, InstrVerdict)> = Vec::new();
    for (port, plan) in plans.iter().enumerate() {
        for instr in 0..plan.instrs.len() {
            let name = &plan.port.instructions()[instr].name;
            match ctx.resumed_verdict(plan.port.name(), name) {
                Some(v) => resumed.push((Job { port, instr }, v)),
                None => {
                    injector.push(Job { port, instr });
                    total += 1;
                }
            }
        }
    }
    let workers_spawned = workers.clamp(1, total.max(1));
    let locals: Vec<Worker<Job>> = (0..workers_spawned).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<Job>> = locals.iter().map(Worker::stealer).collect();

    let cancel = CancelToken::new();
    let engines_created = AtomicUsize::new(0);
    let t0 = Instant::now();
    type JobRecord = (Job, Result<InstrVerdict, VerifyError>, Duration);
    let results: Mutex<Vec<JobRecord>> = Mutex::new(Vec::with_capacity(total));

    let scope_result = crossbeam::thread::scope(|scope| {
        for (worker_id, local) in locals.into_iter().enumerate() {
            let (injector, stealers, cancel) = (&injector, &stealers, &cancel);
            let (engines_created, results, ctx) = (&engines_created, &results, &ctx);
            scope.spawn(move |_| {
                let mut engine: Option<WorkerEngine> = None;
                while !cancel.is_cancelled() {
                    let Some((job, stolen)) = find_job(&local, injector, stealers) else {
                        break;
                    };
                    let queue_ns = t0.elapsed().as_nanos() as u64;
                    let meta = JobMeta {
                        worker: Some(worker_id),
                        queue_ns,
                        stolen,
                    };
                    let plan = &plans[job.port];
                    let res = run_job_guarded(
                        plan,
                        job.instr,
                        &mut engine,
                        || {
                            engines_created.fetch_add(1, Ordering::Relaxed);
                            let mut e = WorkerEngine::new(ts, tracer);
                            // Cancellation interrupts this worker's
                            // solver mid-search, not just job pickup.
                            e.smt.set_cancel(cancel.clone());
                            e
                        },
                        tracer,
                        meta,
                        &ctx.policy,
                    );
                    let done_at = t0.elapsed();
                    let abort = match &res {
                        Ok(v) => {
                            ctx.record_checkpoint(plan.port.name(), v);
                            stop_at_first_cex
                                && matches!(v.result, CheckResult::CounterExample(_))
                        }
                        Err(_) => true,
                    };
                    results.lock().unwrap_or_else(|p| p.into_inner()).push((
                        job,
                        res,
                        done_at,
                    ));
                    if abort {
                        cancel.cancel();
                    }
                }
            });
        }
    });
    // Workers isolate job panics themselves; a panic escaping to here
    // is a scheduler bug, reported as an internal error rather than a
    // double panic out of the verification API.
    if scope_result.is_err() {
        return Err(VerifyError::Internal {
            reason: "a verification worker died outside job isolation".to_string(),
        });
    }

    let mut records = results
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    records.extend(resumed.into_iter().map(|(job, v)| (job, Ok(v), Duration::ZERO)));
    records.sort_by_key(|(job, _, _)| (job.port, job.instr));
    let mut ports: Vec<PoolPortResult> = plans
        .iter()
        .map(|_| PoolPortResult {
            verdicts: Vec::new(),
            last_done: Duration::ZERO,
        })
        .collect();
    for (job, res, done_at) in records {
        let verdict = res?;
        let port = &mut ports[job.port];
        port.verdicts.push((job.instr, verdict));
        port.last_done = port.last_done.max(done_at);
    }
    Ok(PoolOutcome {
        ports,
        workers_spawned,
        engines_created: engines_created.load(Ordering::Relaxed),
    })
}

/// Local deque first, then a batch refill from the global injector,
/// then stealing from a peer. `None` means the run is drained (no
/// worker creates new jobs, so empty-everywhere is terminal). The
/// boolean marks jobs taken from a *peer's* deque — the telemetry
/// steal count.
fn find_job(
    local: &Worker<Job>,
    injector: &Injector<Job>,
    stealers: &[Stealer<Job>],
) -> Option<(Job, bool)> {
    if let Some(job) = local.pop() {
        return Some((job, false));
    }
    if let Some(job) = injector.steal_batch_and_pop(local).success() {
        return Some((job, false));
    }
    stealers
        .iter()
        .find_map(|s| s.steal().success())
        .map(|job| (job, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::{counter_ila, counter_map, counter_rtl};
    use crate::engine::{rtl_to_ts, verify_port, VerifyOptions};
    use crate::fault::{FaultAction, FaultPlan};

    fn run_counter_pool(
        buggy: bool,
        workers: usize,
        stop_at_first_cex: bool,
    ) -> PoolOutcome {
        run_counter_pool_with(buggy, workers, stop_at_first_cex, None)
    }

    fn run_counter_pool_with(
        buggy: bool,
        workers: usize,
        stop_at_first_cex: bool,
        fault: Option<FaultPlan>,
    ) -> PoolOutcome {
        let port = counter_ila();
        let rtl = counter_rtl(buggy);
        let map = counter_map();
        let (ts, ts_signals) = rtl_to_ts(&rtl).unwrap();
        let plan = PortPlan::build(&port, &rtl, &map, &ts_signals).unwrap();
        let tracer = gila_trace::Tracer::disabled();
        let mut ctx = RunCtx::plain(&tracer);
        ctx.policy.fault = fault.map(std::sync::Arc::new);
        run_pool(
            std::slice::from_ref(&plan),
            &ts,
            workers,
            stop_at_first_cex,
            &ctx,
        )
        .unwrap()
    }

    #[test]
    fn pool_matches_sequential_verdicts() {
        for buggy in [false, true] {
            let port = counter_ila();
            let rtl = counter_rtl(buggy);
            let seq =
                verify_port(&port, &rtl, &counter_map(), &VerifyOptions::default()).unwrap();
            for workers in [1, 2, 8] {
                let outcome = run_counter_pool(buggy, workers, false);
                let pooled = &outcome.ports[0].verdicts;
                assert_eq!(pooled.len(), seq.verdicts.len(), "workers={workers}");
                for ((idx, got), want) in pooled.iter().zip(&seq.verdicts) {
                    assert_eq!(got.instruction, want.instruction, "idx={idx}");
                    assert_eq!(
                        got.result.holds(),
                        want.result.holds(),
                        "workers={workers} instr={}",
                        got.instruction
                    );
                }
            }
        }
    }

    #[test]
    fn worker_count_never_exceeds_requested_jobs() {
        // Two instructions: requesting 8 workers must spawn at most 2,
        // and engines are only built for workers that actually ran.
        let outcome = run_counter_pool(false, 8, false);
        assert_eq!(outcome.workers_spawned, 2);
        assert!(outcome.engines_created <= 2);
        let outcome = run_counter_pool(false, 1, false);
        assert_eq!(outcome.workers_spawned, 1);
        assert_eq!(outcome.engines_created, 1);
    }

    #[test]
    fn single_worker_pool_reuses_cnf_across_instructions() {
        // On a persistent engine the second instruction re-uses the
        // blasted transition relation: its CNF growth must collapse
        // relative to the first instruction on the same worker.
        let outcome = run_counter_pool(false, 1, false);
        let verdicts = &outcome.ports[0].verdicts;
        assert_eq!(verdicts.len(), 2);
        let first = verdicts[0].1.cnf_growth;
        let second = verdicts[1].1.cnf_growth;
        assert!(first.clauses > 0);
        assert!(
            second.clauses * 2 < first.clauses,
            "expected CNF reuse: first instruction grew by {first:?}, second by {second:?}"
        );
        assert!(second.variables * 2 < first.variables, "{first:?} vs {second:?}");
    }

    #[test]
    fn shared_engine_does_not_leak_assumptions_between_jobs() {
        // On the buggy counter, `inc` fails and `hold` passes. A single
        // worker serves both from one solver; if `inc`'s scoped asserts
        // (its decode en==1, or the violation clause) leaked, `hold`
        // would be judged under the wrong start condition.
        let outcome = run_counter_pool(true, 1, false);
        let verdicts = &outcome.ports[0].verdicts;
        assert_eq!(verdicts.len(), 2);
        let inc = &verdicts[0].1;
        let hold = &verdicts[1].1;
        assert_eq!(inc.instruction, "inc");
        assert!(matches!(inc.result, CheckResult::CounterExample(_)));
        assert_eq!(hold.instruction, "hold");
        assert!(hold.result.holds(), "leaked state poisoned the second job");
    }

    #[test]
    fn cancellation_stops_scheduling_after_first_cex() {
        let outcome = run_counter_pool(true, 2, true);
        let verdicts = &outcome.ports[0].verdicts;
        // The counterexample is always reported; later jobs may have
        // been cancelled before starting.
        assert!(verdicts
            .iter()
            .any(|(_, v)| matches!(v.result, CheckResult::CounterExample(_))));
        assert!(verdicts.len() <= 2);
    }

    #[test]
    fn empty_plan_set_yields_empty_outcome() {
        let rtl = counter_rtl(false);
        let (ts, _) = rtl_to_ts(&rtl).unwrap();
        let tracer = gila_trace::Tracer::disabled();
        let outcome = run_pool(&[], &ts, 4, false, &RunCtx::plain(&tracer)).unwrap();
        assert!(outcome.ports.is_empty());
        assert_eq!(outcome.engines_created, 0);
    }

    /// Regression test for the poisoning `.expect(...)` lock/join
    /// handling: a job that panics mid-check must become a
    /// `JobPanicked` verdict, not tear down the pool, and every other
    /// job must still be decided normally.
    #[test]
    fn panicking_job_is_isolated_and_pool_drains() {
        for workers in [1, 4] {
            let fault = FaultPlan::new().inject(
                "counter",
                "inc",
                FaultAction::Panic("injected".into()),
                Some(1),
            );
            let outcome = run_counter_pool_with(false, workers, false, Some(fault));
            let verdicts = &outcome.ports[0].verdicts;
            assert_eq!(verdicts.len(), 2, "workers={workers}");
            let inc = &verdicts[0].1;
            assert_eq!(inc.instruction, "inc");
            let CheckResult::JobPanicked { message } = &inc.result else {
                panic!("expected JobPanicked, got {:?}", inc.result);
            };
            assert!(message.contains("injected"), "{message}");
            // The other instruction is decided as if nothing happened.
            let hold = &verdicts[1].1;
            assert_eq!(hold.instruction, "hold");
            assert!(hold.result.holds(), "workers={workers}");
        }
    }

    /// A worker whose engine was poisoned by a panic rebuilds it and
    /// keeps serving: with one worker, the panic on the first job must
    /// not leave the second job with a corrupt solver.
    #[test]
    fn single_worker_rebuilds_engine_after_panic() {
        let fault = FaultPlan::new().inject(
            "counter",
            "inc",
            FaultAction::Panic("first job dies".into()),
            Some(1),
        );
        let outcome = run_counter_pool_with(true, 1, false, Some(fault));
        let verdicts = &outcome.ports[0].verdicts;
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts[0].1.result.is_panicked());
        // On the buggy counter `hold` still genuinely holds; deciding it
        // requires a fresh, working engine after the panic.
        assert!(verdicts[1].1.result.holds());
        // One engine for the panicked job, one rebuilt for the next.
        assert_eq!(outcome.engines_created, 2);
    }
}
