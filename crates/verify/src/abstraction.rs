//! Small-memory abstraction ("standard small memory modeling", §V.B.3).
//!
//! Shrinking a memory's address width on *both* the ILA and RTL sides
//! consistently reproduces the paper's ablation: the 8051 datapath's
//! 256-byte internal RAM verified as a 16-byte memory (176 s -> 9.5 s in
//! the paper) and the store buffer's 64-byte array as 16 bytes
//! (78 s -> 1.3 s). Addresses are truncated to the new width, so the
//! abstraction preserves all address-independent behaviour while
//! shrinking the bit-blasted memory representation 16x.

use std::collections::HashMap;
use std::fmt;

use gila_core::PortIla;
use gila_expr::{BitVecValue, ExprCtx, ExprNode, ExprRef, MemValue, Op, Sort, Value};
use gila_rtl::RtlModule;

/// An error applying the memory abstraction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbstractError {
    /// No state/memory with that name exists.
    UnknownMemory {
        /// The requested name.
        name: String,
    },
    /// The named state is not a memory.
    NotAMemory {
        /// The requested name.
        name: String,
    },
    /// The new address width is not smaller than the old one.
    NotSmaller {
        /// Old address width.
        old: u32,
        /// Requested address width.
        new: u32,
    },
}

impl fmt::Display for AbstractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbstractError::UnknownMemory { name } => write!(f, "no memory named {name:?}"),
            AbstractError::NotAMemory { name } => write!(f, "{name:?} is not a memory"),
            AbstractError::NotSmaller { old, new } => {
                write!(f, "new address width {new} is not smaller than {old}")
            }
        }
    }
}

impl std::error::Error for AbstractError {}

fn shrink_mem_value(m: &MemValue, new_aw: u32) -> MemValue {
    let mut out = MemValue::filled(new_aw, m.data_width(), m.default_word().clone());
    for (addr, word) in m.iter_written() {
        if addr < (1u64 << new_aw) {
            out = out.write(&BitVecValue::from_u64(addr, new_aw), word);
        }
    }
    out
}

/// Rebuilds `root` from `src` into `dst`, shrinking the variable named
/// `mem_name` to the new address width and truncating all addresses used
/// to read/write any memory whose width shrank.
fn rewrite(
    dst: &mut ExprCtx,
    src: &ExprCtx,
    root: ExprRef,
    mem_name: &str,
    new_aw: u32,
    memo: &mut HashMap<ExprRef, ExprRef>,
) -> ExprRef {
    let order = src.post_order(&[root]);
    for e in order {
        if memo.contains_key(&e) {
            continue;
        }
        let out = match src.node(e) {
            ExprNode::BoolConst(b) => dst.bool_const(*b),
            ExprNode::BvConst(v) => dst.bv(v.clone()),
            ExprNode::MemConst(m) => dst.mem_const(m.clone()),
            ExprNode::Var { name, sort } => {
                if name == mem_name {
                    let Sort::Mem { data_width, .. } = sort else {
                        unreachable!("checked by callers");
                    };
                    dst.var(
                        name.clone(),
                        Sort::Mem {
                            addr_width: new_aw,
                            data_width: *data_width,
                        },
                    )
                } else {
                    dst.var(name.clone(), *sort)
                }
            }
            ExprNode::App { op, args, .. } => {
                let new_args: Vec<ExprRef> = args.iter().map(|a| memo[a]).collect();
                match op {
                    Op::MemRead | Op::MemWrite => {
                        // Truncate the address if the memory shrank.
                        let Sort::Mem { addr_width, .. } = dst.sort_of(new_args[0]) else {
                            panic!("first MemRead/MemWrite argument must be a memory");
                        };
                        let mut new_args = new_args;
                        let aw = dst
                            .sort_of(new_args[1])
                            .bv_width()
                            .expect("addresses are bit-vectors");
                        if aw > addr_width {
                            new_args[1] = dst.extract(new_args[1], addr_width - 1, 0);
                        }
                        dst.app(*op, new_args)
                    }
                    _ => dst.app(*op, new_args),
                }
            }
        };
        memo.insert(e, out);
    }
    memo[&root]
}

/// Returns a copy of `port` with the memory-sorted state `mem_state`
/// shrunk to `new_addr_width` address bits.
///
/// # Errors
///
/// See [`AbstractError`].
pub fn abstract_port_memory(
    port: &PortIla,
    mem_state: &str,
    new_addr_width: u32,
) -> Result<PortIla, AbstractError> {
    let sv = port
        .find_state(mem_state)
        .ok_or_else(|| AbstractError::UnknownMemory {
            name: mem_state.to_string(),
        })?;
    let Sort::Mem { addr_width, .. } = sv.sort else {
        return Err(AbstractError::NotAMemory {
            name: mem_state.to_string(),
        });
    };
    if new_addr_width >= addr_width {
        return Err(AbstractError::NotSmaller {
            old: addr_width,
            new: new_addr_width,
        });
    }
    let mut out = PortIla::new(port.name());
    for i in port.inputs() {
        out.input(i.name.clone(), i.sort);
    }
    for s in port.states() {
        let sort = if s.name == mem_state {
            let Sort::Mem { data_width, .. } = s.sort else {
                unreachable!()
            };
            Sort::Mem {
                addr_width: new_addr_width,
                data_width,
            }
        } else {
            s.sort
        };
        out.state(s.name.clone(), sort, s.kind);
        if let Some(init) = &s.init {
            let init = match init {
                Value::Mem(m) if s.name == mem_state => {
                    Value::Mem(shrink_mem_value(m, new_addr_width))
                }
                other => other.clone(),
            };
            out.set_init(&s.name, init).expect("sorts consistent");
        }
    }
    let mut memo = HashMap::new();
    for instr in port.instructions() {
        let decode = rewrite(
            out.ctx_mut(),
            port.ctx(),
            instr.decode,
            mem_state,
            new_addr_width,
            &mut memo,
        );
        let rewritten: Vec<(String, ExprRef)> = instr
            .updates
            .iter()
            .map(|(sname, &u)| {
                let e = rewrite(out.ctx_mut(), port.ctx(), u, mem_state, new_addr_width, &mut memo);
                (sname.clone(), e)
            })
            .collect();
        let mut b = match &instr.parent {
            Some(p) => out.sub_instr(instr.name.clone(), p.clone()),
            None => out.instr(instr.name.clone()),
        };
        b = b.decode(decode);
        for (sname, e) in rewritten {
            b = b.update(sname, e);
        }
        b.add().expect("rewritten model stays well-formed");
    }
    Ok(out)
}

/// Returns a copy of `rtl` with the memory `mem_name` shrunk to
/// `new_addr_width` address bits.
///
/// # Errors
///
/// See [`AbstractError`].
pub fn abstract_rtl_memory(
    rtl: &RtlModule,
    mem_name: &str,
    new_addr_width: u32,
) -> Result<RtlModule, AbstractError> {
    let mm = rtl
        .find_mem(mem_name)
        .ok_or_else(|| AbstractError::UnknownMemory {
            name: mem_name.to_string(),
        })?;
    if new_addr_width >= mm.addr_width {
        return Err(AbstractError::NotSmaller {
            old: mm.addr_width,
            new: new_addr_width,
        });
    }
    let mut out = RtlModule::new(rtl.name());
    if let Some(loc) = rtl.source_loc() {
        out.set_source_loc(loc);
    }
    for i in rtl.inputs() {
        out.input(i.name.clone(), i.width);
    }
    for r in rtl.regs() {
        out.reg(r.name.clone(), r.width, None);
        if let Some(init) = &r.init {
            out.set_init(&r.name, init.clone()).expect("same width");
        }
    }
    for m in rtl.mems() {
        let aw = if m.name == mem_name {
            new_addr_width
        } else {
            m.addr_width
        };
        out.mem(m.name.clone(), aw, m.data_width);
    }
    let mut memo = HashMap::new();
    for r in rtl.regs() {
        let next = rewrite(out.ctx_mut(), rtl.ctx(), r.next, mem_name, new_addr_width, &mut memo);
        out.set_next(&r.name, next).expect("width unchanged");
    }
    for m in rtl.mems() {
        let next = rewrite(out.ctx_mut(), rtl.ctx(), m.next, mem_name, new_addr_width, &mut memo);
        out.set_next(&m.name, next).expect("sort consistent");
    }
    for s in rtl.signals() {
        let e = rewrite(out.ctx_mut(), rtl.ctx(), s.expr, mem_name, new_addr_width, &mut memo);
        out.signal(s.name.clone(), e, s.output)
            .expect("names already unique");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{verify_port, VerifyOptions};
    use crate::refmap::RefinementMap;
    use gila_core::StateKind;
    use gila_rtl::parse_verilog;

    /// Small scratchpad: write then read back, ILA and RTL.
    fn scratch_ila(addr_width: u32) -> PortIla {
        let mut p = PortIla::new("scratch");
        let we = p.input("we", Sort::Bv(1));
        let addr = p.input("addr", Sort::Bv(8));
        let din = p.input("din", Sort::Bv(8));
        let mem = p.state(
            "mem",
            Sort::Mem {
                addr_width,
                data_width: 8,
            },
            StateKind::Internal,
        );
        let dout = p.state("dout", Sort::Bv(8), StateKind::Output);
        let _ = dout;
        let a = if addr_width == 8 {
            addr
        } else {
            p.ctx_mut().extract(addr, addr_width - 1, 0)
        };
        let d = p.ctx_mut().eq_u64(we, 1);
        let w = p.ctx_mut().mem_write(mem, a, din);
        p.instr("write").decode(d).update("mem", w).add().unwrap();
        let d = p.ctx_mut().eq_u64(we, 0);
        let r = p.ctx_mut().mem_read(mem, a);
        p.instr("read").decode(d).update("dout", r).add().unwrap();
        p
    }

    fn scratch_rtl() -> RtlModule {
        parse_verilog(
            r#"
module scratch(clk, we, addr, din);
  input clk;
  input we;
  input [7:0] addr;
  input [7:0] din;
  reg [7:0] mem_r [0:255];
  reg [7:0] dout_r;
  always @(posedge clk) begin
    if (we) mem_r[addr] <= din;
    else dout_r <= mem_r[addr];
  end
endmodule
"#,
        )
        .unwrap()
    }

    fn scratch_map() -> RefinementMap {
        let mut m = RefinementMap::new("scratch");
        m.map_state("mem", "mem_r");
        m.map_state("dout", "dout_r");
        m.map_input("we", "we");
        m.map_input("addr", "addr");
        m.map_input("din", "din");
        m
    }

    #[test]
    fn abstraction_preserves_verification_outcome() {
        // Full-size check.
        let port = scratch_ila(8);
        let rtl = scratch_rtl();
        let report = verify_port(&port, &rtl, &scratch_map(), &VerifyOptions::default()).unwrap();
        assert!(report.all_hold(), "{report:#?}");
        let full_stats = report.peak_stats;

        // Abstracted check: 16 words instead of 256.
        let a_port = abstract_port_memory(&port, "mem", 4).unwrap();
        let a_rtl = abstract_rtl_memory(&rtl, "mem_r", 4).unwrap();
        let report =
            verify_port(&a_port, &a_rtl, &scratch_map(), &VerifyOptions::default()).unwrap();
        assert!(report.all_hold(), "{report:#?}");
        // The abstraction shrinks the CNF dramatically.
        assert!(report.peak_stats.clauses * 4 < full_stats.clauses);
    }

    #[test]
    fn abstraction_still_catches_bugs() {
        let port = scratch_ila(8);
        // Inject a data corruption bug: write din+1.
        let rtl = parse_verilog(
            r#"
module scratch(clk, we, addr, din);
  input clk;
  input we;
  input [7:0] addr;
  input [7:0] din;
  reg [7:0] mem_r [0:255];
  reg [7:0] dout_r;
  always @(posedge clk) begin
    if (we) mem_r[addr] <= din + 8'd1;
    else dout_r <= mem_r[addr];
  end
endmodule
"#,
        )
        .unwrap();
        let a_port = abstract_port_memory(&port, "mem", 4).unwrap();
        let a_rtl = abstract_rtl_memory(&rtl, "mem_r", 4).unwrap();
        let report =
            verify_port(&a_port, &a_rtl, &scratch_map(), &VerifyOptions::default()).unwrap();
        assert!(!report.all_hold());
    }

    #[test]
    fn errors() {
        let port = scratch_ila(8);
        assert!(matches!(
            abstract_port_memory(&port, "ghost", 4).unwrap_err(),
            AbstractError::UnknownMemory { .. }
        ));
        assert!(matches!(
            abstract_port_memory(&port, "dout", 4).unwrap_err(),
            AbstractError::NotAMemory { .. }
        ));
        assert!(matches!(
            abstract_port_memory(&port, "mem", 8).unwrap_err(),
            AbstractError::NotSmaller { .. }
        ));
        let rtl = scratch_rtl();
        assert!(abstract_rtl_memory(&rtl, "ghost", 4).is_err());
        assert!(abstract_rtl_memory(&rtl, "mem_r", 9).is_err());
    }

    #[test]
    fn shrink_mem_value_keeps_low_addresses() {
        let m = MemValue::zeroed(8, 8)
            .write(&BitVecValue::from_u64(3, 8), &BitVecValue::from_u64(7, 8))
            .write(&BitVecValue::from_u64(200, 8), &BitVecValue::from_u64(9, 8));
        let s = shrink_mem_value(&m, 4);
        assert_eq!(s.read(&BitVecValue::from_u64(3, 4)).to_u64(), 7);
        // address 200 dropped
        assert_eq!(s.read(&BitVecValue::from_u64(8, 4)).to_u64(), 0);
    }
}
