//! # gila-designs — the eight DATE 2021 case studies
//!
//! Re-implementations of every design evaluated in the paper, each
//! bundled as a [`CaseStudy`]: the module-ILA specification
//! (`gila-core`), a Verilog-subset RTL implementation (`gila-rtl`),
//! per-port refinement maps (`gila-verify`), and — for the three designs
//! where the paper reports a bug — a bug-injected RTL variant
//! reproducing the documented mechanism.
//!
//! | Design | Class | Ports | Bug |
//! |---|---|---|---|
//! | 8051 decoder | single port | 1 | — |
//! | AXI slave | multi-port, no shared state | 2 | `rd_burst_in` vs `tx_rd_burst` |
//! | AXI master | multi-port, no shared state | 2 | — |
//! | 8051 datapath | multi-port, no shared state | 2 | — |
//! | L2 cache | multi-port, no shared state | 2 | `msg_flag_2` vs `msg_flag_3` |
//! | 8051 memory interface | shared state (`mem_wait`) | 3 -> 2 | — |
//! | RISC-V store buffer | shared state (`full` flag) | 3 -> 2 | flag update under full+traffic |
//! | NoC router | shared state (routing table) | 10 -> 2 | — |

#![warn(missing_docs)]

pub mod axi;
pub mod i8051;
pub mod openpiton;
mod registry;
pub mod riscv;

pub use registry::{all_case_studies, CaseStudy};
