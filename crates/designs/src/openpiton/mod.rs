//! The OpenPiton L2 cache and NoC router.

pub mod l2_cache;
pub mod noc_router;
