//! The OpenPiton L2 cache (paper §V.B.4): dual parallel pipelines
//! modeled as two independent ILA ports.
//!
//! * **PIPE1-port** handles load/store misses arriving from the L1.5
//!   cache (2 instructions). Its miss-status logic runs through a
//!   three-deep pipeline-flag chain; the outgoing NoC message header
//!   must use `msg_flag_3`. The documented bug — a typo in the informal
//!   specification — uses `msg_flag_2` instead (counterexample found in
//!   0.7 s in the paper).
//! * **PIPE2-port** handles all six NoC message types (6 instructions)
//!   against a small directory + data-array state.
//!
//! This is a functionally reduced re-implementation of the >10k-LoC
//! OpenPiton module: same port structure, same instruction inventory,
//! same bug mechanism (see DESIGN.md's substitution table).

use gila_core::{ModuleIla, PortIla, StateKind};
use gila_expr::{ExprRef, Sort};
use gila_rtl::{parse_verilog, RtlModule};
use gila_verify::RefinementMap;

use crate::registry::CaseStudy;

/// The six NoC message types PIPE2 accepts.
pub const PIPE2_MSGS: [&str; 6] = ["REQ_RD", "REQ_WR", "ACK_DT", "ACK_INV", "WB_REQ", "WB_ACK"];

/// Builds the PIPE1-port-ILA (L1.5-side misses).
pub fn pipe1_port() -> PortIla {
    let mut p = PortIla::new("PIPE1-PORT");
    let valid = p.input("p1_valid", Sort::Bv(1));
    let ty = p.input("p1_type", Sort::Bv(1));
    let addr = p.input("p1_addr", Sort::Bv(16));
    let data = p.input("p1_data", Sort::Bv(16));
    let _ = valid;
    p.state("mshr_addr", Sort::Bv(16), StateKind::Internal);
    p.state("mshr_data", Sort::Bv(16), StateKind::Internal);
    let flag1 = p.state("msg_flag_1", Sort::Bv(1), StateKind::Internal);
    let flag2 = p.state("msg_flag_2", Sort::Bv(1), StateKind::Internal);
    let flag3 = p.state("msg_flag_3", Sort::Bv(1), StateKind::Internal);
    let _ = flag3;
    p.state("msg_out", Sort::Bv(18), StateKind::Output);

    // The outgoing message header: { msg_flag_3, type, addr }. The
    // informal document's typo said msg_flag_2; the (corrected) ILA uses
    // msg_flag_3.
    let miss = |p: &mut PortIla, name: &str, type_bit: u64, with_data: bool| {
        let ctx = p.ctx_mut();
        let v1 = ctx.eq_u64(valid, 1);
        let tsel = ctx.eq_u64(ty, type_bit);
        let d = ctx.and(v1, tsel);
        let one1 = ctx.bv_u64(1, 1);
        let tb = ctx.bv_u64(type_bit, 1);
        let f3 = ctx.find_var("msg_flag_3").expect("declared");
        let hdr2 = ctx.concat(f3, tb);
        let msg: ExprRef = ctx.concat(hdr2, addr);
        let mut b = p
            .instr(name)
            .decode(d)
            .update("mshr_addr", addr)
            .update("msg_flag_1", one1)
            .update("msg_flag_2", flag1)
            .update("msg_flag_3", flag2)
            .update("msg_out", msg);
        if with_data {
            b = b.update("mshr_data", data);
        }
        b.add().expect("valid model");
    };
    miss(&mut p, "LOAD_MISS", 0, false);
    miss(&mut p, "STORE_MISS", 1, true);
    p
}

/// Builds the PIPE2-port-ILA (NoC-side messages).
pub fn pipe2_port() -> PortIla {
    let mut p = PortIla::new("PIPE2-PORT");
    let valid = p.input("p2_valid", Sort::Bv(1));
    let mtype = p.input("p2_type", Sort::Bv(3));
    let maddr = p.input("p2_addr", Sort::Bv(16));
    let mdata = p.input("p2_data", Sort::Bv(16));
    let msrc = p.input("p2_src", Sort::Bv(3));
    let dir_state = p.state("dir_state", Sort::Bv(2), StateKind::Internal);
    let _ = dir_state;
    p.state("owner", Sort::Bv(3), StateKind::Internal);
    let dbuf = p.state("dbuf", Sort::Bv(16), StateKind::Internal);
    let darray = p.state(
        "darray",
        Sort::Mem {
            addr_width: 4,
            data_width: 16,
        },
        StateKind::Internal,
    );
    p.state("resp_out", Sort::Bv(16), StateKind::Output);
    p.state("resp_valid", Sort::Bv(1), StateKind::Output);

    let line = |p: &mut PortIla| {
        let ctx = p.ctx_mut();
        
        ctx.extract(maddr, 3, 0)
    };

    // REQ_RD: read the data array, mark shared, record the requester.
    {
        let a = line(&mut p);
        let ctx = p.ctx_mut();
        let v1 = ctx.eq_u64(valid, 1);
        let t = ctx.eq_u64(mtype, 0);
        let d = ctx.and(v1, t);
        let rd = ctx.mem_read(darray, a);
        let one2 = ctx.bv_u64(1, 2);
        let one1 = ctx.bv_u64(1, 1);
        p.instr("REQ_RD")
            .decode(d)
            .update("resp_out", rd)
            .update("resp_valid", one1)
            .update("dir_state", one2)
            .update("owner", msrc)
            .add()
            .expect("valid model");
    }
    // REQ_WR: write the data array, mark modified.
    {
        let a = line(&mut p);
        let ctx = p.ctx_mut();
        let v1 = ctx.eq_u64(valid, 1);
        let t = ctx.eq_u64(mtype, 1);
        let d = ctx.and(v1, t);
        let wr = ctx.mem_write(darray, a, mdata);
        let two2 = ctx.bv_u64(2, 2);
        let one1 = ctx.bv_u64(1, 1);
        p.instr("REQ_WR")
            .decode(d)
            .update("darray", wr)
            .update("resp_out", mdata)
            .update("resp_valid", one1)
            .update("dir_state", two2)
            .update("owner", msrc)
            .add()
            .expect("valid model");
    }
    // ACK_DT: data acknowledgment; buffer it.
    {
        let ctx = p.ctx_mut();
        let v1 = ctx.eq_u64(valid, 1);
        let t = ctx.eq_u64(mtype, 2);
        let d = ctx.and(v1, t);
        let zero2 = ctx.bv_u64(0, 2);
        let zero1 = ctx.bv_u64(0, 1);
        p.instr("ACK_DT")
            .decode(d)
            .update("dbuf", mdata)
            .update("dir_state", zero2)
            .update("resp_valid", zero1)
            .add()
            .expect("valid model");
    }
    // ACK_INV: invalidation acknowledgment.
    {
        let ctx = p.ctx_mut();
        let v1 = ctx.eq_u64(valid, 1);
        let t = ctx.eq_u64(mtype, 3);
        let d = ctx.and(v1, t);
        let zero2 = ctx.bv_u64(0, 2);
        let zero3 = ctx.bv_u64(0, 3);
        let zero1 = ctx.bv_u64(0, 1);
        p.instr("ACK_INV")
            .decode(d)
            .update("dir_state", zero2)
            .update("owner", zero3)
            .update("resp_valid", zero1)
            .add()
            .expect("valid model");
    }
    // WB_REQ: writeback request; respond with the buffered data.
    {
        let ctx = p.ctx_mut();
        let v1 = ctx.eq_u64(valid, 1);
        let t = ctx.eq_u64(mtype, 4);
        let d = ctx.and(v1, t);
        let one1 = ctx.bv_u64(1, 1);
        p.instr("WB_REQ")
            .decode(d)
            .update("resp_out", dbuf)
            .update("resp_valid", one1)
            .add()
            .expect("valid model");
    }
    // WB_ACK: commit the buffered writeback into the array.
    {
        let a = line(&mut p);
        let ctx = p.ctx_mut();
        let v1 = ctx.eq_u64(valid, 1);
        let t = ctx.eq_u64(mtype, 5);
        let d = ctx.and(v1, t);
        let wr = ctx.mem_write(darray, a, dbuf);
        let zero2 = ctx.bv_u64(0, 2);
        let zero1 = ctx.bv_u64(0, 1);
        p.instr("WB_ACK")
            .decode(d)
            .update("darray", wr)
            .update("dir_state", zero2)
            .update("resp_valid", zero1)
            .add()
            .expect("valid model");
    }
    p
}

/// The L2 cache module-ILA.
pub fn ila() -> ModuleIla {
    ModuleIla::compose("l2_cache", vec![pipe1_port(), pipe2_port()])
        .expect("ports are independent")
}

fn rtl_source(buggy: bool) -> String {
    // The documented typo: which pipeline flag feeds the message header.
    let flag = if buggy { "msg_flag_2" } else { "msg_flag_3" };
    format!(
        r#"
// OpenPiton-style L2 cache: dual parallel pipelines.
module l2_cache(clk,
                p1_valid, p1_type, p1_addr, p1_data,
                p2_valid, p2_type, p2_addr, p2_data, p2_src);
  input clk;
  input p1_valid;
  input p1_type;
  input [15:0] p1_addr;
  input [15:0] p1_data;
  input p2_valid;
  input [2:0] p2_type;
  input [15:0] p2_addr;
  input [15:0] p2_data;
  input [2:0] p2_src;

  // pipe 1: miss handling toward the NoC
  reg [15:0] mshr_addr;
  reg [15:0] mshr_data;
  reg msg_flag_1;
  reg msg_flag_2;
  reg msg_flag_3;
  reg [17:0] msg_out;

  // pipe 2: NoC message handling
  reg [1:0] dir_state;
  reg [2:0] owner;
  reg [15:0] dbuf;
  reg [15:0] darray [0:15];
  reg [15:0] resp_out;
  reg resp_valid;

  always @(posedge clk) begin
    if (p1_valid) begin
      mshr_addr <= p1_addr;
      if (p1_type) mshr_data <= p1_data;
      msg_flag_1 <= 1'b1;
      msg_flag_2 <= msg_flag_1;
      msg_flag_3 <= msg_flag_2;
      msg_out <= {{{flag}, p1_type, p1_addr}};
    end
  end

  always @(posedge clk) begin
    if (p2_valid) begin
      case (p2_type)
        3'd0: begin
          resp_out <= darray[p2_addr[3:0]];
          resp_valid <= 1'b1;
          dir_state <= 2'd1;
          owner <= p2_src;
        end
        3'd1: begin
          darray[p2_addr[3:0]] <= p2_data;
          resp_out <= p2_data;
          resp_valid <= 1'b1;
          dir_state <= 2'd2;
          owner <= p2_src;
        end
        3'd2: begin
          dbuf <= p2_data;
          dir_state <= 2'd0;
          resp_valid <= 1'b0;
        end
        3'd3: begin
          dir_state <= 2'd0;
          owner <= 3'd0;
          resp_valid <= 1'b0;
        end
        3'd4: begin
          resp_out <= dbuf;
          resp_valid <= 1'b1;
        end
        3'd5: begin
          darray[p2_addr[3:0]] <= dbuf;
          dir_state <= 2'd0;
          resp_valid <= 1'b0;
        end
        default: begin
          resp_valid <= resp_valid;
        end
      endcase
    end
  end
endmodule
"#
    )
}

/// The fixed L2 cache RTL.
pub fn rtl() -> RtlModule {
    parse_verilog(&rtl_source(false)).expect("l2 cache RTL is valid")
}

/// The bug-injected L2 cache RTL (`msg_flag_2` where `msg_flag_3` is
/// needed).
pub fn buggy_rtl() -> RtlModule {
    parse_verilog(&rtl_source(true)).expect("buggy l2 cache RTL is valid")
}

/// Refinement maps for both pipelines.
pub fn refinement_maps() -> Vec<RefinementMap> {
    let mut p1 = RefinementMap::new("PIPE1-PORT");
    p1.map_state("mshr_addr", "mshr_addr");
    p1.map_state("mshr_data", "mshr_data");
    p1.map_state("msg_flag_1", "msg_flag_1");
    p1.map_state("msg_flag_2", "msg_flag_2");
    p1.map_state("msg_flag_3", "msg_flag_3");
    p1.map_state("msg_out", "msg_out");
    p1.map_input("p1_valid", "p1_valid");
    p1.map_input("p1_type", "p1_type");
    p1.map_input("p1_addr", "p1_addr");
    p1.map_input("p1_data", "p1_data");

    let mut p2 = RefinementMap::new("PIPE2-PORT");
    p2.map_state("dir_state", "dir_state");
    p2.map_state("owner", "owner");
    p2.map_state("dbuf", "dbuf");
    p2.map_state("darray", "darray");
    p2.map_state("resp_out", "resp_out");
    p2.map_state("resp_valid", "resp_valid");
    p2.map_input("p2_valid", "p2_valid");
    p2.map_input("p2_type", "p2_type");
    p2.map_input("p2_addr", "p2_addr");
    p2.map_input("p2_data", "p2_data");
    p2.map_input("p2_src", "p2_src");
    vec![p1, p2]
}

/// The assembled case study.
pub fn case_study() -> CaseStudy {
    CaseStudy {
        name: "L2 Cache",
        ila: ila(),
        rtl: rtl(),
        refmaps: refinement_maps(),
        buggy_rtl: Some(buggy_rtl()),
        ports_before_integration: 2,
        ports_after_integration: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::decode_gap;
    use gila_verify::{verify_module, CheckResult, VerifyOptions};

    #[test]
    fn eight_atomic_instructions() {
        let m = ila();
        assert_eq!(m.stats().instructions, 8);
    }

    #[test]
    fn pipe_decodes_cover_their_command_spaces() {
        // The pipes only define instructions for valid commands; under
        // the "a command is present" scoping assumption the decodes are
        // complete.
        let p1 = pipe1_port();
        let mut ctx = p1.ctx().clone();
        let v = ctx.find_var("p1_valid").unwrap();
        let scope = ctx.eq_u64(v, 1);
        let _ = scope;
        // (decode_gap clones the ctx internally; rebuild the scope there)
        let p1v = p1.ctx().find_var("p1_valid").unwrap();
        let mut p1c = p1.clone();
        let scope = p1c.ctx_mut().eq_u64(p1v, 1);
        assert!(decode_gap(&p1c, Some(scope)).is_none());
        // Without the scope, the idle command is (correctly) uncovered.
        assert!(decode_gap(&p1, None).is_some());

        let p2 = pipe2_port();
        let mut p2c = p2.clone();
        let v = p2c.ctx().find_var("p2_valid").unwrap();
        let t = p2c.ctx().find_var("p2_type").unwrap();
        let v1 = p2c.ctx_mut().eq_u64(v, 1);
        let six = p2c.ctx_mut().bv_u64(6, 3);
        let tlt = p2c.ctx_mut().ult(t, six);
        let scope = p2c.ctx_mut().and(v1, tlt);
        assert!(decode_gap(&p2c, Some(scope)).is_none());
    }

    #[test]
    fn verifies_against_rtl() {
        let report = verify_module(&ila(), &rtl(), &refinement_maps(), &VerifyOptions::default())
            .expect("well-formed");
        assert!(report.all_hold(), "{report:#?}");
        assert_eq!(report.instructions_checked(), 8);
    }

    #[test]
    fn flag_typo_found_in_pipe1() {
        let report = verify_module(
            &ila(),
            &buggy_rtl(),
            &refinement_maps(),
            &VerifyOptions::default(),
        )
        .expect("well-formed");
        assert!(!report.all_hold());
        let p1 = &report.ports[0];
        let v = p1.first_counterexample().expect("bug in PIPE1");
        let CheckResult::CounterExample(cex) = &v.result else {
            panic!()
        };
        assert_eq!(cex.mismatched_states, vec!["msg_out".to_string()]);
        // The witness separates the two flags.
        assert_ne!(
            cex.rtl_start_state["msg_flag_2"],
            cex.rtl_start_state["msg_flag_3"]
        );
        // PIPE2 is unaffected.
        assert!(report.ports[1].all_hold());
    }
}
