//! The OpenPiton NoC router (paper §V.C.3): ten command ports
//! integrated down to two.
//!
//! The router connects to four neighbouring routers and the local core
//! (N, E, S, W, P). Each connection has an IN-port receiving packets
//! and an OUT-port sending them — ten ports in total. All five IN-ports
//! update a shared *dynamic routing table* (destination -> port
//! learning); the specification resolves simultaneous updates with a
//! round-robin arbiter, captured by a [`RoundRobinResolver`] whose
//! pointer state the RTL mirrors exactly. The five OUT-ports share a
//! `last_sent` tracking state, also round-robin arbitrated.
//!
//! After integration: one IN-port and one OUT-port with 2^5 = 32 atomic
//! instructions each — Table I's "64" instructions and "10/2" ports.

use gila_core::{integrate, ModuleIla, PortIla, RoundRobinResolver, StateKind};
use gila_expr::Sort;
use gila_rtl::{parse_verilog, RtlModule};
use gila_verify::RefinementMap;

use crate::registry::CaseStudy;

/// Direction names, in port-index order.
pub const DIRS: [&str; 5] = ["n", "e", "s", "w", "p"];

/// Builds one IN-port-ILA (direction `idx`).
pub fn in_port(idx: usize) -> PortIla {
    let dir = DIRS[idx];
    let mut p = PortIla::new(format!("IN-{}", dir.to_uppercase()));
    let valid = p.input(format!("in_{dir}_valid"), Sort::Bv(1));
    let dest = p.input(format!("in_{dir}_dest"), Sort::Bv(3));
    let data = p.input(format!("in_{dir}_data"), Sort::Bv(8));
    p.state(format!("buf_{dir}"), Sort::Bv(11), StateKind::Internal);
    p.state(format!("buf_{dir}_valid"), Sort::Bv(1), StateKind::Output);
    let rt = p.state(
        "rt",
        Sort::Mem {
            addr_width: 3,
            data_width: 3,
        },
        StateKind::Internal,
    );

    // RECV: buffer the packet and learn the (dest -> port) route.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(valid, 1);
        let packet = ctx.concat(dest, data);
        let me = ctx.bv_u64(idx as u64, 3);
        let learn = ctx.mem_write(rt, dest, me);
        let one = ctx.bv_u64(1, 1);
        p.instr(format!("RECV_{}", dir.to_uppercase()))
            .decode(d)
            .update(format!("buf_{dir}"), packet)
            .update(format!("buf_{dir}_valid"), one)
            .update("rt", learn)
            .add()
            .expect("valid model");
    }
    // IDLE.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(valid, 0);
        let zero = ctx.bv_u64(0, 1);
        p.instr(format!("IDLE_{}", dir.to_uppercase()))
            .decode(d)
            .update(format!("buf_{dir}_valid"), zero)
            .add()
            .expect("valid model");
    }
    p
}

/// Builds one OUT-port-ILA (direction `idx`).
pub fn out_port(idx: usize) -> PortIla {
    let dir = DIRS[idx];
    let mut p = PortIla::new(format!("OUT-{}", dir.to_uppercase()));
    let ready = p.input(format!("out_{dir}_ready"), Sort::Bv(1));
    let next_in = p.input(format!("out_{dir}_next"), Sort::Bv(8));
    let q = p.state(format!("q_{dir}"), Sort::Bv(8), StateKind::Internal);
    p.state(format!("out_{dir}_data"), Sort::Bv(8), StateKind::Output);
    p.state("last_sent", Sort::Bv(3), StateKind::Internal);

    // SEND: emit the queued flit, refill the queue, record the sender.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(ready, 1);
        let me = ctx.bv_u64(idx as u64, 3);
        p.instr(format!("SEND_{}", dir.to_uppercase()))
            .decode(d)
            .update(format!("out_{dir}_data"), q)
            .update(format!("q_{dir}"), next_in)
            .update("last_sent", me)
            .add()
            .expect("valid model");
    }
    // WAIT.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(ready, 0);
        p.instr(format!("WAIT_{}", dir.to_uppercase()))
            .decode(d)
            .add()
            .expect("valid model");
    }
    p
}

/// Integrates the five IN-ports (shared routing table, round-robin).
pub fn integrated_in_port() -> PortIla {
    let ports: Vec<PortIla> = (0..5).map(in_port).collect();
    let refs: Vec<&PortIla> = ports.iter().collect();
    integrate("IN-PORT", &refs, &RoundRobinResolver::new("rt_rr", 5))
        .expect("round-robin resolves all conflicts")
}

/// Integrates the five OUT-ports (shared `last_sent`, round-robin).
pub fn integrated_out_port() -> PortIla {
    let ports: Vec<PortIla> = (0..5).map(out_port).collect();
    let refs: Vec<&PortIla> = ports.iter().collect();
    integrate("OUT-PORT", &refs, &RoundRobinResolver::new("out_rr", 5))
        .expect("round-robin resolves all conflicts")
}

/// The router module-ILA: [IN-port, OUT-port].
pub fn ila() -> ModuleIla {
    ModuleIla::compose("noc_router", vec![integrated_in_port(), integrated_out_port()])
        .expect("integrated ports are independent")
}

/// The router RTL. The round-robin winner logic mirrors the integration
/// resolver exactly: scan for the first requester at or after the
/// pointer; advance the pointer past the winner only when two or more
/// requesters contend.
pub const RTL_SOURCE: &str = r#"
// OpenPiton-style NoC router: 5 in ports, 5 out ports,
// shared learned routing table with round-robin arbitration.
module noc_router(clk,
                  in_n_valid, in_n_dest, in_n_data,
                  in_e_valid, in_e_dest, in_e_data,
                  in_s_valid, in_s_dest, in_s_data,
                  in_w_valid, in_w_dest, in_w_data,
                  in_p_valid, in_p_dest, in_p_data,
                  out_n_ready, out_n_next, out_e_ready, out_e_next,
                  out_s_ready, out_s_next, out_w_ready, out_w_next,
                  out_p_ready, out_p_next);
  input clk;
  input in_n_valid; input [2:0] in_n_dest; input [7:0] in_n_data;
  input in_e_valid; input [2:0] in_e_dest; input [7:0] in_e_data;
  input in_s_valid; input [2:0] in_s_dest; input [7:0] in_s_data;
  input in_w_valid; input [2:0] in_w_dest; input [7:0] in_w_data;
  input in_p_valid; input [2:0] in_p_dest; input [7:0] in_p_data;
  input out_n_ready; input [7:0] out_n_next;
  input out_e_ready; input [7:0] out_e_next;
  input out_s_ready; input [7:0] out_s_next;
  input out_w_ready; input [7:0] out_w_next;
  input out_p_ready; input [7:0] out_p_next;

  reg [10:0] buf_n; reg buf_n_valid;
  reg [10:0] buf_e; reg buf_e_valid;
  reg [10:0] buf_s; reg buf_s_valid;
  reg [10:0] buf_w; reg buf_w_valid;
  reg [10:0] buf_p; reg buf_p_valid;
  reg [2:0] rt [0:7];
  reg [2:0] rt_rr;

  reg [7:0] q_n; reg [7:0] out_n_data_r;
  reg [7:0] q_e; reg [7:0] out_e_data_r;
  reg [7:0] q_s; reg [7:0] out_s_data_r;
  reg [7:0] q_w; reg [7:0] out_w_data_r;
  reg [7:0] q_p; reg [7:0] out_p_data_r;
  reg [2:0] last_sent;
  reg [2:0] out_rr;

  // Both arbiter pointers reset to port 0.
  initial begin
    rt_rr = 3'd0;
    out_rr = 3'd0;
  end

  // ---- input-side round-robin over the routing-table writers ----
  wire [2:0] in_cnt = {2'b0, in_n_valid} + {2'b0, in_e_valid}
                    + {2'b0, in_s_valid} + {2'b0, in_w_valid}
                    + {2'b0, in_p_valid};
  wire [2:0] in_w0 = in_n_valid ? 3'd0 : in_e_valid ? 3'd1 : in_s_valid ? 3'd2 : in_w_valid ? 3'd3 : 3'd4;
  wire [2:0] in_w1 = in_e_valid ? 3'd1 : in_s_valid ? 3'd2 : in_w_valid ? 3'd3 : in_p_valid ? 3'd4 : 3'd0;
  wire [2:0] in_w2 = in_s_valid ? 3'd2 : in_w_valid ? 3'd3 : in_p_valid ? 3'd4 : in_n_valid ? 3'd0 : 3'd1;
  wire [2:0] in_w3 = in_w_valid ? 3'd3 : in_p_valid ? 3'd4 : in_n_valid ? 3'd0 : in_e_valid ? 3'd1 : 3'd2;
  wire [2:0] in_w4 = in_p_valid ? 3'd4 : in_n_valid ? 3'd0 : in_e_valid ? 3'd1 : in_s_valid ? 3'd2 : 3'd3;
  wire [2:0] in_winner = (rt_rr == 3'd0) ? in_w0 :
                         (rt_rr == 3'd1) ? in_w1 :
                         (rt_rr == 3'd2) ? in_w2 :
                         (rt_rr == 3'd3) ? in_w3 : in_w4;
  wire [2:0] win_dest = (in_winner == 3'd0) ? in_n_dest :
                        (in_winner == 3'd1) ? in_e_dest :
                        (in_winner == 3'd2) ? in_s_dest :
                        (in_winner == 3'd3) ? in_w_dest : in_p_dest;

  always @(posedge clk) begin
    if (in_n_valid) begin buf_n <= {in_n_dest, in_n_data}; buf_n_valid <= 1'b1; end
    else buf_n_valid <= 1'b0;
    if (in_e_valid) begin buf_e <= {in_e_dest, in_e_data}; buf_e_valid <= 1'b1; end
    else buf_e_valid <= 1'b0;
    if (in_s_valid) begin buf_s <= {in_s_dest, in_s_data}; buf_s_valid <= 1'b1; end
    else buf_s_valid <= 1'b0;
    if (in_w_valid) begin buf_w <= {in_w_dest, in_w_data}; buf_w_valid <= 1'b1; end
    else buf_w_valid <= 1'b0;
    if (in_p_valid) begin buf_p <= {in_p_dest, in_p_data}; buf_p_valid <= 1'b1; end
    else buf_p_valid <= 1'b0;
    if (in_cnt != 3'd0) begin
      rt[win_dest] <= in_winner;
    end
    if (in_cnt >= 3'd2) begin
      rt_rr <= (in_winner == 3'd4) ? 3'd0 : in_winner + 3'd1;
    end
  end

  // ---- output-side round-robin over the last_sent writers ----
  wire [2:0] out_cnt = {2'b0, out_n_ready} + {2'b0, out_e_ready}
                     + {2'b0, out_s_ready} + {2'b0, out_w_ready}
                     + {2'b0, out_p_ready};
  wire [2:0] out_w0 = out_n_ready ? 3'd0 : out_e_ready ? 3'd1 : out_s_ready ? 3'd2 : out_w_ready ? 3'd3 : 3'd4;
  wire [2:0] out_w1 = out_e_ready ? 3'd1 : out_s_ready ? 3'd2 : out_w_ready ? 3'd3 : out_p_ready ? 3'd4 : 3'd0;
  wire [2:0] out_w2 = out_s_ready ? 3'd2 : out_w_ready ? 3'd3 : out_p_ready ? 3'd4 : out_n_ready ? 3'd0 : 3'd1;
  wire [2:0] out_w3 = out_w_ready ? 3'd3 : out_p_ready ? 3'd4 : out_n_ready ? 3'd0 : out_e_ready ? 3'd1 : 3'd2;
  wire [2:0] out_w4 = out_p_ready ? 3'd4 : out_n_ready ? 3'd0 : out_e_ready ? 3'd1 : out_s_ready ? 3'd2 : 3'd3;
  wire [2:0] out_winner = (out_rr == 3'd0) ? out_w0 :
                          (out_rr == 3'd1) ? out_w1 :
                          (out_rr == 3'd2) ? out_w2 :
                          (out_rr == 3'd3) ? out_w3 : out_w4;

  always @(posedge clk) begin
    if (out_n_ready) begin out_n_data_r <= q_n; q_n <= out_n_next; end
    if (out_e_ready) begin out_e_data_r <= q_e; q_e <= out_e_next; end
    if (out_s_ready) begin out_s_data_r <= q_s; q_s <= out_s_next; end
    if (out_w_ready) begin out_w_data_r <= q_w; q_w <= out_w_next; end
    if (out_p_ready) begin out_p_data_r <= q_p; q_p <= out_p_next; end
    if (out_cnt != 3'd0) begin
      last_sent <= out_winner;
    end
    if (out_cnt >= 3'd2) begin
      out_rr <= (out_winner == 3'd4) ? 3'd0 : out_winner + 3'd1;
    end
  end
endmodule
"#;

/// Parses the router RTL.
pub fn rtl() -> RtlModule {
    parse_verilog(RTL_SOURCE).expect("noc router RTL is valid")
}

/// Refinement maps for the two integrated ports.
pub fn refinement_maps() -> Vec<RefinementMap> {
    let mut inp = RefinementMap::new("IN-PORT");
    for dir in DIRS {
        inp.map_state(format!("buf_{dir}"), format!("buf_{dir}"));
        inp.map_state(format!("buf_{dir}_valid"), format!("buf_{dir}_valid"));
        inp.map_input(format!("in_{dir}_valid"), format!("in_{dir}_valid"));
        inp.map_input(format!("in_{dir}_dest"), format!("in_{dir}_dest"));
        inp.map_input(format!("in_{dir}_data"), format!("in_{dir}_data"));
    }
    inp.map_state("rt", "rt");
    inp.map_state("rt_rr", "rt_rr");
    // The integration resolver only arbitrates real contention; the
    // pointer must stay within 0..=4 for the scan orders to agree.
    inp.add_invariant("rt_rr <= 3'd4");

    let mut outp = RefinementMap::new("OUT-PORT");
    for dir in DIRS {
        outp.map_state(format!("q_{dir}"), format!("q_{dir}"));
        outp.map_state(format!("out_{dir}_data"), format!("out_{dir}_data_r"));
        outp.map_input(format!("out_{dir}_ready"), format!("out_{dir}_ready"));
        outp.map_input(format!("out_{dir}_next"), format!("out_{dir}_next"));
    }
    outp.map_state("last_sent", "last_sent");
    outp.map_state("out_rr", "out_rr");
    outp.add_invariant("out_rr <= 3'd4");
    vec![inp, outp]
}

/// The assembled case study (no documented bug for the router).
pub fn case_study() -> CaseStudy {
    CaseStudy {
        name: "NoC Router",
        ila: ila(),
        rtl: rtl(),
        refmaps: refinement_maps(),
        buggy_rtl: None,
        ports_before_integration: 10,
        ports_after_integration: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::{decode_gap, decode_overlaps};
    use gila_verify::{verify_module, VerifyOptions};

    #[test]
    fn sixty_four_atomic_instructions() {
        let m = ila();
        assert_eq!(m.stats().ports, 2);
        assert_eq!(m.stats().instructions, 64);
        assert_eq!(integrated_in_port().num_atomic_instructions(), 32);
        assert_eq!(integrated_out_port().num_atomic_instructions(), 32);
    }

    #[test]
    fn round_robin_pointer_states_exist() {
        let inp = integrated_in_port();
        assert!(inp.find_state("rt_rr").is_some());
        // A fully contended combo updates the routing table and pointer.
        let name = "RECV_N & RECV_E & RECV_S & RECV_W & RECV_P";
        let i = inp.find_instruction(name).expect("combo exists");
        assert!(i.updates.contains_key("rt"));
        assert!(i.updates.contains_key("rt_rr"));
        // A single-receiver combo does not touch the pointer.
        let name = "RECV_N & IDLE_E & IDLE_S & IDLE_W & IDLE_P";
        let i = inp.find_instruction(name).expect("combo exists");
        assert!(i.updates.contains_key("rt"));
        assert!(!i.updates.contains_key("rt_rr"));
    }

    #[test]
    fn decodes_are_well_formed() {
        for p in [integrated_in_port(), integrated_out_port()] {
            assert!(decode_gap(&p, None).is_none(), "{} incomplete", p.name());
            assert!(
                decode_overlaps(&p, None).is_empty(),
                "{} nondeterministic",
                p.name()
            );
        }
    }

    #[test]
    fn verifies_against_rtl() {
        let report = verify_module(&ila(), &rtl(), &refinement_maps(), &VerifyOptions::default())
            .expect("well-formed");
        assert!(report.all_hold(), "{report:#?}");
        assert_eq!(report.instructions_checked(), 64);
    }
}
