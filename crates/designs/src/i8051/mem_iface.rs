//! The 8051 memory interface (paper §III-C, Fig. 3): a multi-port
//! module *with shared state*.
//!
//! Three command ports: the ROM-port (instruction fetch) and RAM-port
//! (data access) share the `mem_wait` state that stalls the core while a
//! memory access is in flight; the PC-port is independent. Per the
//! informal specification, when both ports update `mem_wait`
//! simultaneously, *an update to 1 has priority over an update to 0* —
//! captured by a [`ValuePriorityResolver`] during integration.
//!
//! Integrated ROM-RAM-port: 3 x 3 = 9 atomic instructions; PC-port: 3 —
//! Table I's "12" and "3/2" ports.

use gila_core::{integrate, ModuleIla, PortIla, StateKind, ValuePriorityResolver};
use gila_expr::{BitVecValue, Sort};
use gila_rtl::{parse_verilog, RtlModule};
use gila_verify::RefinementMap;

use crate::registry::CaseStudy;

/// Builds the ROM-port-ILA (Fig. 3a left).
pub fn rom_port() -> PortIla {
    let mut p = PortIla::new("ROM-PORT");
    let rom_req = p.input("rom_req", Sort::Bv(1));
    let rom_addr_in = p.input("rom_addr_in", Sort::Bv(16));
    let rom_data_valid = p.input("rom_data_valid", Sort::Bv(1));
    let rom_data_in = p.input("rom_data_in", Sort::Bv(8));
    p.state("rom_addr", Sort::Bv(16), StateKind::Output);
    p.state("rom_data", Sort::Bv(8), StateKind::Output);
    p.state("mem_wait", Sort::Bv(1), StateKind::Internal);

    // ROM_REQ: start a fetch.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(rom_req, 1);
        let one = ctx.bv_u64(1, 1);
        p.instr("ROM_REQ")
            .decode(d)
            .update("rom_addr", rom_addr_in)
            .update("mem_wait", one)
            .add()
            .expect("valid model");
    }
    // ROM_RESP: fetch data arrived.
    {
        let ctx = p.ctx_mut();
        let nreq = ctx.eq_u64(rom_req, 0);
        let val = ctx.eq_u64(rom_data_valid, 1);
        let d = ctx.and(nreq, val);
        p.instr("ROM_RESP")
            .decode(d)
            .update("rom_data", rom_data_in)
            .add()
            .expect("valid model");
    }
    // ROM_IDLE: nothing in flight.
    {
        let ctx = p.ctx_mut();
        let nreq = ctx.eq_u64(rom_req, 0);
        let nval = ctx.eq_u64(rom_data_valid, 0);
        let d = ctx.and(nreq, nval);
        let zero = ctx.bv_u64(0, 1);
        p.instr("ROM_IDLE")
            .decode(d)
            .update("mem_wait", zero)
            .add()
            .expect("valid model");
    }
    p
}

/// Builds the RAM-port-ILA (Fig. 3a right).
pub fn ram_port() -> PortIla {
    let mut p = PortIla::new("RAM-PORT");
    let ram_req = p.input("ram_req", Sort::Bv(1));
    let ram_addr_in = p.input("ram_addr_in", Sort::Bv(8));
    let ram_data_valid = p.input("ram_data_valid", Sort::Bv(1));
    let ram_data_in = p.input("ram_data_in", Sort::Bv(8));
    p.state("ram_addr", Sort::Bv(8), StateKind::Output);
    p.state("ram_data", Sort::Bv(8), StateKind::Output);
    p.state("mem_wait", Sort::Bv(1), StateKind::Internal);

    // RAM_REQ: start an access; the write data rides along.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(ram_req, 1);
        let one = ctx.bv_u64(1, 1);
        p.instr("RAM_REQ")
            .decode(d)
            .update("ram_addr", ram_addr_in)
            .update("ram_data", ram_data_in)
            .update("mem_wait", one)
            .add()
            .expect("valid model");
    }
    // RAM_RESP: read data arrived.
    {
        let ctx = p.ctx_mut();
        let nreq = ctx.eq_u64(ram_req, 0);
        let val = ctx.eq_u64(ram_data_valid, 1);
        let d = ctx.and(nreq, val);
        p.instr("RAM_RESP")
            .decode(d)
            .update("ram_data", ram_data_in)
            .add()
            .expect("valid model");
    }
    // RAM_IDLE.
    {
        let ctx = p.ctx_mut();
        let nreq = ctx.eq_u64(ram_req, 0);
        let nval = ctx.eq_u64(ram_data_valid, 0);
        let d = ctx.and(nreq, nval);
        let zero = ctx.bv_u64(0, 1);
        p.instr("RAM_IDLE")
            .decode(d)
            .update("mem_wait", zero)
            .add()
            .expect("valid model");
    }
    p
}

/// Builds the PC-port-ILA (Fig. 3b), independent of the other two.
pub fn pc_port() -> PortIla {
    let mut p = PortIla::new("PC-PORT");
    let instr_valid = p.input("instr_valid", Sort::Bv(1));
    let instr_in = p.input("instr_in", Sort::Bv(8));
    let pc_imp = p.input("pc_imp", Sort::Bv(1));
    let pc_target = p.input("pc_target", Sort::Bv(16));
    p.state("imm_data0", Sort::Bv(8), StateKind::Output);
    p.state("imm_data1", Sort::Bv(8), StateKind::Output);
    p.state("operand0", Sort::Bv(4), StateKind::Output);
    p.state("operand1", Sort::Bv(4), StateKind::Output);
    let pc = p.state("pc", Sort::Bv(16), StateKind::Internal);
    let instr_buff = p.state("instr_buff", Sort::Bv(8), StateKind::Internal);

    // LOAD_INST: buffer a fetched instruction byte.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(instr_valid, 1);
        p.instr("LOAD_INST")
            .decode(d)
            .update("instr_buff", instr_in)
            .add()
            .expect("valid model");
    }
    // PC_UPDATE: jump; the decoded fields refresh from the buffer.
    {
        let ctx = p.ctx_mut();
        let nv = ctx.eq_u64(instr_valid, 0);
        let imp = ctx.eq_u64(pc_imp, 1);
        let d = ctx.and(nv, imp);
        let hi = ctx.extract(instr_buff, 7, 4);
        let lo = ctx.extract(instr_buff, 3, 0);
        let imm0 = ctx.zext(lo, 8);
        let notb = ctx.bvnot(instr_buff);
        p.instr("PC_UPDATE")
            .decode(d)
            .update("pc", pc_target)
            .update("imm_data0", imm0)
            .update("imm_data1", notb)
            .update("operand0", lo)
            .update("operand1", hi)
            .add()
            .expect("valid model");
    }
    // PC_KEEP: sequential execution; pc advances by one.
    {
        let ctx = p.ctx_mut();
        let nv = ctx.eq_u64(instr_valid, 0);
        let nimp = ctx.eq_u64(pc_imp, 0);
        let d = ctx.and(nv, nimp);
        let one16 = ctx.bv_u64(1, 16);
        let inc = ctx.bvadd(pc, one16);
        let hi = ctx.extract(instr_buff, 7, 4);
        let lo = ctx.extract(instr_buff, 3, 0);
        let imm0 = ctx.zext(lo, 8);
        let notb = ctx.bvnot(instr_buff);
        p.instr("PC_KEEP")
            .decode(d)
            .update("pc", inc)
            .update("imm_data0", imm0)
            .update("imm_data1", notb)
            .update("operand0", lo)
            .update("operand1", hi)
            .add()
            .expect("valid model");
    }
    p
}

/// Integrates the ROM- and RAM-ports (Fig. 3a bottom): cross product of
/// instructions, `mem_wait` conflicts resolved in favour of the value 1.
pub fn integrated_rom_ram_port() -> PortIla {
    let rom = rom_port();
    let ram = ram_port();
    let resolver = ValuePriorityResolver::new(BitVecValue::from_u64(1, 1));
    integrate("ROM-RAM-PORT", &[&rom, &ram], &resolver)
        .expect("the specification resolves all conflicts")
}

/// The memory-interface module-ILA: [ROM-RAM-port, PC-port].
pub fn ila() -> ModuleIla {
    ModuleIla::compose("mem_iface", vec![integrated_rom_ram_port(), pc_port()])
        .expect("integrated ports are independent")
}

/// The memory interface RTL.
pub const RTL_SOURCE: &str = r#"
// i8051 memory interface: ROM fetch + RAM access + PC control.
module mem_iface(clk,
                 rom_req, rom_addr_in, rom_data_valid, rom_data_in,
                 ram_req, ram_addr_in, ram_data_valid, ram_data_in,
                 instr_valid, instr_in, pc_imp, pc_target);
  input clk;
  input rom_req;
  input [15:0] rom_addr_in;
  input rom_data_valid;
  input [7:0] rom_data_in;
  input ram_req;
  input [7:0] ram_addr_in;
  input ram_data_valid;
  input [7:0] ram_data_in;
  input instr_valid;
  input [7:0] instr_in;
  input pc_imp;
  input [15:0] pc_target;

  reg [15:0] rom_addr_r;
  reg [7:0] rom_data_r;
  reg [7:0] ram_addr_r;
  reg [7:0] ram_data_r;
  reg mem_wait_r;

  reg [15:0] pc_r;
  reg [7:0] instr_buff_r;
  reg [7:0] imm0_r;
  reg [7:0] imm1_r;
  reg [3:0] opr0_r;
  reg [3:0] opr1_r;

  always @(posedge clk) begin
    // ROM side
    if (rom_req) begin
      rom_addr_r <= rom_addr_in;
    end
    else begin
      if (rom_data_valid) rom_data_r <= rom_data_in;
    end
    // RAM side
    if (ram_req) begin
      ram_addr_r <= ram_addr_in;
      ram_data_r <= ram_data_in;
    end
    else begin
      if (ram_data_valid) ram_data_r <= ram_data_in;
    end
    // Shared wait flag: a request from either port wins over release
    // (the documented priority of updates to 1 over updates to 0).
    if (rom_req || ram_req) mem_wait_r <= 1'b1;
    else if (!rom_data_valid || !ram_data_valid) mem_wait_r <= 1'b0;
  end

  always @(posedge clk) begin
    if (instr_valid) begin
      instr_buff_r <= instr_in;
    end
    else begin
      if (pc_imp) pc_r <= pc_target;
      else pc_r <= pc_r + 16'd1;
      imm0_r <= {4'b0, instr_buff_r[3:0]};
      imm1_r <= ~instr_buff_r;
      opr0_r <= instr_buff_r[3:0];
      opr1_r <= instr_buff_r[7:4];
    end
  end
endmodule
"#;

/// Parses the memory-interface RTL.
pub fn rtl() -> RtlModule {
    parse_verilog(RTL_SOURCE).expect("mem_iface RTL is valid")
}

/// Refinement maps: one for the integrated ROM-RAM port, one for PC.
pub fn refinement_maps() -> Vec<RefinementMap> {
    let mut mm = RefinementMap::new("ROM-RAM-PORT");
    mm.map_state("rom_addr", "rom_addr_r");
    mm.map_state("rom_data", "rom_data_r");
    mm.map_state("ram_addr", "ram_addr_r");
    mm.map_state("ram_data", "ram_data_r");
    mm.map_state("mem_wait", "mem_wait_r");
    mm.map_input("rom_req", "rom_req");
    mm.map_input("rom_addr_in", "rom_addr_in");
    mm.map_input("rom_data_valid", "rom_data_valid");
    mm.map_input("rom_data_in", "rom_data_in");
    mm.map_input("ram_req", "ram_req");
    mm.map_input("ram_addr_in", "ram_addr_in");
    mm.map_input("ram_data_valid", "ram_data_valid");
    mm.map_input("ram_data_in", "ram_data_in");

    let mut pc = RefinementMap::new("PC-PORT");
    pc.map_state("pc", "pc_r");
    pc.map_state("instr_buff", "instr_buff_r");
    pc.map_state("imm_data0", "imm0_r");
    pc.map_state("imm_data1", "imm1_r");
    pc.map_state("operand0", "opr0_r");
    pc.map_state("operand1", "opr1_r");
    pc.map_input("instr_valid", "instr_valid");
    pc.map_input("instr_in", "instr_in");
    pc.map_input("pc_imp", "pc_imp");
    pc.map_input("pc_target", "pc_target");
    vec![mm, pc]
}

/// The assembled case study (no documented bug).
pub fn case_study() -> CaseStudy {
    CaseStudy {
        name: "Mem. Interface",
        ila: ila(),
        rtl: rtl(),
        refmaps: refinement_maps(),
        buggy_rtl: None,
        ports_before_integration: 3,
        ports_after_integration: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::{decode_gap, decode_overlaps, IntegrateError, NoResolver};
    use gila_verify::{verify_module, VerifyOptions};

    #[test]
    fn integration_yields_nine_plus_three() {
        let m = ila();
        assert_eq!(m.stats().ports, 2);
        assert_eq!(m.stats().instructions, 12);
        let rr = integrated_rom_ram_port();
        assert_eq!(rr.num_atomic_instructions(), 9);
        // Fig. 3's instruction names exist.
        assert!(rr.find_instruction("ROM_REQ & RAM_REQ").is_some());
        assert!(rr.find_instruction("ROM_IDLE & RAM_RESP").is_some());
    }

    #[test]
    fn without_resolver_the_conflicts_are_specification_gaps() {
        let rom = rom_port();
        let ram = ram_port();
        let err = integrate("X", &[&rom, &ram], &NoResolver).unwrap_err();
        let IntegrateError::SpecificationGaps(gaps) = err else {
            panic!("expected gaps");
        };
        // REQ&IDLE and IDLE&REQ conflict (1 vs 0).
        assert_eq!(gaps.len(), 2);
        assert!(gaps.iter().all(|g| g.state == "mem_wait"));
    }

    #[test]
    fn priority_resolution_matches_fig3() {
        let rr = integrated_rom_ram_port();
        // ROM_IDLE & RAM_REQ: mem_wait updated to 1 (request wins).
        let i = rr.find_instruction("ROM_IDLE & RAM_REQ").unwrap();
        assert_eq!(
            rr.ctx().as_bv_const(i.updates["mem_wait"]),
            Some(&BitVecValue::from_u64(1, 1))
        );
        // ROM_REQ & RAM_RESP updates rom_addr, mem_wait, ram_data.
        let i = rr.find_instruction("ROM_REQ & RAM_RESP").unwrap();
        let keys: Vec<&str> = i.updates.keys().map(String::as_str).collect();
        assert_eq!(keys, vec!["mem_wait", "ram_data", "rom_addr"]);
    }

    #[test]
    fn decodes_are_well_formed() {
        for p in [integrated_rom_ram_port(), pc_port()] {
            assert!(decode_gap(&p, None).is_none(), "{} incomplete", p.name());
            assert!(
                decode_overlaps(&p, None).is_empty(),
                "{} nondeterministic",
                p.name()
            );
        }
    }

    #[test]
    fn verifies_against_rtl() {
        let report = verify_module(&ila(), &rtl(), &refinement_maps(), &VerifyOptions::default())
            .expect("well-formed");
        assert!(report.all_hold(), "{report:#?}");
        assert_eq!(report.instructions_checked(), 12);
    }
}
