//! The three modules of the opencores 8051 micro-controller.

pub mod datapath;
pub mod decoder;
pub mod mem_iface;
pub mod top;
