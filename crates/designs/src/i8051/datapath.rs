//! The 8051 datapath (paper §V.B.3): two independent ports.
//!
//! The ALU-port models 16 computation instructions (add, sub, logic,
//! rotates, multiply, divide, ...) updating the accumulator and the
//! carry/zero flags. The data-port accesses the 256-byte internal RAM
//! and a special-function register — the RAM dominates verification
//! time, which is why the paper's small-memory abstraction matters here
//! (176 s -> 9.5 s with a 16-byte abstraction).

use gila_core::{ModuleIla, PortIla, StateKind};
use gila_expr::{ExprCtx, ExprRef, Sort};
use gila_rtl::{parse_verilog, RtlModule};
use gila_verify::{abstract_port_memory, abstract_rtl_memory, RefinementMap};

use crate::registry::CaseStudy;

/// ALU operation encodings, ordered by the 4-bit opcode.
pub const ALU_OPS: [&str; 16] = [
    "ADD", "ADDC", "SUB", "SUBB", "INC", "DEC", "MUL", "DIV", "ANL", "ORL", "XRL", "CLR", "CPL",
    "RL", "RR", "MOV",
];

/// Computes `(result, carry_next)` for one ALU op over 8-bit operands.
fn alu_semantics(
    ctx: &mut ExprCtx,
    op: u64,
    acc: ExprRef,
    b: ExprRef,
    carry: ExprRef,
) -> (ExprRef, ExprRef) {
    let acc9 = ctx.zext(acc, 9);
    let b9 = ctx.zext(b, 9);
    let carry9 = ctx.zext(carry, 9);
    match op {
        0 => {
            // ADD
            let sum = ctx.bvadd(acc9, b9);
            (ctx.extract(sum, 7, 0), ctx.extract(sum, 8, 8))
        }
        1 => {
            // ADDC
            let s0 = ctx.bvadd(acc9, b9);
            let sum = ctx.bvadd(s0, carry9);
            (ctx.extract(sum, 7, 0), ctx.extract(sum, 8, 8))
        }
        2 => {
            // SUB: borrow out in carry
            let diff = ctx.bvsub(acc9, b9);
            (ctx.extract(diff, 7, 0), ctx.extract(diff, 8, 8))
        }
        3 => {
            // SUBB
            let d0 = ctx.bvsub(acc9, b9);
            let diff = ctx.bvsub(d0, carry9);
            (ctx.extract(diff, 7, 0), ctx.extract(diff, 8, 8))
        }
        4 => {
            // INC (carry unchanged)
            let one = ctx.bv_u64(1, 8);
            (ctx.bvadd(acc, one), carry)
        }
        5 => {
            // DEC (carry unchanged)
            let one = ctx.bv_u64(1, 8);
            (ctx.bvsub(acc, one), carry)
        }
        6 => {
            // MUL: low byte of the product, carry cleared
            let zero1 = ctx.bv_u64(0, 1);
            (ctx.bvmul(acc, b), zero1)
        }
        7 => {
            // DIV: unsigned quotient, carry cleared
            let zero1 = ctx.bv_u64(0, 1);
            (ctx.bvudiv(acc, b), zero1)
        }
        8 => (ctx.bvand(acc, b), carry),  // ANL
        9 => (ctx.bvor(acc, b), carry),   // ORL
        10 => (ctx.bvxor(acc, b), carry), // XRL
        11 => {
            // CLR
            let zero8 = ctx.bv_u64(0, 8);
            let zero1 = ctx.bv_u64(0, 1);
            (zero8, zero1)
        }
        12 => (ctx.bvnot(acc), carry), // CPL
        13 => {
            // RL: rotate left through bit 7 -> carry
            let low = ctx.extract(acc, 6, 0);
            let top = ctx.extract(acc, 7, 7);
            (ctx.concat(low, top), top)
        }
        14 => {
            // RR: rotate right through bit 0 -> carry
            let high = ctx.extract(acc, 7, 1);
            let bottom = ctx.extract(acc, 0, 0);
            (ctx.concat(bottom, high), bottom)
        }
        15 => (b, carry), // MOV
        _ => unreachable!("4-bit opcode"),
    }
}

/// Builds the ALU-port-ILA: one instruction per 4-bit opcode.
pub fn alu_port() -> PortIla {
    let mut p = PortIla::new("ALU-PORT");
    let op_in = p.input("alu_op_in", Sort::Bv(4));
    let b_in = p.input("alu_b", Sort::Bv(8));
    let acc = p.state("acc", Sort::Bv(8), StateKind::Output);
    let carry = p.state("carry", Sort::Bv(1), StateKind::Output);
    p.state("zero", Sort::Bv(1), StateKind::Output);
    for (opcode, name) in ALU_OPS.iter().enumerate() {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(op_in, opcode as u64);
        let (result, carry_next) = alu_semantics(ctx, opcode as u64, acc, b_in, carry);
        let is_zero = ctx.eq_u64(result, 0);
        let zero_next = ctx.bool_to_bv(is_zero);
        p.instr(*name)
            .decode(d)
            .update("acc", result)
            .update("carry", carry_next)
            .update("zero", zero_next)
            .add()
            .expect("valid model");
    }
    p
}

/// Builds the data-port-ILA: internal RAM and SFR access.
pub fn data_port() -> PortIla {
    let mut p = PortIla::new("DATA-PORT");
    let cmd = p.input("data_cmd", Sort::Bv(2));
    let addr = p.input("data_addr", Sort::Bv(8));
    let wdata = p.input("data_wdata", Sort::Bv(8));
    let iram = p.state(
        "iram",
        Sort::Mem {
            addr_width: 8,
            data_width: 8,
        },
        StateKind::Internal,
    );
    let sfr = p.state("sfr", Sort::Bv(8), StateKind::Internal);
    p.state("data_out", Sort::Bv(8), StateKind::Output);

    // RAM_WRITE.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(cmd, 0);
        let w = ctx.mem_write(iram, addr, wdata);
        p.instr("RAM_WRITE")
            .decode(d)
            .update("iram", w)
            .add()
            .expect("valid model");
    }
    // RAM_READ.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(cmd, 1);
        let r = ctx.mem_read(iram, addr);
        p.instr("RAM_READ")
            .decode(d)
            .update("data_out", r)
            .add()
            .expect("valid model");
    }
    // SFR_WRITE.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(cmd, 2);
        p.instr("SFR_WRITE")
            .decode(d)
            .update("sfr", wdata)
            .add()
            .expect("valid model");
    }
    // SFR_READ.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(cmd, 3);
        p.instr("SFR_READ")
            .decode(d)
            .update("data_out", sfr)
            .add()
            .expect("valid model");
    }
    p
}

/// The datapath module-ILA.
pub fn ila() -> ModuleIla {
    ModuleIla::compose("datapath", vec![alu_port(), data_port()])
        .expect("ports are independent")
}

/// The datapath module-ILA with the internal RAM abstracted to 16 bytes
/// (the paper's "standard small memory modeling").
pub fn ila_abstracted() -> ModuleIla {
    let alu = alu_port();
    let data = abstract_port_memory(&data_port(), "iram", 4).expect("iram is a memory");
    ModuleIla::compose("datapath", vec![alu, data]).expect("ports are independent")
}

/// The datapath RTL.
pub const RTL_SOURCE: &str = r#"
// i8051 datapath: ALU + internal RAM / SFR access.
module datapath(clk, alu_op_in, alu_b, data_cmd, data_addr, data_wdata);
  input clk;
  input [3:0] alu_op_in;
  input [7:0] alu_b;
  input [1:0] data_cmd;
  input [7:0] data_addr;
  input [7:0] data_wdata;

  reg [7:0] acc;
  reg carry;
  reg zero;

  reg [7:0] iram [0:255];
  reg [7:0] sfr;
  reg [7:0] data_out_r;

  // 9-bit intermediates expose the carry/borrow.
  wire [8:0] add_s = {1'b0, acc} + {1'b0, alu_b};
  wire [8:0] addc_s = {1'b0, acc} + {1'b0, alu_b} + {8'b0, carry};
  wire [8:0] sub_s = {1'b0, acc} - {1'b0, alu_b};
  wire [8:0] subb_s = {1'b0, acc} - {1'b0, alu_b} - {8'b0, carry};

  wire [7:0] alu_r =
      (alu_op_in == 4'd0) ? add_s[7:0] :
      (alu_op_in == 4'd1) ? addc_s[7:0] :
      (alu_op_in == 4'd2) ? sub_s[7:0] :
      (alu_op_in == 4'd3) ? subb_s[7:0] :
      (alu_op_in == 4'd4) ? acc + 8'd1 :
      (alu_op_in == 4'd5) ? acc - 8'd1 :
      (alu_op_in == 4'd6) ? acc * alu_b :
      (alu_op_in == 4'd7) ? acc / alu_b :
      (alu_op_in == 4'd8) ? (acc & alu_b) :
      (alu_op_in == 4'd9) ? (acc | alu_b) :
      (alu_op_in == 4'd10) ? (acc ^ alu_b) :
      (alu_op_in == 4'd11) ? 8'd0 :
      (alu_op_in == 4'd12) ? ~acc :
      (alu_op_in == 4'd13) ? {acc[6:0], acc[7]} :
      (alu_op_in == 4'd14) ? {acc[0], acc[7:1]} :
      alu_b;

  wire carry_r =
      (alu_op_in == 4'd0) ? add_s[8] :
      (alu_op_in == 4'd1) ? addc_s[8] :
      (alu_op_in == 4'd2) ? sub_s[8] :
      (alu_op_in == 4'd3) ? subb_s[8] :
      (alu_op_in == 4'd6) ? 1'b0 :
      (alu_op_in == 4'd7) ? 1'b0 :
      (alu_op_in == 4'd11) ? 1'b0 :
      (alu_op_in == 4'd13) ? acc[7] :
      (alu_op_in == 4'd14) ? acc[0] :
      carry;

  always @(posedge clk) begin
    acc <= alu_r;
    carry <= carry_r;
    zero <= (alu_r == 8'd0);
  end

  always @(posedge clk) begin
    case (data_cmd)
      2'd0: iram[data_addr] <= data_wdata;
      2'd1: data_out_r <= iram[data_addr];
      2'd2: sfr <= data_wdata;
      default: data_out_r <= sfr;
    endcase
  end
endmodule
"#;

/// Parses the datapath RTL (full 256-byte RAM).
pub fn rtl() -> RtlModule {
    parse_verilog(RTL_SOURCE).expect("datapath RTL is valid")
}

/// The datapath RTL with the RAM abstracted to 16 bytes.
pub fn rtl_abstracted() -> RtlModule {
    abstract_rtl_memory(&rtl(), "iram", 4).expect("iram is a memory")
}

/// Refinement maps for both ports.
pub fn refinement_maps() -> Vec<RefinementMap> {
    let mut alu = RefinementMap::new("ALU-PORT");
    alu.map_state("acc", "acc");
    alu.map_state("carry", "carry");
    alu.map_state("zero", "zero");
    alu.map_input("alu_op_in", "alu_op_in");
    alu.map_input("alu_b", "alu_b");

    let mut data = RefinementMap::new("DATA-PORT");
    data.map_state("iram", "iram");
    data.map_state("sfr", "sfr");
    data.map_state("data_out", "data_out_r");
    data.map_input("data_cmd", "data_cmd");
    data.map_input("data_addr", "data_addr");
    data.map_input("data_wdata", "data_wdata");
    vec![alu, data]
}

/// The assembled case study (full-size RAM; no documented bug).
pub fn case_study() -> CaseStudy {
    CaseStudy {
        name: "Datapath",
        ila: ila(),
        rtl: rtl(),
        refmaps: refinement_maps(),
        buggy_rtl: None,
        ports_before_integration: 2,
        ports_after_integration: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::{decode_gap, decode_overlaps, PortSimulator};
    use gila_expr::{BitVecValue, Value};
    use gila_verify::{verify_module, VerifyOptions};

    #[test]
    fn twenty_atomic_instructions() {
        let m = ila();
        assert_eq!(m.stats().instructions, 20);
        // 256-byte RAM dominates the arch state bits.
        assert!(m.stats().arch_state_bits > 2048);
    }

    #[test]
    fn decodes_are_well_formed() {
        for p in [alu_port(), data_port()] {
            assert!(decode_gap(&p, None).is_none(), "{} incomplete", p.name());
            assert!(
                decode_overlaps(&p, None).is_empty(),
                "{} nondeterministic",
                p.name()
            );
        }
    }

    #[test]
    fn alu_simulation_spot_checks() {
        let p = alu_port();
        let mut sim = PortSimulator::new(&p);
        let mut ins = std::collections::BTreeMap::new();
        let set = |ins: &mut std::collections::BTreeMap<String, Value>, op: u64, b: u64| {
            ins.insert("alu_op_in".into(), Value::Bv(BitVecValue::from_u64(op, 4)));
            ins.insert("alu_b".into(), Value::Bv(BitVecValue::from_u64(b, 8)));
        };
        // MOV 200 -> acc
        set(&mut ins, 15, 200);
        assert_eq!(sim.step(&ins).unwrap(), "MOV");
        assert_eq!(sim.state()["acc"].as_bv().to_u64(), 200);
        // ADD 100: wraps, sets carry
        set(&mut ins, 0, 100);
        assert_eq!(sim.step(&ins).unwrap(), "ADD");
        assert_eq!(sim.state()["acc"].as_bv().to_u64(), 44);
        assert_eq!(sim.state()["carry"].as_bv().to_u64(), 1);
        // ADDC adds the carry back in
        set(&mut ins, 1, 0);
        sim.step(&ins).unwrap();
        assert_eq!(sim.state()["acc"].as_bv().to_u64(), 45);
        // DIV by zero: SMT-LIB semantics, all-ones
        set(&mut ins, 7, 0);
        sim.step(&ins).unwrap();
        assert_eq!(sim.state()["acc"].as_bv().to_u64(), 0xFF);
        // CLR zeroes and sets the zero flag
        set(&mut ins, 11, 0);
        sim.step(&ins).unwrap();
        assert_eq!(sim.state()["acc"].as_bv().to_u64(), 0);
        assert_eq!(sim.state()["zero"].as_bv().to_u64(), 1);
        // RL rotates
        set(&mut ins, 15, 0b1000_0001);
        sim.step(&ins).unwrap();
        set(&mut ins, 13, 0);
        sim.step(&ins).unwrap();
        assert_eq!(sim.state()["acc"].as_bv().to_u64(), 0b0000_0011);
        assert_eq!(sim.state()["carry"].as_bv().to_u64(), 1);
    }

    #[test]
    fn verifies_abstracted() {
        // The 16-byte abstraction (the configuration the paper calls
        // "9.5 s"); the full 256-byte check runs in the benchmark harness.
        let report = verify_module(
            &ila_abstracted(),
            &rtl_abstracted(),
            &refinement_maps(),
            &VerifyOptions::default(),
        )
        .expect("well-formed");
        assert!(report.all_hold(), "{report:#?}");
        assert_eq!(report.instructions_checked(), 20);
    }

    #[test]
    fn alu_port_verifies_fullsize() {
        // The ALU port does not touch the RAM; verify it at full size.
        let report = gila_verify::verify_port(
            &alu_port(),
            &rtl(),
            &refinement_maps()[0],
            &VerifyOptions::default(),
        )
        .expect("well-formed");
        assert!(report.all_hold(), "{report:#?}");
        assert_eq!(report.verdicts.len(), 16);
    }
}
