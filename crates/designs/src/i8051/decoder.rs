//! The 8051 decoder: the paper's single-command-interface example
//! (§III-A, Fig. 1).
//!
//! The decoder receives one instruction word at a time and drives the
//! datapath control signals over up to four machine cycles. Its command
//! interface is the pair (`wait`, `word_in`): `wait == 1` stalls the
//! module; `wait == 0` processes the current word (loading a new word
//! when the previous one finished, or executing the next step of a
//! multi-cycle word).
//!
//! Five atomic instructions, as in Table I's "5":
//! `stall`, `process_load` (step 0), and the three continuation
//! sub-instructions `process_s1..s3`.

use gila_core::{ModuleIla, PortIla, StateKind};
use gila_expr::{ExprCtx, ExprRef, Sort};
use gila_rtl::{parse_verilog, RtlModule};
use gila_verify::RefinementMap;

use crate::registry::CaseStudy;

/// The decoder's control-signal functions, shared between the load step
/// (from `word_in`) and the continuation steps (from `current_word`),
/// mirroring the opcode-group structure of the opencores 8051 decoder.
///
/// Returns `(alu_op, pc_wr, wr_sfr, mem_act)` for a given word and step.
fn control_signals(
    ctx: &mut ExprCtx,
    word: ExprRef,
    step: ExprRef,
) -> (ExprRef, ExprRef, ExprRef, ExprRef) {
    // Opcode group = word[7:6]; group selects the ALU operation family.
    let group = ctx.extract(word, 7, 6);
    let low = ctx.extract(word, 3, 0);
    let inv_low = ctx.bvnot(low);
    let step4 = ctx.zext(step, 4);
    let low_plus_step = ctx.bvadd(low, step4);
    // group 0: arithmetic (alu_op = low nibble)
    // group 1: logic     (alu_op = ~low)
    // group 2: memory    (alu_op = low + step)
    // group 3: branch    (alu_op = 0)
    let g0 = ctx.eq_u64(group, 0);
    let g1 = ctx.eq_u64(group, 1);
    let g2 = ctx.eq_u64(group, 2);
    let zero4 = ctx.bv_u64(0, 4);
    let alu23 = ctx.ite(g2, low_plus_step, zero4);
    let alu123 = ctx.ite(g1, inv_low, alu23);
    let alu_op = ctx.ite(g0, low, alu123);
    // pc_wr: branch group writes the PC on the last step (step == 0 after
    // decrement means: current step input is 1) — encode as group 3 and
    // word bit 4.
    let g3 = ctx.eq_u64(group, 3);
    let b4 = ctx.extract(word, 4, 4);
    let zero1 = ctx.bv_u64(0, 1);
    let pc_wr = ctx.ite(g3, b4, zero1);
    // wr_sfr: word bit 5, masked by step parity.
    let b5 = ctx.extract(word, 5, 5);
    let step0bit = ctx.extract(step, 0, 0);
    let nparity = ctx.bvnot(step0bit);
    let wr_sfr = ctx.bvand(b5, nparity);
    // mem_act: memory group and word bit 0.
    let b0 = ctx.extract(word, 0, 0);
    let mem_act = ctx.ite(g2, b0, zero1);
    (alu_op, pc_wr, wr_sfr, mem_act)
}

/// Builds the decoder port-ILA (Fig. 1).
pub fn port_ila() -> PortIla {
    let mut p = PortIla::new("DECODER");
    let wait = p.input("wait", Sort::Bv(1));
    let word_in = p.input("word_in", Sort::Bv(8));
    // Output states.
    p.state("alu_op", Sort::Bv(4), StateKind::Output);
    p.state("pc_wr", Sort::Bv(1), StateKind::Output);
    p.state("wr_sfr", Sort::Bv(1), StateKind::Output);
    p.state("mem_act", Sort::Bv(1), StateKind::Output);
    // Other (non-output) states.
    let current_word = p.state("current_word", Sort::Bv(8), StateKind::Internal);
    let step = p.state("step", Sort::Bv(2), StateKind::Internal);

    // stall: wait == 1, everything unchanged.
    let d_stall = p.ctx_mut().eq_u64(wait, 1);
    p.instr("stall").decode(d_stall).add().expect("valid model");

    // process_load (step == 0): latch a new word; its duration (number of
    // remaining steps) is the word's top two bits; outputs from word_in.
    {
        let ctx = p.ctx_mut();
        let w0 = ctx.eq_u64(wait, 0);
        let s0 = ctx.eq_u64(step, 0);
        let d = ctx.and(w0, s0);
        let steps = ctx.extract(word_in, 7, 6);
        let zero2 = ctx.bv_u64(0, 2);
        let (alu_op, pc_wr, wr_sfr, mem_act) = control_signals(ctx, word_in, zero2);
        let _ = &steps;
        p.instr("process_load")
            .decode(d)
            .update("current_word", word_in)
            .update("step", steps)
            .update("alu_op", alu_op)
            .update("pc_wr", pc_wr)
            .update("wr_sfr", wr_sfr)
            .update("mem_act", mem_act)
            .add()
            .expect("valid model");
    }

    // process_s1..s3: continuation steps; step decrements, outputs from
    // the stored word and the current step.
    for s in 1..=3u64 {
        let ctx = p.ctx_mut();
        let w0 = ctx.eq_u64(wait, 0);
        let ss = ctx.eq_u64(step, s);
        let d = ctx.and(w0, ss);
        let one2 = ctx.bv_u64(1, 2);
        let dec = ctx.bvsub(step, one2);
        let (alu_op, pc_wr, wr_sfr, mem_act) = control_signals(ctx, current_word, step);
        p.sub_instr(format!("process_s{s}"), "process_load")
            .decode(d)
            .update("step", dec)
            .update("alu_op", alu_op)
            .update("pc_wr", pc_wr)
            .update("wr_sfr", wr_sfr)
            .update("mem_act", mem_act)
            .add()
            .expect("valid model");
    }
    p
}

/// The decoder module-ILA (single port).
pub fn ila() -> ModuleIla {
    ModuleIla::single_port(port_ila())
}

/// The decoder RTL (Verilog subset), structured like the opencores
/// design: a registered opcode (`op`), a step counter (`status`), and a
/// wide combinational case structure selecting the control outputs.
pub const RTL_SOURCE: &str = r#"
// i8051 decoder - control decoder with multi-cycle opcode support
module decoder(clk, wait_data, op_in);
  input clk;
  input wait_data;
  input [7:0] op_in;

  reg [7:0] op;       // current opcode word
  reg [1:0] status;   // remaining steps of the current word
  reg [3:0] alu_op;   // ALU operation select
  reg pc_wr;          // program-counter write strobe
  reg wr;             // SFR write strobe
  reg mem_act;        // memory activity strobe

  // Selected word: the new word when loading, the held word otherwise.
  wire loading = (status == 2'd0);
  wire [7:0] sel_word = loading ? op_in : op;
  wire [1:0] sel_step = loading ? 2'd0 : status;

  // Opcode group decode.
  wire [1:0] group = sel_word[7:6];
  wire [3:0] low = sel_word[3:0];

  wire [3:0] alu_next =
      (group == 2'd0) ? low :
      (group == 2'd1) ? ~low :
      (group == 2'd2) ? (low + {2'b00, sel_step}) :
      4'd0;
  wire pc_wr_next = (group == 2'd3) ? sel_word[4] : 1'b0;
  wire wr_next = sel_word[5] & ~sel_step[0];
  wire mem_act_next = (group == 2'd2) ? sel_word[0] : 1'b0;

  always @(posedge clk) begin
    if (!wait_data) begin
      if (loading) begin
        op <= op_in;
        status <= op_in[7:6];
      end
      else begin
        status <= status - 2'd1;
      end
      alu_op <= alu_next;
      pc_wr <= pc_wr_next;
      wr <= wr_next;
      mem_act <= mem_act_next;
    end
  end
endmodule
"#;

/// Parses the decoder RTL.
pub fn rtl() -> RtlModule {
    parse_verilog(RTL_SOURCE).expect("decoder RTL is valid")
}

/// The decoder refinement map (Fig. 5's left side).
pub fn refinement_maps() -> Vec<RefinementMap> {
    let mut m = RefinementMap::new("DECODER");
    m.map_state("current_word", "op");
    m.map_state("step", "status");
    m.map_state("alu_op", "alu_op");
    m.map_state("pc_wr", "pc_wr");
    m.map_state("wr_sfr", "wr");
    m.map_state("mem_act", "mem_act");
    m.map_input("wait", "wait_data");
    m.map_input("word_in", "op_in");
    vec![m]
}

/// The assembled case study (no documented bug for the decoder).
pub fn case_study() -> CaseStudy {
    CaseStudy {
        name: "Decoder",
        ila: ila(),
        rtl: rtl(),
        refmaps: refinement_maps(),
        buggy_rtl: None,
        ports_before_integration: 1,
        ports_after_integration: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::{decode_gap, decode_overlaps, PortSimulator};
    use gila_expr::{BitVecValue, Value};
    use gila_verify::{verify_port, VerifyOptions};

    #[test]
    fn five_atomic_instructions() {
        let p = port_ila();
        assert_eq!(p.num_atomic_instructions(), 5);
        assert_eq!(p.num_logical_instructions(), 2); // stall + process
        assert_eq!(p.arch_state_bits(), 4 + 1 + 1 + 1 + 8 + 2);
    }

    #[test]
    fn decode_is_complete_and_deterministic() {
        let p = port_ila();
        assert!(decode_gap(&p, None).is_none());
        assert!(decode_overlaps(&p, None).is_empty());
    }

    #[test]
    fn simulates_multi_step_word() {
        let p = port_ila();
        let mut sim = PortSimulator::new(&p);
        let mut ins = std::collections::BTreeMap::new();
        // Word 0b10_0001_01: group 2, 2 remaining steps.
        ins.insert("wait".into(), Value::Bv(BitVecValue::from_u64(0, 1)));
        ins.insert("word_in".into(), Value::Bv(BitVecValue::from_u64(0b1000_0101, 8)));
        assert_eq!(sim.step(&ins).unwrap(), "process_load");
        assert_eq!(sim.state()["step"].as_bv().to_u64(), 2);
        // Next steps ignore word_in.
        ins.insert("word_in".into(), Value::Bv(BitVecValue::from_u64(0xFF, 8)));
        assert_eq!(sim.step(&ins).unwrap(), "process_s2");
        assert_eq!(sim.step(&ins).unwrap(), "process_s1");
        assert_eq!(sim.state()["step"].as_bv().to_u64(), 0);
        assert_eq!(
            sim.state()["current_word"].as_bv().to_u64(),
            0b1000_0101
        );
        // Stall keeps everything.
        ins.insert("wait".into(), Value::Bv(BitVecValue::from_u64(1, 1)));
        assert_eq!(sim.step(&ins).unwrap(), "stall");
    }

    #[test]
    fn rtl_parses_and_validates() {
        let m = rtl();
        assert!(m.source_loc().unwrap() > 30);
        assert_eq!(m.state_bits(), 8 + 2 + 4 + 1 + 1 + 1);
        m.validate().unwrap();
    }

    #[test]
    fn verifies_against_rtl() {
        let p = port_ila();
        let report = verify_port(&p, &rtl(), &refinement_maps()[0], &VerifyOptions::default())
            .expect("well-formed setup");
        assert!(report.all_hold(), "{report:#?}");
        assert_eq!(report.verdicts.len(), 5);
    }
}
