//! The assembled 8051: decoder + datapath + memory interface
//! instantiated in one top-level netlist.
//!
//! The paper verifies the three modules separately ("we cover all the
//! modules from an open-source 8051 micro-controller"); this module goes
//! one step further and shows that the same per-module ILAs and
//! refinement maps also discharge against the modules *as instantiated
//! inside the flattened full-chip netlist* — the refinement maps only
//! need the instance prefix on their RTL side.

use gila_core::ModuleIla;
use gila_rtl::{parse_verilog_hierarchy, RtlModule};
use gila_verify::RefinementMap;

use super::{datapath, decoder, mem_iface};

/// The top-level netlist: every submodule input is a chip pin (the
/// module interconnect of the real 8051 — decoder driving the datapath
/// and memory interface — is exercised by the per-module ILAs; routing
/// the pins straight through keeps each port's command space fully
/// controllable, as modular verification requires).
fn top_source() -> String {
    format!(
        r#"
{decoder}

{datapath}

{mem_iface}

module i8051_top(clk,
                 wait_data, op_in,
                 alu_op_in, alu_b, data_cmd, data_addr, data_wdata,
                 rom_req, rom_addr_in, rom_data_valid, rom_data_in,
                 ram_req, ram_addr_in, ram_data_valid, ram_data_in,
                 instr_valid, instr_in, pc_imp, pc_target);
  input clk;
  input wait_data;
  input [7:0] op_in;
  input [3:0] alu_op_in;
  input [7:0] alu_b;
  input [1:0] data_cmd;
  input [7:0] data_addr;
  input [7:0] data_wdata;
  input rom_req;
  input [15:0] rom_addr_in;
  input rom_data_valid;
  input [7:0] rom_data_in;
  input ram_req;
  input [7:0] ram_addr_in;
  input ram_data_valid;
  input [7:0] ram_data_in;
  input instr_valid;
  input [7:0] instr_in;
  input pc_imp;
  input [15:0] pc_target;

  decoder u_dec (.wait_data(wait_data), .op_in(op_in));
  datapath u_dp (.alu_op_in(alu_op_in), .alu_b(alu_b),
                 .data_cmd(data_cmd), .data_addr(data_addr),
                 .data_wdata(data_wdata));
  mem_iface u_mem (.rom_req(rom_req), .rom_addr_in(rom_addr_in),
                   .rom_data_valid(rom_data_valid), .rom_data_in(rom_data_in),
                   .ram_req(ram_req), .ram_addr_in(ram_addr_in),
                   .ram_data_valid(ram_data_valid), .ram_data_in(ram_data_in),
                   .instr_valid(instr_valid), .instr_in(instr_in),
                   .pc_imp(pc_imp), .pc_target(pc_target));
endmodule
"#,
        decoder = decoder::RTL_SOURCE,
        datapath = datapath::RTL_SOURCE,
        mem_iface = mem_iface::RTL_SOURCE,
    )
}

/// Parses and flattens the full-chip netlist.
pub fn rtl() -> RtlModule {
    parse_verilog_hierarchy(&top_source(), "i8051_top").expect("top netlist is valid")
}

/// Prefixes the RTL side of a refinement map with an instance path.
fn prefix_map(mut map: RefinementMap, prefix: &str) -> RefinementMap {
    map.state_map = map
        .state_map
        .into_iter()
        .map(|(ila, rtl)| (ila, format!("{prefix}{rtl}")))
        .collect();
    map.interface_map = map
        .interface_map
        .into_iter()
        .map(|(ila, rtl)| (ila, format!("{prefix}{rtl}")))
        .collect();
    map.invariants = map
        .invariants
        .iter()
        .map(|inv| prefix_identifiers(inv, prefix))
        .collect();
    map
}

/// Best-effort identifier prefixing inside invariant expressions (the
/// bundled 8051 maps have none, but keep the transform total).
fn prefix_identifiers(expr: &str, prefix: &str) -> String {
    let mut out = String::new();
    let mut ident = String::new();
    for c in expr.chars().chain([' ']) {
        if c.is_ascii_alphanumeric() || c == '_' {
            ident.push(c);
        } else {
            if !ident.is_empty() {
                let keyword = ident.chars().next().expect("non-empty").is_ascii_digit();
                if keyword {
                    out.push_str(&ident);
                } else {
                    out.push_str(prefix);
                    out.push_str(&ident);
                }
                ident.clear();
            }
            out.push(c);
        }
    }
    out.trim_end().to_string()
}

/// The three module-ILAs and their prefixed refinement maps, ready to
/// verify against the flattened [`rtl`].
pub fn module_checks() -> Vec<(ModuleIla, Vec<RefinementMap>)> {
    vec![
        (
            decoder::ila(),
            decoder::refinement_maps()
                .into_iter()
                .map(|m| prefix_map(m, "u_dec__"))
                .collect(),
        ),
        (
            datapath::ila_abstracted(),
            datapath::refinement_maps()
                .into_iter()
                .map(|m| prefix_map(m, "u_dp__"))
                .collect(),
        ),
        (
            mem_iface::ila(),
            mem_iface::refinement_maps()
                .into_iter()
                .map(|m| prefix_map(m, "u_mem__"))
                .collect(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_verify::{abstract_rtl_memory, verify_module, VerifyOptions};

    #[test]
    fn top_flattens_with_all_submodule_state() {
        let m = rtl();
        assert!(m.find_reg("u_dec__op").is_some());
        assert!(m.find_reg("u_dp__acc").is_some());
        assert!(m.find_mem("u_dp__iram").is_some());
        assert!(m.find_reg("u_mem__mem_wait_r").is_some());
        m.validate().unwrap();
        // 17 bits decoder + 2074 datapath + 89 memory interface.
        assert_eq!(m.state_bits(), 17 + 2074 + 89);
    }

    #[test]
    fn every_module_ila_verifies_inside_the_flattened_chip() {
        // Abstract the datapath RAM inside the top for tractability
        // (matching the abstracted datapath ILA used in module_checks).
        let top = abstract_rtl_memory(&rtl(), "u_dp__iram", 4).expect("iram exists");
        let mut total = 0;
        for (ila, maps) in module_checks() {
            let report = verify_module(&ila, &top, &maps, &VerifyOptions::default())
                .unwrap_or_else(|e| panic!("{}: setup error {e}", ila.name()));
            assert!(report.all_hold(), "{}: {report:#?}", ila.name());
            total += report.instructions_checked();
        }
        // 5 (decoder) + 20 (datapath) + 12 (memory interface).
        assert_eq!(total, 37);
    }
}
