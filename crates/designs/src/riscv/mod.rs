//! The ridecore RISC-V store buffer.

pub mod store_buffer;
