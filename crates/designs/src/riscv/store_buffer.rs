//! The ridecore RISC-V store buffer (paper §V.C.2): a multi-port module
//! with shared state.
//!
//! Three command interfaces: the **in-port** pushes retired stores into
//! a circular 64-entry array, the **out-port** drains them toward the
//! data cache, and the **load-port** reads a buffered store back into
//! the pipeline (store-to-load forwarding). The in- and out-ports share
//! the `full` flag; per the specification, when both ports fire with a
//! full buffer the pop proceeds and the push is rejected, so the
//! out-port's flag update has priority — a [`PortPriorityResolver`].
//!
//! The documented bug (counterexample found in 0.61 s in the paper): the
//! implementation updates the flag with the *push side's* priority, so
//! with simultaneous traffic on a full buffer the flag stays set even
//! though the pop freed an entry.

use gila_core::{integrate, ModuleIla, PortIla, PortPriorityResolver, StateKind};
use gila_expr::Sort;
use gila_rtl::{parse_verilog, RtlModule};
use gila_verify::{abstract_port_memory, abstract_rtl_memory, RefinementMap};

use crate::registry::CaseStudy;

/// Buffer geometry: 64 entries of one byte (the paper's "64 byte memory").
const ADDR_WIDTH: u32 = 6;

/// Builds the in-port-ILA (2 atomic instructions).
pub fn in_port() -> PortIla {
    let mut p = PortIla::new("IN-PORT");
    let in_valid = p.input("in_valid", Sort::Bv(1));
    let in_data = p.input("in_data", Sort::Bv(8));
    let buf = p.state(
        "buf",
        Sort::Mem {
            addr_width: ADDR_WIDTH,
            data_width: 8,
        },
        StateKind::Internal,
    );
    let head = p.state("head", Sort::Bv(ADDR_WIDTH), StateKind::Internal);
    let tail = p.state("tail", Sort::Bv(ADDR_WIDTH), StateKind::Internal);
    let full = p.state("full", Sort::Bv(1), StateKind::Output);

    // IN_PUSH: append unless full.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(in_valid, 1);
        let is_full = ctx.eq_u64(full, 1);
        let one = ctx.bv_u64(1, ADDR_WIDTH);
        let next_tail = ctx.bvadd(tail, one);
        let written = ctx.mem_write(buf, tail, in_data);
        let new_buf = ctx.ite(is_full, buf, written);
        let new_tail = ctx.ite(is_full, tail, next_tail);
        // Full after a successful push iff the advanced tail catches the head.
        let wraps = ctx.eq(next_tail, head);
        let one1 = ctx.bv_u64(1, 1);
        let zero1 = ctx.bv_u64(0, 1);
        let wrap_bit = ctx.ite(wraps, one1, zero1);
        let new_full = ctx.ite(is_full, full, wrap_bit);
        p.instr("IN_PUSH")
            .decode(d)
            .update("buf", new_buf)
            .update("tail", new_tail)
            .update("full", new_full)
            .add()
            .expect("valid model");
    }
    // IN_NOP.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(in_valid, 0);
        p.instr("IN_NOP").decode(d).add().expect("valid model");
    }
    p
}

/// Builds the out-port-ILA (2 atomic instructions).
pub fn out_port() -> PortIla {
    let mut p = PortIla::new("OUT-PORT");
    let out_ready = p.input("out_ready", Sort::Bv(1));
    let buf = p.state(
        "buf",
        Sort::Mem {
            addr_width: ADDR_WIDTH,
            data_width: 8,
        },
        StateKind::Internal,
    );
    let head = p.state("head", Sort::Bv(ADDR_WIDTH), StateKind::Internal);
    let tail = p.state("tail", Sort::Bv(ADDR_WIDTH), StateKind::Internal);
    let full = p.state("full", Sort::Bv(1), StateKind::Output);
    p.state("out_data", Sort::Bv(8), StateKind::Output);

    // OUT_POP: drain the oldest entry unless empty.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(out_ready, 1);
        let heads_eq = ctx.eq(head, tail);
        let not_full = ctx.eq_u64(full, 0);
        let empty = ctx.and(heads_eq, not_full);
        let one = ctx.bv_u64(1, ADDR_WIDTH);
        let next_head = ctx.bvadd(head, one);
        let new_head = ctx.ite(empty, head, next_head);
        let zero1 = ctx.bv_u64(0, 1);
        let new_full = ctx.ite(empty, full, zero1);
        let front = ctx.mem_read(buf, head);
        let cur_out = ctx.find_var("out_data").expect("declared above");
        let new_out = ctx.ite(empty, cur_out, front);
        p.instr("OUT_POP")
            .decode(d)
            .update("head", new_head)
            .update("full", new_full)
            .update("out_data", new_out)
            .add()
            .expect("valid model");
    }
    // OUT_NOP.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(out_ready, 0);
        p.instr("OUT_NOP").decode(d).add().expect("valid model");
    }
    p
}

/// Builds the load-port-ILA (2 atomic instructions). It *reads* the
/// buffer array that the in/out port owns (read-only sharing).
pub fn load_port() -> PortIla {
    let mut p = PortIla::new("LOAD-PORT");
    let ld_valid = p.input("ld_valid", Sort::Bv(1));
    let ld_idx = p.input("ld_idx", Sort::Bv(ADDR_WIDTH), );
    let buf = p.state(
        "buf",
        Sort::Mem {
            addr_width: ADDR_WIDTH,
            data_width: 8,
        },
        StateKind::Internal,
    );
    p.state("ld_data", Sort::Bv(8), StateKind::Output);

    // LOAD_READ: forward a buffered store to the pipeline.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(ld_valid, 1);
        let r = ctx.mem_read(buf, ld_idx);
        p.instr("LOAD_READ")
            .decode(d)
            .update("ld_data", r)
            .add()
            .expect("valid model");
    }
    // LOAD_NOP.
    {
        let ctx = p.ctx_mut();
        let d = ctx.eq_u64(ld_valid, 0);
        p.instr("LOAD_NOP").decode(d).add().expect("valid model");
    }
    p
}

/// Integrates the in- and out-ports (they share `full`, `buf`, `head`,
/// `tail` declarations, with conflicting updates only on `full`): the
/// out-port's update wins, per the specification.
pub fn integrated_in_out_port() -> PortIla {
    let inp = in_port();
    let outp = out_port();
    let resolver = PortPriorityResolver::new(["OUT-PORT", "IN-PORT"]);
    integrate("IN-OUT-PORT", &[&inp, &outp], &resolver)
        .expect("the specification resolves all conflicts")
}

/// The store-buffer module-ILA: [IN-OUT-port, LOAD-port].
pub fn ila() -> ModuleIla {
    ModuleIla::compose("store_buffer", vec![integrated_in_out_port(), load_port()])
        .expect("remaining sharing is read-only")
}

/// The store-buffer module-ILA with the array abstracted to 16 entries.
pub fn ila_abstracted() -> ModuleIla {
    let io = abstract_port_memory(&integrated_in_out_port(), "buf", 4).expect("buf is a memory");
    let ld = abstract_port_memory(&load_port(), "buf", 4).expect("buf is a memory");
    ModuleIla::compose("store_buffer", vec![io, ld]).expect("remaining sharing is read-only")
}

fn rtl_source(buggy: bool) -> String {
    // The single difference: the priority order of the flag update when
    // push and pop fire together.
    let flag_update = if buggy {
        // BUG: the flag update keys on the raw push request instead of
        // the granted push and ignores the simultaneous pop, so with
        // traffic on both ports and a full buffer the flag stays set
        // even though the pop freed an entry.
        r#"
    if (in_valid) full <= (tail + 6'd1 == head) || full;
    else if (do_pop) full <= 1'b0;
"#
    } else {
        r#"
    if (do_pop) full <= 1'b0;
    else if (do_push) full <= (tail + 6'd1 == head);
"#
    };
    format!(
        r#"
// ridecore-style store buffer: circular array with store-to-load port.
module store_buffer(clk, in_valid, in_data, out_ready, ld_valid, ld_idx);
  input clk;
  input in_valid;
  input [7:0] in_data;
  input out_ready;
  input ld_valid;
  input [5:0] ld_idx;

  reg [7:0] buffer [0:63];
  reg [5:0] head;
  reg [5:0] tail;
  reg full;
  reg [7:0] out_data_r;
  reg [7:0] ld_data_r;

  wire empty = (head == tail) && !full;
  wire do_push = in_valid && !full;
  wire do_pop = out_ready && !empty;

  always @(posedge clk) begin
    if (do_push) begin
      buffer[tail] <= in_data;
      tail <= tail + 6'd1;
    end
    if (do_pop) begin
      out_data_r <= buffer[head];
      head <= head + 6'd1;
    end
{flag_update}
  end

  always @(posedge clk) begin
    if (ld_valid) ld_data_r <= buffer[ld_idx];
  end
endmodule
"#
    )
}

/// The fixed store-buffer RTL.
pub fn rtl() -> RtlModule {
    parse_verilog(&rtl_source(false)).expect("store buffer RTL is valid")
}

/// The bug-injected store-buffer RTL.
pub fn buggy_rtl() -> RtlModule {
    parse_verilog(&rtl_source(true)).expect("buggy store buffer RTL is valid")
}

/// The fixed RTL with the array abstracted to 16 entries.
pub fn rtl_abstracted() -> RtlModule {
    abstract_rtl_memory(&rtl(), "buffer", 4).expect("buffer is a memory")
}

/// Refinement maps for the integrated in/out port and the load port.
pub fn refinement_maps() -> Vec<RefinementMap> {
    let mut io = RefinementMap::new("IN-OUT-PORT");
    io.map_state("buf", "buffer");
    io.map_state("head", "head");
    io.map_state("tail", "tail");
    io.map_state("full", "full");
    io.map_state("out_data", "out_data_r");
    io.map_input("in_valid", "in_valid");
    io.map_input("in_data", "in_data");
    io.map_input("out_ready", "out_ready");

    let mut ld = RefinementMap::new("LOAD-PORT");
    ld.map_state("buf", "buffer");
    ld.map_state("ld_data", "ld_data_r");
    ld.map_input("ld_valid", "ld_valid");
    ld.map_input("ld_idx", "ld_idx");
    // The in/out port may rewrite `buffer` in the same cycle; the load
    // port only anchors its pre-state on it.
    ld.mark_unchecked("buf");
    // A concurrent push must not overwrite the entry being loaded before
    // the load captures it; the RTL reads the pre-write array because
    // non-blocking writes land after the read, so no extra constraint is
    // needed — but the push changes `buffer` for the *post* check, which
    // `mark_unchecked` excludes.
    vec![io, ld]
}

/// The assembled case study (full-size array).
pub fn case_study() -> CaseStudy {
    CaseStudy {
        name: "Store Buffer",
        ila: ila(),
        rtl: rtl(),
        refmaps: refinement_maps(),
        buggy_rtl: Some(buggy_rtl()),
        ports_before_integration: 3,
        ports_after_integration: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::{decode_gap, decode_overlaps};
    use gila_verify::{verify_module, CheckResult, VerifyOptions};

    #[test]
    fn six_atomic_instructions() {
        let m = ila();
        assert_eq!(m.stats().ports, 2);
        assert_eq!(m.stats().instructions, 6);
        let io = integrated_in_out_port();
        assert_eq!(io.num_atomic_instructions(), 4);
        assert!(io.find_instruction("IN_PUSH & OUT_POP").is_some());
    }

    #[test]
    fn decodes_are_well_formed() {
        for p in [integrated_in_out_port(), load_port()] {
            assert!(decode_gap(&p, None).is_none(), "{} incomplete", p.name());
            assert!(
                decode_overlaps(&p, None).is_empty(),
                "{} nondeterministic",
                p.name()
            );
        }
    }

    #[test]
    fn verifies_abstracted() {
        let report = verify_module(
            &ila_abstracted(),
            &rtl_abstracted(),
            &refinement_maps(),
            &VerifyOptions::default(),
        )
        .expect("well-formed");
        assert!(report.all_hold(), "{report:#?}");
        assert_eq!(report.instructions_checked(), 6);
    }

    #[test]
    fn bug_appears_only_under_simultaneous_traffic_on_full_buffer() {
        let buggy = abstract_rtl_memory(&buggy_rtl(), "buffer", 4).expect("memory");
        let report = verify_module(
            &ila_abstracted(),
            &buggy,
            &refinement_maps(),
            &VerifyOptions::default(),
        )
        .expect("well-formed");
        assert!(!report.all_hold());
        let v = report.ports[0]
            .first_counterexample()
            .expect("bug in the in/out port");
        assert_eq!(v.instruction, "IN_PUSH & OUT_POP");
        let CheckResult::CounterExample(cex) = &v.result else {
            panic!()
        };
        assert!(cex.mismatched_states.contains(&"full".to_string()));
        // All single-port instructions of the in/out port still verify —
        // the bug needs traffic on both ports, as the paper describes.
        for v in &report.ports[0].verdicts {
            if v.instruction != "IN_PUSH & OUT_POP" {
                assert!(v.result.holds(), "{} unexpectedly fails", v.instruction);
            }
        }
    }
}
