//! The case-study registry: one entry per design of Table I.

use gila_core::ModuleIla;
use gila_rtl::RtlModule;
use gila_verify::RefinementMap;

/// A complete case study: specification, implementation, refinement
/// maps, and (when the paper reports one) a bug-injected implementation
/// variant reproducing the documented bug mechanism.
#[derive(Clone, Debug)]
pub struct CaseStudy {
    /// Display name matching Table I's "Design" column.
    pub name: &'static str,
    /// The module-ILA specification.
    pub ila: ModuleIla,
    /// The (fixed) RTL implementation.
    pub rtl: RtlModule,
    /// One refinement map per port (matched by name).
    pub refmaps: Vec<RefinementMap>,
    /// The bug-injected RTL variant, if this design has a documented bug.
    pub buggy_rtl: Option<RtlModule>,
    /// Number of command ports before integrating shared-state ports.
    pub ports_before_integration: usize,
    /// Number of independent ports after integration (= `ila.ports()`).
    pub ports_after_integration: usize,
}

impl CaseStudy {
    /// The Table I "# of ports" cell: `before` or `before/after` when
    /// integration reduced the count.
    pub fn ports_cell(&self) -> String {
        if self.ports_before_integration == self.ports_after_integration {
            format!("{}", self.ports_before_integration)
        } else {
            format!(
                "{}/{}",
                self.ports_before_integration, self.ports_after_integration
            )
        }
    }
}

/// Builds all eight case studies, in Table I order.
pub fn all_case_studies() -> Vec<CaseStudy> {
    vec![
        crate::i8051::decoder::case_study(),
        crate::axi::slave::case_study(),
        crate::axi::master::case_study(),
        crate::i8051::datapath::case_study(),
        crate::openpiton::l2_cache::case_study(),
        crate::i8051::mem_iface::case_study(),
        crate::riscv::store_buffer::case_study(),
        crate::openpiton::noc_router::case_study(),
    ]
}
