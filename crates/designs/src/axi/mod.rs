//! The Epiphany eLink AXI master and slave communication modules.

pub mod master;
pub mod slave;
