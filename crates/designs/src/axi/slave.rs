//! The AXI slave (paper §III-B, Fig. 2): a multi-port module *without*
//! shared state. The READ-port and WRITE-port accept read and write
//! requests independently and simultaneously.
//!
//! Modeled after the Epiphany eLink AXI slave: each port latches a
//! transaction (address/length/burst) on a handshake, then streams data
//! beats. READ has 4 atomic instructions, WRITE has 5 — Table I's "9".
//!
//! The documented bug (found in 0.01 s in the paper) is in the READ
//! port: the `rd_data` update must use the *architectural state*
//! `tx_rd_burst` latched at address commit, but the buggy implementation
//! uses the live input `rd_burst_in`.

use gila_core::{ModuleIla, PortIla, StateKind};
use gila_expr::Sort;
use gila_rtl::{parse_verilog, RtlModule};
use gila_verify::RefinementMap;

use crate::registry::CaseStudy;

/// Builds the READ-port-ILA (Fig. 2 top).
pub fn read_port() -> PortIla {
    let mut p = PortIla::new("READ-PORT");
    let rd_addr_valid = p.input("rd_addr_valid", Sort::Bv(1));
    let rd_addr_in = p.input("rd_addr_in", Sort::Bv(8));
    let rd_length_in = p.input("rd_length_in", Sort::Bv(4));
    let rd_burst_in = p.input("rd_burst_in", Sort::Bv(2));
    let rd_data_ready = p.input("rd_data_ready", Sort::Bv(1));
    // Output states.
    let rd_addr_ready = p.state("rd_addr_ready", Sort::Bv(1), StateKind::Output);
    p.state("rd_data", Sort::Bv(8), StateKind::Output);
    p.state("rd_data_valid", Sort::Bv(1), StateKind::Output);
    // Other states (the latched transaction).
    let tx_rd_active = p.state("tx_rd_active", Sort::Bv(1), StateKind::Internal);
    let tx_rd_addr = p.state("tx_rd_addr", Sort::Bv(8), StateKind::Internal);
    let tx_rd_length = p.state("tx_rd_length", Sort::Bv(4), StateKind::Internal);
    let tx_rd_burst = p.state("tx_rd_burst", Sort::Bv(2), StateKind::Internal);

    // i0 RD_ADDR_WAIT: idle, no request.
    {
        let ctx = p.ctx_mut();
        let idle = ctx.eq_u64(tx_rd_active, 0);
        let noreq = ctx.eq_u64(rd_addr_valid, 0);
        let d = ctx.and(idle, noreq);
        let one = ctx.bv_u64(1, 1);
        let _ = one;
        let rdy = ctx.bv_u64(1, 1);
        p.instr("RD_ADDR_WAIT")
            .decode(d)
            .update("rd_addr_ready", rdy)
            .add()
            .expect("valid model");
    }
    // i1 RD_ADDR_COMMIT: latch the transaction.
    {
        let ctx = p.ctx_mut();
        let idle = ctx.eq_u64(tx_rd_active, 0);
        let req = ctx.eq_u64(rd_addr_valid, 1);
        let d = ctx.and(idle, req);
        let zero = ctx.bv_u64(0, 1);
        let one = ctx.bv_u64(1, 1);
        p.instr("RD_ADDR_COMMIT")
            .decode(d)
            .update("rd_addr_ready", zero)
            .update("tx_rd_active", one)
            .update("tx_rd_addr", rd_addr_in)
            .update("tx_rd_length", rd_length_in)
            .update("tx_rd_burst", rd_burst_in)
            .add()
            .expect("valid model");
    }
    // i1-s0 RD_DATA_PREPARE: present the next data beat. The data is a
    // function of the *latched* address and burst mode.
    {
        let ctx = p.ctx_mut();
        let active = ctx.eq_u64(tx_rd_active, 1);
        let notready = ctx.eq_u64(rd_data_ready, 0);
        let d = ctx.and(active, notready);
        let burst8 = ctx.zext(tx_rd_burst, 8);
        let data = ctx.bvadd(tx_rd_addr, burst8);
        let one = ctx.bv_u64(1, 1);
        p.sub_instr("RD_DATA_PREPARE", "RD_ADDR_COMMIT")
            .decode(d)
            .update("rd_data", data)
            .update("rd_data_valid", one)
            .add()
            .expect("valid model");
    }
    // i1-s1 RD_DATA_COMMIT: the consumer took a beat; advance or finish.
    {
        let ctx = p.ctx_mut();
        let active = ctx.eq_u64(tx_rd_active, 1);
        let ready = ctx.eq_u64(rd_data_ready, 1);
        let d = ctx.and(active, ready);
        // Burst address increment: 2^burst (1, 2 or 4), saturating at 4.
        let one8 = ctx.bv_u64(1, 8);
        let burst8 = ctx.zext(tx_rd_burst, 8);
        let incr = ctx.bvshl(one8, burst8);
        let next_addr = ctx.bvadd(tx_rd_addr, incr);
        let last = ctx.eq_u64(tx_rd_length, 0);
        let one4 = ctx.bv_u64(1, 4);
        let dec = ctx.bvsub(tx_rd_length, one4);
        let zero1 = ctx.bv_u64(0, 1);
        let one1 = ctx.bv_u64(1, 1);
        let next_active = ctx.ite(last, zero1, one1);
        // On the last beat the address channel re-opens; otherwise the
        // ready signal keeps its (low) mid-transaction value.
        let next_ready = ctx.ite(last, one1, rd_addr_ready);
        let next_len = ctx.ite(last, tx_rd_length, dec);
        p.sub_instr("RD_DATA_COMMIT", "RD_ADDR_COMMIT")
            .decode(d)
            .update("tx_rd_addr", next_addr)
            .update("tx_rd_length", next_len)
            .update("tx_rd_active", next_active)
            .update("rd_addr_ready", next_ready)
            .update("rd_data_valid", zero1)
            .add()
            .expect("valid model");
    }
    p
}

/// Builds the WRITE-port-ILA (Fig. 2 bottom).
pub fn write_port() -> PortIla {
    let mut p = PortIla::new("WRITE-PORT");
    let wr_addr_valid = p.input("wr_addr_valid", Sort::Bv(1));
    let wr_addr_in = p.input("wr_addr_in", Sort::Bv(8));
    let wr_length_in = p.input("wr_length_in", Sort::Bv(4));
    let wr_data_in = p.input("wr_data_in", Sort::Bv(8));
    let wr_data_valid = p.input("wr_data_valid", Sort::Bv(1));
    // Output states.
    p.state("wr_addr_ready", Sort::Bv(1), StateKind::Output);
    p.state("wr_data_ready", Sort::Bv(1), StateKind::Output);
    // Other states.
    let tx_wr_active = p.state("tx_wr_active", Sort::Bv(1), StateKind::Internal);
    let tx_wr_addr = p.state("tx_wr_addr", Sort::Bv(8), StateKind::Internal);
    let tx_wr_length = p.state("tx_wr_length", Sort::Bv(4), StateKind::Internal);
    let tx_wr_data = p.state("tx_wr_data", Sort::Bv(8), StateKind::Internal);
    let _ = tx_wr_data;

    // i0 WR_ADDR_WAIT.
    {
        let ctx = p.ctx_mut();
        let idle = ctx.eq_u64(tx_wr_active, 0);
        let noreq = ctx.eq_u64(wr_addr_valid, 0);
        let d = ctx.and(idle, noreq);
        let one = ctx.bv_u64(1, 1);
        p.instr("WR_ADDR_WAIT")
            .decode(d)
            .update("wr_addr_ready", one)
            .add()
            .expect("valid model");
    }
    // i1 WR_ADDR_COMMIT.
    {
        let ctx = p.ctx_mut();
        let idle = ctx.eq_u64(tx_wr_active, 0);
        let req = ctx.eq_u64(wr_addr_valid, 1);
        let d = ctx.and(idle, req);
        let zero = ctx.bv_u64(0, 1);
        let one = ctx.bv_u64(1, 1);
        p.instr("WR_ADDR_COMMIT")
            .decode(d)
            .update("wr_addr_ready", zero)
            .update("tx_wr_active", one)
            .update("tx_wr_addr", wr_addr_in)
            .update("tx_wr_length", wr_length_in)
            .update("wr_data_ready", one)
            .add()
            .expect("valid model");
    }
    // i1-s0 WR_DATA_PREPARE: waiting for a data beat.
    {
        let ctx = p.ctx_mut();
        let active = ctx.eq_u64(tx_wr_active, 1);
        let more = {
            let z = ctx.bv_u64(0, 4);
            ctx.ne(tx_wr_length, z)
        };
        let nodata = ctx.eq_u64(wr_data_valid, 0);
        let d0 = ctx.and(active, more);
        let d = ctx.and(d0, nodata);
        let one = ctx.bv_u64(1, 1);
        p.sub_instr("WR_DATA_PREPARE", "WR_ADDR_COMMIT")
            .decode(d)
            .update("wr_data_ready", one)
            .add()
            .expect("valid model");
    }
    // i1-s1 WR_DATA_COMMIT: accept a data beat.
    {
        let ctx = p.ctx_mut();
        let active = ctx.eq_u64(tx_wr_active, 1);
        let more = {
            let z = ctx.bv_u64(0, 4);
            ctx.ne(tx_wr_length, z)
        };
        let data = ctx.eq_u64(wr_data_valid, 1);
        let d0 = ctx.and(active, more);
        let d = ctx.and(d0, data);
        let one8 = ctx.bv_u64(1, 8);
        let next_addr = ctx.bvadd(tx_wr_addr, one8);
        let one4 = ctx.bv_u64(1, 4);
        let dec = ctx.bvsub(tx_wr_length, one4);
        p.sub_instr("WR_DATA_COMMIT", "WR_ADDR_COMMIT")
            .decode(d)
            .update("tx_wr_addr", next_addr)
            .update("tx_wr_length", dec)
            .update("tx_wr_data", wr_data_in)
            .add()
            .expect("valid model");
    }
    // i1-s2 WR_LAST_RESPONSE: all beats consumed; issue the response.
    {
        let ctx = p.ctx_mut();
        let active = ctx.eq_u64(tx_wr_active, 1);
        let donelen = ctx.eq_u64(tx_wr_length, 0);
        let d = ctx.and(active, donelen);
        let zero = ctx.bv_u64(0, 1);
        let one = ctx.bv_u64(1, 1);
        p.sub_instr("WR_LAST_RESPONSE", "WR_ADDR_COMMIT")
            .decode(d)
            .update("wr_addr_ready", one)
            .update("tx_wr_active", zero)
            .update("wr_data_ready", zero)
            .add()
            .expect("valid model");
    }
    p
}

/// The AXI slave module-ILA: independent READ and WRITE ports.
pub fn ila() -> ModuleIla {
    ModuleIla::compose("axi_slave", vec![read_port(), write_port()])
        .expect("ports are independent")
}

fn rtl_source(buggy: bool) -> String {
    // The single difference between fixed and buggy RTL: which burst
    // value feeds the read-data computation.
    let burst = if buggy { "rd_burst_in" } else { "tx_rd_burst" };
    format!(
        r#"
// eLink-style AXI slave: independent read and write channels.
module axi_slave(clk,
                 rd_addr_valid, rd_addr_in, rd_length_in, rd_burst_in, rd_data_ready,
                 wr_addr_valid, wr_addr_in, wr_length_in, wr_data_in, wr_data_valid);
  input clk;
  input rd_addr_valid;
  input [7:0] rd_addr_in;
  input [3:0] rd_length_in;
  input [1:0] rd_burst_in;
  input rd_data_ready;
  input wr_addr_valid;
  input [7:0] wr_addr_in;
  input [3:0] wr_length_in;
  input [7:0] wr_data_in;
  input wr_data_valid;

  // read channel registers
  reg rd_addr_ready_r;
  reg [7:0] rd_data_r;
  reg rd_data_valid_r;
  reg tx_rd_active;
  reg [7:0] tx_rd_addr;
  reg [3:0] tx_rd_length;
  reg [1:0] tx_rd_burst;

  // write channel registers
  reg wr_addr_ready_r;
  reg wr_data_ready_r;
  reg tx_wr_active;
  reg [7:0] tx_wr_addr;
  reg [3:0] tx_wr_length;
  reg [7:0] tx_wr_data;

  wire [7:0] rd_incr = 8'd1 << {{6'b0, tx_rd_burst}};

  always @(posedge clk) begin
    if (!tx_rd_active) begin
      if (rd_addr_valid) begin
        rd_addr_ready_r <= 1'b0;
        tx_rd_active <= 1'b1;
        tx_rd_addr <= rd_addr_in;
        tx_rd_length <= rd_length_in;
        tx_rd_burst <= rd_burst_in;
      end
      else begin
        rd_addr_ready_r <= 1'b1;
      end
    end
    else begin
      if (!rd_data_ready) begin
        rd_data_r <= tx_rd_addr + {{6'b0, {burst}}};
        rd_data_valid_r <= 1'b1;
      end
      else begin
        tx_rd_addr <= tx_rd_addr + rd_incr;
        rd_data_valid_r <= 1'b0;
        if (tx_rd_length == 4'd0) begin
          tx_rd_active <= 1'b0;
          rd_addr_ready_r <= 1'b1;
        end
        else begin
          tx_rd_length <= tx_rd_length - 4'd1;
        end
      end
    end
  end

  always @(posedge clk) begin
    if (!tx_wr_active) begin
      if (wr_addr_valid) begin
        wr_addr_ready_r <= 1'b0;
        tx_wr_active <= 1'b1;
        tx_wr_addr <= wr_addr_in;
        tx_wr_length <= wr_length_in;
        wr_data_ready_r <= 1'b1;
      end
      else begin
        wr_addr_ready_r <= 1'b1;
      end
    end
    else begin
      if (tx_wr_length == 4'd0) begin
        wr_addr_ready_r <= 1'b1;
        tx_wr_active <= 1'b0;
        wr_data_ready_r <= 1'b0;
      end
      else begin
        if (wr_data_valid) begin
          tx_wr_addr <= tx_wr_addr + 8'd1;
          tx_wr_length <= tx_wr_length - 4'd1;
          tx_wr_data <= wr_data_in;
        end
        else begin
          wr_data_ready_r <= 1'b1;
        end
      end
    end
  end
endmodule
"#
    )
}

/// The fixed AXI slave RTL.
pub fn rtl() -> RtlModule {
    parse_verilog(&rtl_source(false)).expect("axi slave RTL is valid")
}

/// The bug-injected AXI slave RTL (READ port uses `rd_burst_in` instead
/// of `tx_rd_burst` in the data computation).
pub fn buggy_rtl() -> RtlModule {
    parse_verilog(&rtl_source(true)).expect("buggy axi slave RTL is valid")
}

/// Refinement maps for both ports.
pub fn refinement_maps() -> Vec<RefinementMap> {
    let mut rd = RefinementMap::new("READ-PORT");
    rd.map_state("rd_addr_ready", "rd_addr_ready_r");
    rd.map_state("rd_data", "rd_data_r");
    rd.map_state("rd_data_valid", "rd_data_valid_r");
    rd.map_state("tx_rd_active", "tx_rd_active");
    rd.map_state("tx_rd_addr", "tx_rd_addr");
    rd.map_state("tx_rd_length", "tx_rd_length");
    rd.map_state("tx_rd_burst", "tx_rd_burst");
    rd.map_input("rd_addr_valid", "rd_addr_valid");
    rd.map_input("rd_addr_in", "rd_addr_in");
    rd.map_input("rd_length_in", "rd_length_in");
    rd.map_input("rd_burst_in", "rd_burst_in");
    rd.map_input("rd_data_ready", "rd_data_ready");

    let mut wr = RefinementMap::new("WRITE-PORT");
    wr.map_state("wr_addr_ready", "wr_addr_ready_r");
    wr.map_state("wr_data_ready", "wr_data_ready_r");
    wr.map_state("tx_wr_active", "tx_wr_active");
    wr.map_state("tx_wr_addr", "tx_wr_addr");
    wr.map_state("tx_wr_length", "tx_wr_length");
    wr.map_state("tx_wr_data", "tx_wr_data");
    wr.map_input("wr_addr_valid", "wr_addr_valid");
    wr.map_input("wr_addr_in", "wr_addr_in");
    wr.map_input("wr_length_in", "wr_length_in");
    wr.map_input("wr_data_in", "wr_data_in");
    wr.map_input("wr_data_valid", "wr_data_valid");
    vec![rd, wr]
}

/// The assembled case study.
pub fn case_study() -> CaseStudy {
    CaseStudy {
        name: "AXI Slave",
        ila: ila(),
        rtl: rtl(),
        refmaps: refinement_maps(),
        buggy_rtl: Some(buggy_rtl()),
        ports_before_integration: 2,
        ports_after_integration: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::{decode_gap, decode_overlaps};
    use gila_verify::{verify_module, CheckResult, VerifyOptions};

    #[test]
    fn nine_atomic_instructions() {
        let m = ila();
        assert_eq!(m.stats().instructions, 9);
        assert_eq!(m.stats().ports, 2);
    }

    #[test]
    fn decodes_are_well_formed() {
        for p in [read_port(), write_port()] {
            assert!(decode_gap(&p, None).is_none(), "{} incomplete", p.name());
            assert!(
                decode_overlaps(&p, None).is_empty(),
                "{} nondeterministic",
                p.name()
            );
        }
    }

    #[test]
    fn fixed_rtl_verifies() {
        let report = verify_module(&ila(), &rtl(), &refinement_maps(), &VerifyOptions::default())
            .expect("well-formed");
        assert!(report.all_hold(), "{report:#?}");
        assert_eq!(report.instructions_checked(), 9);
    }

    #[test]
    fn bug_found_in_read_port_data_prepare() {
        let report = verify_module(
            &ila(),
            &buggy_rtl(),
            &refinement_maps(),
            &VerifyOptions::default(),
        )
        .expect("well-formed");
        assert!(!report.all_hold());
        let rd = &report.ports[0];
        let v = rd.first_counterexample().expect("bug in READ port");
        assert_eq!(v.instruction, "RD_DATA_PREPARE");
        let CheckResult::CounterExample(cex) = &v.result else {
            panic!()
        };
        assert_eq!(cex.mismatched_states, vec!["rd_data".to_string()]);
        // In the counterexample, the live burst input must differ from the
        // latched one (that is what the bug exposes).
        assert_ne!(
            cex.rtl_inputs[0]["rd_burst_in"].as_bv().to_u64(),
            cex.rtl_start_state["tx_rd_burst"].as_bv().to_u64()
        );
        // The WRITE port is unaffected.
        assert!(report.ports[1].all_hold());
    }
}
