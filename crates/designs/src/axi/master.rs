//! The AXI master (paper §V.B.2): receives read/write requests from a
//! host, translates them into AXI-protocol handshakes toward a slave,
//! and returns data/completion to the host.
//!
//! Two independent ports: READ (5 atomic instructions) and WRITE (6) —
//! Table I's "11".

use gila_core::{ModuleIla, PortIla, StateKind};
use gila_expr::Sort;
use gila_rtl::{parse_verilog, RtlModule};
use gila_verify::RefinementMap;

use crate::registry::CaseStudy;

/// Builds the master's READ-port-ILA.
pub fn read_port() -> PortIla {
    let mut p = PortIla::new("READ-PORT");
    let host_rd_req = p.input("host_rd_req", Sort::Bv(1));
    let host_rd_addr = p.input("host_rd_addr", Sort::Bv(8));
    let host_rd_len = p.input("host_rd_len", Sort::Bv(4));
    let s_rd_addr_ready = p.input("s_rd_addr_ready", Sort::Bv(1));
    let s_rd_data = p.input("s_rd_data", Sort::Bv(8));
    let s_rd_data_valid = p.input("s_rd_data_valid", Sort::Bv(1));
    // Output states (toward slave and host).
    p.state("m_rd_addr_valid", Sort::Bv(1), StateKind::Output);
    p.state("m_rd_addr", Sort::Bv(8), StateKind::Output);
    p.state("m_rd_len", Sort::Bv(4), StateKind::Output);
    p.state("host_rd_data", Sort::Bv(8), StateKind::Output);
    p.state("host_rd_data_valid", Sort::Bv(1), StateKind::Output);
    // Other states.
    let busy = p.state("m_rd_busy", Sort::Bv(1), StateKind::Internal);
    let issued = p.state("m_rd_issued", Sort::Bv(1), StateKind::Internal);

    // RD_IDLE: no transaction, no request.
    {
        let ctx = p.ctx_mut();
        let b0 = ctx.eq_u64(busy, 0);
        let r0 = ctx.eq_u64(host_rd_req, 0);
        let d = ctx.and(b0, r0);
        let zero = ctx.bv_u64(0, 1);
        p.instr("RD_IDLE")
            .decode(d)
            .update("m_rd_addr_valid", zero)
            .update("host_rd_data_valid", zero)
            .add()
            .expect("valid model");
    }
    // RD_ISSUE: accept a host request and raise the AXI address channel.
    {
        let ctx = p.ctx_mut();
        let b0 = ctx.eq_u64(busy, 0);
        let r1 = ctx.eq_u64(host_rd_req, 1);
        let d = ctx.and(b0, r1);
        let one = ctx.bv_u64(1, 1);
        let zero = ctx.bv_u64(0, 1);
        p.instr("RD_ISSUE")
            .decode(d)
            .update("m_rd_busy", one)
            .update("m_rd_issued", zero)
            .update("m_rd_addr", host_rd_addr)
            .update("m_rd_len", host_rd_len)
            .update("m_rd_addr_valid", one)
            .update("host_rd_data_valid", zero)
            .add()
            .expect("valid model");
    }
    // RD_GRANT: the slave accepted the address.
    {
        let ctx = p.ctx_mut();
        let b1 = ctx.eq_u64(busy, 1);
        let i0 = ctx.eq_u64(issued, 0);
        let rdy = ctx.eq_u64(s_rd_addr_ready, 1);
        let d0 = ctx.and(b1, i0);
        let d = ctx.and(d0, rdy);
        let one = ctx.bv_u64(1, 1);
        let zero = ctx.bv_u64(0, 1);
        p.sub_instr("RD_GRANT", "RD_ISSUE")
            .decode(d)
            .update("m_rd_issued", one)
            .update("m_rd_addr_valid", zero)
            .add()
            .expect("valid model");
    }
    // RD_WAIT: nothing to do this cycle.
    {
        let ctx = p.ctx_mut();
        let b1 = ctx.eq_u64(busy, 1);
        let i0 = ctx.eq_u64(issued, 0);
        let nrdy = ctx.eq_u64(s_rd_addr_ready, 0);
        let w_addr = ctx.and(i0, nrdy);
        let i1 = ctx.eq_u64(issued, 1);
        let nval = ctx.eq_u64(s_rd_data_valid, 0);
        let w_data = ctx.and(i1, nval);
        let w = ctx.or(w_addr, w_data);
        let d = ctx.and(b1, w);
        p.sub_instr("RD_WAIT", "RD_ISSUE")
            .decode(d)
            .add()
            .expect("valid model");
    }
    // RD_CAPTURE: data arrived; forward it to the host.
    {
        let ctx = p.ctx_mut();
        let b1 = ctx.eq_u64(busy, 1);
        let i1 = ctx.eq_u64(issued, 1);
        let val = ctx.eq_u64(s_rd_data_valid, 1);
        let d0 = ctx.and(b1, i1);
        let d = ctx.and(d0, val);
        let one = ctx.bv_u64(1, 1);
        let zero = ctx.bv_u64(0, 1);
        p.sub_instr("RD_CAPTURE", "RD_ISSUE")
            .decode(d)
            .update("host_rd_data", s_rd_data)
            .update("host_rd_data_valid", one)
            .update("m_rd_busy", zero)
            .add()
            .expect("valid model");
    }
    p
}

/// Builds the master's WRITE-port-ILA: a four-phase (idle, address,
/// data, response) transaction engine.
pub fn write_port() -> PortIla {
    let mut p = PortIla::new("WRITE-PORT");
    let host_wr_req = p.input("host_wr_req", Sort::Bv(1));
    let host_wr_addr = p.input("host_wr_addr", Sort::Bv(8));
    let host_wr_data = p.input("host_wr_data", Sort::Bv(8));
    let s_wr_addr_ready = p.input("s_wr_addr_ready", Sort::Bv(1));
    let s_wr_data_ready = p.input("s_wr_data_ready", Sort::Bv(1));
    let s_wr_resp_valid = p.input("s_wr_resp_valid", Sort::Bv(1));
    p.state("m_wr_addr_valid", Sort::Bv(1), StateKind::Output);
    p.state("m_wr_addr", Sort::Bv(8), StateKind::Output);
    p.state("m_wr_data", Sort::Bv(8), StateKind::Output);
    p.state("m_wr_data_valid", Sort::Bv(1), StateKind::Output);
    p.state("host_wr_done", Sort::Bv(1), StateKind::Output);
    let phase = p.state("wr_phase", Sort::Bv(2), StateKind::Internal);

    // WR_IDLE.
    {
        let ctx = p.ctx_mut();
        let p0 = ctx.eq_u64(phase, 0);
        let r0 = ctx.eq_u64(host_wr_req, 0);
        let d = ctx.and(p0, r0);
        let zero = ctx.bv_u64(0, 1);
        p.instr("WR_IDLE")
            .decode(d)
            .update("host_wr_done", zero)
            .add()
            .expect("valid model");
    }
    // WR_ISSUE.
    {
        let ctx = p.ctx_mut();
        let p0 = ctx.eq_u64(phase, 0);
        let r1 = ctx.eq_u64(host_wr_req, 1);
        let d = ctx.and(p0, r1);
        let one2 = ctx.bv_u64(1, 2);
        let one = ctx.bv_u64(1, 1);
        let zero = ctx.bv_u64(0, 1);
        p.instr("WR_ISSUE")
            .decode(d)
            .update("wr_phase", one2)
            .update("m_wr_addr", host_wr_addr)
            .update("m_wr_data", host_wr_data)
            .update("m_wr_addr_valid", one)
            .update("host_wr_done", zero)
            .add()
            .expect("valid model");
    }
    // WR_ADDR_ACK.
    {
        let ctx = p.ctx_mut();
        let p1 = ctx.eq_u64(phase, 1);
        let rdy = ctx.eq_u64(s_wr_addr_ready, 1);
        let d = ctx.and(p1, rdy);
        let two2 = ctx.bv_u64(2, 2);
        let one = ctx.bv_u64(1, 1);
        let zero = ctx.bv_u64(0, 1);
        p.sub_instr("WR_ADDR_ACK", "WR_ISSUE")
            .decode(d)
            .update("wr_phase", two2)
            .update("m_wr_addr_valid", zero)
            .update("m_wr_data_valid", one)
            .add()
            .expect("valid model");
    }
    // WR_DATA_ACK.
    {
        let ctx = p.ctx_mut();
        let p2 = ctx.eq_u64(phase, 2);
        let rdy = ctx.eq_u64(s_wr_data_ready, 1);
        let d = ctx.and(p2, rdy);
        let three2 = ctx.bv_u64(3, 2);
        let zero = ctx.bv_u64(0, 1);
        p.sub_instr("WR_DATA_ACK", "WR_ISSUE")
            .decode(d)
            .update("wr_phase", three2)
            .update("m_wr_data_valid", zero)
            .add()
            .expect("valid model");
    }
    // WR_RESP.
    {
        let ctx = p.ctx_mut();
        let p3 = ctx.eq_u64(phase, 3);
        let val = ctx.eq_u64(s_wr_resp_valid, 1);
        let d = ctx.and(p3, val);
        let zero2 = ctx.bv_u64(0, 2);
        let one = ctx.bv_u64(1, 1);
        p.sub_instr("WR_RESP", "WR_ISSUE")
            .decode(d)
            .update("wr_phase", zero2)
            .update("host_wr_done", one)
            .add()
            .expect("valid model");
    }
    // WR_WAIT: handshake pending in any phase.
    {
        let ctx = p.ctx_mut();
        let p1 = ctx.eq_u64(phase, 1);
        let nrdy = ctx.eq_u64(s_wr_addr_ready, 0);
        let w1 = ctx.and(p1, nrdy);
        let p2 = ctx.eq_u64(phase, 2);
        let nrdy2 = ctx.eq_u64(s_wr_data_ready, 0);
        let w2 = ctx.and(p2, nrdy2);
        let p3 = ctx.eq_u64(phase, 3);
        let nval = ctx.eq_u64(s_wr_resp_valid, 0);
        let w3 = ctx.and(p3, nval);
        let w12 = ctx.or(w1, w2);
        let d = ctx.or(w12, w3);
        p.sub_instr("WR_WAIT", "WR_ISSUE")
            .decode(d)
            .add()
            .expect("valid model");
    }
    p
}

/// The AXI master module-ILA.
pub fn ila() -> ModuleIla {
    ModuleIla::compose("axi_master", vec![read_port(), write_port()])
        .expect("ports are independent")
}

/// The AXI master RTL.
pub const RTL_SOURCE: &str = r#"
// eLink-style AXI master: host requests -> AXI handshakes.
module axi_master(clk,
                  host_rd_req, host_rd_addr, host_rd_len,
                  s_rd_addr_ready, s_rd_data, s_rd_data_valid,
                  host_wr_req, host_wr_addr, host_wr_data,
                  s_wr_addr_ready, s_wr_data_ready, s_wr_resp_valid);
  input clk;
  input host_rd_req;
  input [7:0] host_rd_addr;
  input [3:0] host_rd_len;
  input s_rd_addr_ready;
  input [7:0] s_rd_data;
  input s_rd_data_valid;
  input host_wr_req;
  input [7:0] host_wr_addr;
  input [7:0] host_wr_data;
  input s_wr_addr_ready;
  input s_wr_data_ready;
  input s_wr_resp_valid;

  // read engine
  reg m_rd_addr_valid;
  reg [7:0] m_rd_addr;
  reg [3:0] m_rd_len;
  reg [7:0] host_rd_data_r;
  reg host_rd_data_valid_r;
  reg m_rd_busy;
  reg m_rd_issued;

  // write engine
  reg m_wr_addr_valid;
  reg [7:0] m_wr_addr;
  reg [7:0] m_wr_data;
  reg m_wr_data_valid;
  reg host_wr_done_r;
  reg [1:0] wr_phase;

  always @(posedge clk) begin
    if (!m_rd_busy) begin
      if (host_rd_req) begin
        m_rd_busy <= 1'b1;
        m_rd_issued <= 1'b0;
        m_rd_addr <= host_rd_addr;
        m_rd_len <= host_rd_len;
        m_rd_addr_valid <= 1'b1;
        host_rd_data_valid_r <= 1'b0;
      end
      else begin
        m_rd_addr_valid <= 1'b0;
        host_rd_data_valid_r <= 1'b0;
      end
    end
    else begin
      if (!m_rd_issued) begin
        if (s_rd_addr_ready) begin
          m_rd_issued <= 1'b1;
          m_rd_addr_valid <= 1'b0;
        end
      end
      else begin
        if (s_rd_data_valid) begin
          host_rd_data_r <= s_rd_data;
          host_rd_data_valid_r <= 1'b1;
          m_rd_busy <= 1'b0;
        end
      end
    end
  end

  always @(posedge clk) begin
    case (wr_phase)
      2'd0: begin
        if (host_wr_req) begin
          wr_phase <= 2'd1;
          m_wr_addr <= host_wr_addr;
          m_wr_data <= host_wr_data;
          m_wr_addr_valid <= 1'b1;
          host_wr_done_r <= 1'b0;
        end
        else begin
          host_wr_done_r <= 1'b0;
        end
      end
      2'd1: begin
        if (s_wr_addr_ready) begin
          wr_phase <= 2'd2;
          m_wr_addr_valid <= 1'b0;
          m_wr_data_valid <= 1'b1;
        end
      end
      2'd2: begin
        if (s_wr_data_ready) begin
          wr_phase <= 2'd3;
          m_wr_data_valid <= 1'b0;
        end
      end
      default: begin
        if (s_wr_resp_valid) begin
          wr_phase <= 2'd0;
          host_wr_done_r <= 1'b1;
        end
      end
    endcase
  end
endmodule
"#;

/// Parses the master RTL.
pub fn rtl() -> RtlModule {
    parse_verilog(RTL_SOURCE).expect("axi master RTL is valid")
}

/// Refinement maps for both ports.
pub fn refinement_maps() -> Vec<RefinementMap> {
    let mut rd = RefinementMap::new("READ-PORT");
    rd.map_state("m_rd_addr_valid", "m_rd_addr_valid");
    rd.map_state("m_rd_addr", "m_rd_addr");
    rd.map_state("m_rd_len", "m_rd_len");
    rd.map_state("host_rd_data", "host_rd_data_r");
    rd.map_state("host_rd_data_valid", "host_rd_data_valid_r");
    rd.map_state("m_rd_busy", "m_rd_busy");
    rd.map_state("m_rd_issued", "m_rd_issued");
    rd.map_input("host_rd_req", "host_rd_req");
    rd.map_input("host_rd_addr", "host_rd_addr");
    rd.map_input("host_rd_len", "host_rd_len");
    rd.map_input("s_rd_addr_ready", "s_rd_addr_ready");
    rd.map_input("s_rd_data", "s_rd_data");
    rd.map_input("s_rd_data_valid", "s_rd_data_valid");

    let mut wr = RefinementMap::new("WRITE-PORT");
    wr.map_state("m_wr_addr_valid", "m_wr_addr_valid");
    wr.map_state("m_wr_addr", "m_wr_addr");
    wr.map_state("m_wr_data", "m_wr_data");
    wr.map_state("m_wr_data_valid", "m_wr_data_valid");
    wr.map_state("host_wr_done", "host_wr_done_r");
    wr.map_state("wr_phase", "wr_phase");
    wr.map_input("host_wr_req", "host_wr_req");
    wr.map_input("host_wr_addr", "host_wr_addr");
    wr.map_input("host_wr_data", "host_wr_data");
    wr.map_input("s_wr_addr_ready", "s_wr_addr_ready");
    wr.map_input("s_wr_data_ready", "s_wr_data_ready");
    wr.map_input("s_wr_resp_valid", "s_wr_resp_valid");
    vec![rd, wr]
}

/// The assembled case study (no documented bug for the master).
pub fn case_study() -> CaseStudy {
    CaseStudy {
        name: "AXI Master",
        ila: ila(),
        rtl: rtl(),
        refmaps: refinement_maps(),
        buggy_rtl: None,
        ports_before_integration: 2,
        ports_after_integration: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::{decode_gap, decode_overlaps};
    use gila_verify::{verify_module, VerifyOptions};

    #[test]
    fn eleven_atomic_instructions() {
        let m = ila();
        assert_eq!(m.stats().instructions, 11);
    }

    #[test]
    fn decodes_are_well_formed() {
        for p in [read_port(), write_port()] {
            assert!(decode_gap(&p, None).is_none(), "{} incomplete", p.name());
            assert!(
                decode_overlaps(&p, None).is_empty(),
                "{} nondeterministic",
                p.name()
            );
        }
    }

    #[test]
    fn verifies_against_rtl() {
        let report = verify_module(&ila(), &rtl(), &refinement_maps(), &VerifyOptions::default())
            .expect("well-formed");
        assert!(report.all_hold(), "{report:#?}");
        assert_eq!(report.instructions_checked(), 11);
    }
}
