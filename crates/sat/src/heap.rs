//! An indexed max-heap ordering variables by VSIDS activity.

use crate::lit::Var;

/// A binary max-heap of variables keyed by an external activity array,
/// supporting O(log n) increase-key (after an activity bump) and removal.
#[derive(Clone, Debug, Default)]
pub struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    positions: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures capacity for variables up to `n - 1`.
    pub fn grow(&mut self, n: usize) {
        if self.positions.len() < n {
            self.positions.resize(n, ABSENT);
        }
    }

    /// True if the heap contains no variables.
    #[allow(dead_code)] // used by tests and kept for API symmetry
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of queued variables.
    #[allow(dead_code)] // used by tests and kept for API symmetry
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if `v` is queued.
    pub fn contains(&self, v: Var) -> bool {
        self.positions
            .get(v.index())
            .is_some_and(|&p| p != ABSENT)
    }

    /// Inserts `v` if absent.
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.grow(v.index() + 1);
        if self.contains(v) {
            return;
        }
        self.positions[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with the highest activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.positions[top.index()] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order for `v` after its activity increased.
    pub fn update(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.positions.get(v.index()) {
            if p != ABSENT {
                self.sift_up(p, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index()] <= activity[self.heap[parent].index()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l].index()] > activity[self.heap[best].index()]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r].index()] > activity[self.heap[best].index()]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.positions[self.heap[a].index()] = a;
        self.positions[self.heap[b].index()] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut h = VarHeap::new();
        for i in 0..5 {
            h.insert(Var(i), &activity);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop(&activity)).map(|v| v.0).collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn update_after_bump() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = VarHeap::new();
        for i in 0..3 {
            h.insert(Var(i), &activity);
        }
        activity[0] = 10.0;
        h.update(Var(0), &activity);
        assert_eq!(h.pop(&activity), Some(Var(0)));
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0];
        let mut h = VarHeap::new();
        h.insert(Var(0), &activity);
        h.insert(Var(0), &activity);
        assert_eq!(h.len(), 1);
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        /// One randomized workload step: insert a variable, pop the
        /// maximum, or bump a variable's activity (increase-key, the
        /// only direction VSIDS ever moves between rescales — rescaling
        /// scales all activities uniformly and preserves order).
        #[derive(Clone, Debug)]
        enum Step {
            Insert(u32),
            Pop,
            Bump(u32, u32),
        }

        fn step() -> impl Strategy<Value = Step> {
            prop_oneof![
                (0u32..12).prop_map(Step::Insert),
                Just(Step::Pop),
                (0u32..12, 1u32..1000).prop_map(|(v, by)| Step::Bump(v, by)),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Against a naive reference model: after any workload of
            /// inserts, pops, and increase-key bumps, every pop returns
            /// exactly the queued variable of maximal activity, and
            /// membership matches the model throughout.
            #[test]
            fn matches_reference_model(
                seed in proptest::collection::vec(0u32..12, 0..6),
                steps in proptest::collection::vec(step(), 1..40),
            ) {
                let mut activity = vec![0.0f64; 12];
                for (i, a) in activity.iter_mut().enumerate() {
                    *a = i as f64;
                }
                let mut h = VarHeap::new();
                let mut model: Vec<u32> = Vec::new();
                for v in seed {
                    h.insert(Var(v), &activity);
                    if !model.contains(&v) {
                        model.push(v);
                    }
                }
                for s in steps {
                    match s {
                        Step::Insert(v) => {
                            h.insert(Var(v), &activity);
                            if !model.contains(&v) {
                                model.push(v);
                            }
                        }
                        Step::Pop => match h.pop(&activity) {
                            None => prop_assert!(model.is_empty()),
                            Some(v) => {
                                // Any queued variable of maximal
                                // activity is a correct answer (bumps
                                // can create ties).
                                prop_assert!(model.contains(&v.0));
                                let max = model
                                    .iter()
                                    .map(|&m| activity[m as usize])
                                    .fold(f64::NEG_INFINITY, f64::max);
                                prop_assert_eq!(activity[v.index()], max);
                                model.retain(|&m| m != v.0);
                            }
                        },
                        Step::Bump(v, by) => {
                            // Increase-key only.
                            activity[v as usize] += by as f64;
                            h.update(Var(v), &activity);
                        }
                    }
                    for v in 0..12u32 {
                        prop_assert_eq!(h.contains(Var(v)), model.contains(&v));
                    }
                }
                // Drain: the heap empties in non-increasing activity
                // order.
                let mut last = f64::INFINITY;
                while let Some(v) = h.pop(&activity) {
                    prop_assert!(activity[v.index()] <= last);
                    last = activity[v.index()];
                    model.retain(|&m| m != v.0);
                }
                prop_assert!(model.is_empty());
                prop_assert!(h.is_empty());
            }
        }
    }
}
