//! A CDCL (conflict-driven clause learning) SAT solver.
//!
//! The architecture follows MiniSat: two-watched-literal propagation,
//! first-UIP conflict analysis, VSIDS branching with phase saving, Luby
//! restarts, and activity/LBD-guided learnt-clause database reduction.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::heap::VarHeap;
use crate::inprocess::{InprocessConfig, InprocessStats};
use crate::lit::{LBool, Lit, Var};

/// Reference to a clause in the solver's arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ClauseRef(u32);

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
    lbd: u32,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Why a solve call gave up before reaching a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResourceOut {
    /// The per-call conflict budget was exceeded.
    Conflicts,
    /// The per-call propagation budget was exceeded.
    Propagations,
    /// The wall-clock deadline passed.
    Deadline,
    /// The shared [`CancelToken`] was triggered.
    Cancelled,
}

impl ResourceOut {
    /// Stable lower-case name for reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            ResourceOut::Conflicts => "conflicts",
            ResourceOut::Propagations => "propagations",
            ResourceOut::Deadline => "deadline",
            ResourceOut::Cancelled => "cancelled",
        }
    }
}

/// Per-call resource budgets for [`Solver::solve_with_assumptions`].
///
/// Every field is a *maximum allowed* amount of that resource for one
/// solve call; exceeding it makes the call return
/// [`SolveResult::Unknown`] with the limit that fired. `None` fields
/// are unlimited. Limits are sticky on the solver ([`Solver::set_limits`])
/// and measured per call, so an incremental solver can run many bounded
/// queries without re-arming.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveLimits {
    /// Maximum conflicts this call may analyze.
    pub conflicts: Option<u64>,
    /// Maximum literals this call may propagate.
    pub propagations: Option<u64>,
    /// Wall-clock instant after which the call gives up.
    pub deadline: Option<Instant>,
}

impl SolveLimits {
    /// True when no limit is set (the solver runs unbounded).
    pub fn is_unbounded(&self) -> bool {
        self.conflicts.is_none() && self.propagations.is_none() && self.deadline.is_none()
    }
}

/// A shared cooperative cancellation flag.
///
/// Clones share the flag; any holder may [`cancel`](CancelToken::cancel)
/// and every solver carrying a clone aborts its in-flight call with
/// [`SolveResult::Unknown`]`(`[`ResourceOut::Cancelled`]`)` at the next
/// check point. The flag stays set until [`reset`](CancelToken::reset).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation of every solver sharing this token.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](CancelToken::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Clears the flag so the token can be reused.
    pub fn reset(&self) {
        self.0.store(false, Ordering::Relaxed);
    }
}

/// Outcome of a satisfiability query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// The formula (plus assumptions) is satisfiable; a model is available.
    Sat,
    /// The formula (plus assumptions) is unsatisfiable.
    Unsat,
    /// The call gave up: a resource limit fired or it was cancelled.
    /// The formula's status is undetermined and the solver remains
    /// usable (learnt clauses are kept).
    Unknown(ResourceOut),
}

impl SolveResult {
    /// True for [`SolveResult::Sat`].
    pub fn is_sat(self) -> bool {
        matches!(self, SolveResult::Sat)
    }

    /// True for [`SolveResult::Unknown`].
    pub fn is_unknown(self) -> bool {
        matches!(self, SolveResult::Unknown(_))
    }
}

/// Counters describing solver effort; useful for benchmark reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts analyzed.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Peak number of clauses (original + learnt) ever held.
    pub peak_clauses: u64,
}

impl SolverStats {
    /// Component-wise effort spent since `earlier` was captured.
    /// Gauges (`learnt_clauses`, `peak_clauses`) keep their current
    /// value rather than a difference; counters subtract saturating.
    pub fn since(&self, earlier: SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learnt_clauses: self.learnt_clauses,
            peak_clauses: self.peak_clauses,
        }
    }
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use gila_sat::{Lit, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause([a.positive(), b.positive()]);
/// s.add_clause([a.negative()]);
/// assert!(s.solve().is_sat());
/// assert_eq!(s.value(a), Some(false));
/// assert_eq!(s.value(b), Some(true));
/// s.add_clause([b.negative()]);
/// assert!(!s.solve().is_sat());
/// ```
#[derive(Clone, Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    activity: Vec<f64>,
    order: VarHeap,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    ok: bool,
    var_inc: f64,
    cla_inc: f64,
    model: Vec<LBool>,
    stats: SolverStats,
    last_solve_mark: SolverStats,
    seen: Vec<bool>,
    learnt_count: usize,
    max_learnts: f64,
    limits: SolveLimits,
    cancel: Option<CancelToken>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            activity: Vec::new(),
            order: VarHeap::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            ok: true,
            var_inc: 1.0,
            cla_inc: 1.0,
            model: Vec::new(),
            stats: SolverStats::default(),
            last_solve_mark: SolverStats::default(),
            seen: Vec::new(),
            learnt_count: 0,
            max_learnts: 4000.0,
            limits: SolveLimits::default(),
            cancel: None,
        }
    }

    /// Installs per-call resource limits; they apply to every subsequent
    /// solve call until replaced. `SolveLimits::default()` removes them.
    pub fn set_limits(&mut self, limits: SolveLimits) {
        self.limits = limits;
    }

    /// The currently installed limits.
    pub fn limits(&self) -> SolveLimits {
        self.limits
    }

    /// Installs a shared cancellation token checked during solving.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (original + learnt, excluding deleted).
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Effort counters.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Effort spent by the most recent `solve`/`solve_with_assumptions`
    /// call alone (counters are deltas; gauges are current values).
    pub fn last_solve_stats(&self) -> SolverStats {
        self.stats.since(self.last_solve_mark)
    }

    /// Adds a clause; returns `false` if the solver is already in an
    /// unsatisfiable state (the clause made the formula trivially false
    /// at level 0 or a previous contradiction was found).
    ///
    /// Clauses may be added between `solve` calls (incremental use).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) -> bool {
        self.add_clause_with(lits, false)
    }

    fn add_clause_with(&mut self, lits: impl IntoIterator<Item = Lit>, learnt: bool) -> bool {
        if !self.ok {
            return false;
        }
        self.cancel_until(0);
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort_unstable();
        lits.dedup();
        // Tautology / level-0 simplification.
        let mut simplified = Vec::with_capacity(lits.len());
        let mut prev: Option<Lit> = None;
        for &l in &lits {
            if prev == Some(!l) {
                return true; // tautology: contains l and !l (sorted adjacently)
            }
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => simplified.push(l),
            }
            prev = Some(l);
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let len = simplified.len();
                let cref = self.attach_new_clause(simplified, learnt);
                if learnt {
                    // Imported/redundant clauses must stay deletable:
                    // a pessimistic literal-count LBD keeps them behind
                    // the solver's own glue clauses in `reduce_db`.
                    self.clauses[cref.0 as usize].lbd = len as u32;
                    self.stats.learnt_clauses = self.learnt_count as u64;
                }
                true
            }
        }
    }

    /// Copies out the learnt clauses currently in the database whose
    /// length is at most `len_cap`, literals verbatim (deleted clauses
    /// are skipped). Intended for clause sharing between solvers working
    /// on the same CNF: short learnt clauses are the high-value ones,
    /// and the cap bounds the copy.
    pub fn export_learnts(&self, len_cap: usize) -> Vec<Vec<Lit>> {
        self.clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted && c.lits.len() <= len_cap)
            .map(|c| c.lits.clone())
            .collect()
    }

    /// Imports clauses previously exported from another solver over the
    /// same variable numbering (see [`Solver::export_learnts`]). Each
    /// clause is added as a *learnt* (redundant) clause, so the clause-DB
    /// reduction policy may later drop it again. Clauses mentioning a
    /// variable this solver has not allocated are skipped — they cannot
    /// refer to anything here. Returns the number of clauses accepted.
    ///
    /// # Soundness
    ///
    /// The caller must guarantee every imported clause is implied by this
    /// solver's own clause set (e.g. both solvers extend one shared CNF
    /// prefix and the clause was learnt from — and only mentions — that
    /// prefix). Importing an unimplied clause makes results meaningless.
    pub fn import_clauses<'a, I>(&mut self, clauses: I) -> usize
    where
        I: IntoIterator<Item = &'a [Lit]>,
    {
        let mut imported = 0;
        for clause in clauses {
            if !self.ok {
                break;
            }
            if clause
                .iter()
                .any(|l| l.var().index() >= self.assigns.len())
            {
                continue;
            }
            self.add_clause_with(clause.iter().copied(), true);
            imported += 1;
        }
        imported
    }

    fn attach_new_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = ClauseRef(self.clauses.len() as u32);
        let w0 = Watcher {
            cref,
            blocker: lits[1],
        };
        let w1 = Watcher {
            cref,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).index()].push(w0);
        self.watches[(!lits[1]).index()].push(w1);
        if learnt {
            self.learnt_count += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd: 0,
        });
        self.stats.peak_clauses = self.stats.peak_clauses.max(self.clauses.len() as u64);
        cref
    }

    fn lit_value(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var();
        self.assigns[v.index()] = LBool::from_bool(l.is_positive());
        self.polarity[v.index()] = l.is_positive();
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = from;
        self.trail.push(l);
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let keep = self.trail_lim[level as usize];
        for i in (keep..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assigns[v.index()] = LBool::Undef;
            self.reason[v.index()] = None;
            self.order.insert(v, &self.activity);
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(level as usize);
        self.qhead = keep;
    }

    /// Unit propagation; returns a conflicting clause if one is found.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            let mut j = 0;
            // take the watch list to satisfy the borrow checker
            let mut ws = std::mem::take(&mut self.watches[p.index()]);
            let mut conflict: Option<ClauseRef> = None;
            'watches: while i < ws.len() {
                let w = ws[i];
                // Blocker check: if the blocker is true the clause is satisfied.
                if self.lit_value(w.blocker) == LBool::True {
                    ws[j] = w;
                    i += 1;
                    j += 1;
                    continue;
                }
                let cref = w.cref;
                // Make sure the false literal is lits[1].
                let false_lit = !p;
                {
                    let c = &mut self.clauses[cref.0 as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[cref.0 as usize].lits[0];
                let new_w = Watcher {
                    cref,
                    blocker: first,
                };
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[j] = new_w;
                    i += 1;
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cref.0 as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref.0 as usize].lits[k];
                    if self.lit_value(lk) != LBool::False {
                        self.clauses[cref.0 as usize].lits.swap(1, k);
                        self.watches[(!lk).index()].push(new_w);
                        i += 1;
                        continue 'watches;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[j] = new_w;
                i += 1;
                j += 1;
                if self.lit_value(first) == LBool::False {
                    // Conflict: copy the rest of the watchers back.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        i += 1;
                        j += 1;
                    }
                    conflict = Some(cref);
                } else {
                    self.unchecked_enqueue(first, Some(cref));
                }
            }
            ws.truncate(j);
            self.watches[p.index()] = ws;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref.0 as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis.
    ///
    /// Returns the learnt clause (asserting literal first) and the level
    /// to backtrack to.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the asserting literal
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        loop {
            if self.clauses[confl.0 as usize].learnt {
                self.bump_clause(confl);
            }
            let start = if p.is_some() { 1 } else { 0 };
            let lits = self.clauses[confl.0 as usize].lits.clone();
            for &q in &lits[start..] {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal on the trail to resolve on.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let pl = self.trail[idx];
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !pl;
                break;
            }
            p = Some(pl);
            confl = self.reason[pl.var().index()].expect("non-decision literal has a reason");
        }
        // Conflict-clause minimization: drop literals implied by the rest.
        let mut minimized = vec![learnt[0]];
        for &l in &learnt[1..] {
            if !self.is_redundant(l) {
                minimized.push(l);
            }
        }
        let mut learnt = minimized;
        // Clear seen flags.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        // (Some seen flags may remain set from dropped literals; clear via trail scan.)
        for i in 0..self.trail.len() {
            self.seen[self.trail[i].var().index()] = false;
        }
        // Find backtrack level: highest level among learnt[1..].
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt_level)
    }

    /// Local minimization: `l` is redundant if every literal of its reason
    /// clause is already in the learnt clause (seen) or at level 0.
    fn is_redundant(&self, l: Lit) -> bool {
        match self.reason[l.var().index()] {
            None => false,
            Some(cref) => self.clauses[cref.0 as usize].lits[1..].iter().all(|&q| {
                self.seen[q.var().index()] || self.level[q.var().index()] == 0
            }),
        }
    }

    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(Lit::new(v, self.polarity[v.index()]));
            }
        }
        None
    }

    fn reduce_db(&mut self) {
        // Collect learnt, non-reason clauses, sort worst-first, delete half.
        let mut candidates: Vec<ClauseRef> = Vec::new();
        for (i, c) in self.clauses.iter().enumerate() {
            if !c.learnt || c.deleted || c.lits.len() <= 2 {
                continue;
            }
            let cref = ClauseRef(i as u32);
            let locked = self.reason[c.lits[0].var().index()] == Some(cref)
                && self.lit_value(c.lits[0]) == LBool::True;
            if !locked {
                candidates.push(cref);
            }
        }
        candidates.sort_by(|&a, &b| {
            let ca = &self.clauses[a.0 as usize];
            let cb = &self.clauses[b.0 as usize];
            cb.lbd
                .cmp(&ca.lbd)
                .then(ca.activity.partial_cmp(&cb.activity).unwrap_or(std::cmp::Ordering::Equal))
        });
        let n_delete = candidates.len() / 2;
        for &cref in candidates.iter().take(n_delete) {
            self.delete_clause(cref);
        }
    }

    fn delete_clause(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let c = &self.clauses[cref.0 as usize];
            (c.lits[0], c.lits[1])
        };
        self.watches[(!l0).index()].retain(|w| w.cref != cref);
        self.watches[(!l1).index()].retain(|w| w.cref != cref);
        let c = &mut self.clauses[cref.0 as usize];
        c.deleted = true;
        c.lits.clear();
        c.lits.shrink_to_fit();
        self.learnt_count -= 1;
    }

    /// Solves the current formula.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Abandons the current call: undoes all decisions so the solver
    /// stays reusable (learnt clauses are kept) and reports why.
    fn give_up(&mut self, reason: ResourceOut) -> SolveResult {
        self.cancel_until(0);
        self.stats.learnt_clauses = self.learnt_count as u64;
        SolveResult::Unknown(reason)
    }

    /// Whether the solver is already out of wall-clock resources —
    /// cancelled, or past its deadline — *before* any new work starts.
    /// Callers that do expensive encoding ahead of a solve (bit-blasting
    /// in `gila-smt`) probe this to skip the encoding entirely: the
    /// solve could only report the same `Unknown`.
    pub fn resources_exhausted(&self) -> Option<ResourceOut> {
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return Some(ResourceOut::Cancelled);
            }
        }
        if let Some(deadline) = self.limits.deadline {
            if Instant::now() >= deadline {
                return Some(ResourceOut::Deadline);
            }
        }
        None
    }

    /// The limit violated by this call's effort so far, if any.
    /// `check_clock` gates the (comparatively costly) deadline read.
    fn budget_exceeded(&self, check_clock: bool) -> Option<ResourceOut> {
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return Some(ResourceOut::Cancelled);
            }
        }
        let spent = self.stats.since(self.last_solve_mark);
        if let Some(max) = self.limits.conflicts {
            if spent.conflicts > max {
                return Some(ResourceOut::Conflicts);
            }
        }
        if let Some(max) = self.limits.propagations {
            if spent.propagations > max {
                return Some(ResourceOut::Propagations);
            }
        }
        if check_clock {
            if let Some(deadline) = self.limits.deadline {
                if Instant::now() >= deadline {
                    return Some(ResourceOut::Deadline);
                }
            }
        }
        None
    }

    /// Solves under the given assumption literals. The assumptions hold
    /// only for this call; learned clauses are kept for later calls.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.last_solve_mark = self.stats;
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.cancel_until(0);
        if let Some(out) = self.budget_exceeded(true) {
            return self.give_up(out);
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let mut luby_index = 0u64;
        let mut conflicts_until_restart = 64 * luby(luby_index);
        let mut conflicts_this_restart = 0u64;
        let mut iters = 0u64;
        loop {
            // Cooperative cancellation and budgets: cheap counter
            // comparisons every iteration; the wall clock only every 64
            // iterations so unbounded solving stays syscall-free.
            iters += 1;
            if let Some(out) = self.budget_exceeded(iters.is_multiple_of(64)) {
                return self.give_up(out);
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_restart += 1;
                if self.decision_level() == 0 {
                    // A level-0 conflict is a definitive Unsat; letting
                    // the budget pre-empt it would leave the falsified
                    // clause unexamined on later calls.
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                if let Some(max) = self.limits.conflicts {
                    if self.stats.since(self.last_solve_mark).conflicts > max {
                        return self.give_up(ResourceOut::Conflicts);
                    }
                }
                let (learnt, bt_level) = self.analyze(confl);
                // If the conflict is rooted entirely in assumption levels we
                // may still backtrack into them; re-deciding the assumptions
                // below detects genuine assumption failure.
                self.cancel_until(bt_level);
                if learnt.len() == 1 {
                    if self.lit_value(learnt[0]) != LBool::Undef {
                        // Asserting literal already decided (can only happen
                        // under conflicting assumptions).
                        return SolveResult::Unsat;
                    }
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let lbd = self.compute_lbd(&learnt);
                    let asserting = learnt[0];
                    let cref = self.attach_new_clause(learnt, true);
                    self.clauses[cref.0 as usize].lbd = lbd;
                    if self.lit_value(asserting) != LBool::Undef {
                        return SolveResult::Unsat;
                    }
                    self.unchecked_enqueue(asserting, Some(cref));
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if self.learnt_count as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
            } else {
                if conflicts_this_restart >= conflicts_until_restart
                    && self.decision_level() > assumptions.len() as u32
                {
                    self.stats.restarts += 1;
                    luby_index += 1;
                    conflicts_until_restart = 64 * luby(luby_index);
                    conflicts_this_restart = 0;
                    self.cancel_until(assumptions.len() as u32);
                    continue;
                }
                // Decide the next assumption, if any remain.
                let mut next: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.lit_value(p) {
                        LBool::True => self.new_decision_level(),
                        LBool::False => return SolveResult::Unsat,
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                let next = match next {
                    Some(p) => p,
                    None => match self.pick_branch() {
                        Some(p) => {
                            self.stats.decisions += 1;
                            p
                        }
                        None => {
                            self.model = self.assigns.clone();
                            self.stats.learnt_clauses = self.learnt_count as u64;
                            self.cancel_until(0);
                            return SolveResult::Sat;
                        }
                    },
                };
                self.new_decision_level();
                self.unchecked_enqueue(next, None);
            }
        }
    }

    /// Runs one bounded inprocessing pass over the permanent clause
    /// database; see [`InprocessConfig`] for the phases and their
    /// budgets. Must be called between solve calls (the solver is at
    /// decision level 0 then); a call at a deeper level is a no-op.
    ///
    /// Every simplification is a consequence of the permanent clauses
    /// alone, so the result is correct under any future assumptions —
    /// the contract incremental callers (activation-literal scopes,
    /// `solve_with_assumptions`) rely on. The installed
    /// [`SolveLimits::deadline`] and [`CancelToken`] are honoured: the
    /// pass stops early (consistently — watches rebuilt, no partial
    /// clause left behind) when either fires. Effort spent here is
    /// *not* charged to the next solve call's budget, which snapshots
    /// its counters at entry.
    pub fn inprocess(&mut self, cfg: &InprocessConfig) -> InprocessStats {
        let mut st = InprocessStats::default();
        if !self.ok || self.decision_level() != 0 {
            return st;
        }
        // Reach the level-0 propagation fixpoint on valid watches first.
        if self.propagate().is_some() {
            self.ok = false;
            return st;
        }
        // Level-0 assignments are permanent and never re-analyzed, so
        // their reasons can be dropped — that unlocks deleting reason
        // clauses that are now satisfied.
        for i in 0..self.trail.len() {
            let v = self.trail[i].var();
            self.reason[v.index()] = None;
        }
        loop {
            let mut units = self.inprocess_cleanup(&mut st);
            if self.ok && st.subsumption_checks < cfg.subsumption_checks {
                self.inprocess_subsume(cfg, &mut st, &mut units);
            }
            self.rebuild_watches();
            if !self.ok {
                return st;
            }
            let progress = !units.is_empty();
            for u in units {
                match self.lit_value(u) {
                    LBool::True => {}
                    LBool::False => {
                        self.ok = false;
                        return st;
                    }
                    LBool::Undef => self.unchecked_enqueue(u, None),
                }
            }
            if self.propagate().is_some() {
                self.ok = false;
                return st;
            }
            if !progress || self.inprocess_interrupted() {
                break;
            }
        }
        self.inprocess_probe(cfg, &mut st);
        self.stats.learnt_clauses = self.learnt_count as u64;
        st
    }

    /// Deadline/cancellation check for the inprocessing phases.
    fn inprocess_interrupted(&self) -> bool {
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return true;
            }
        }
        if let Some(deadline) = self.limits.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    /// Marks a clause deleted without touching the watch lists (the
    /// caller rebuilds them); adjusts the learnt count.
    fn inprocess_delete(&mut self, i: usize) {
        let c = &mut self.clauses[i];
        debug_assert!(!c.deleted);
        if c.learnt {
            self.learnt_count -= 1;
        }
        c.deleted = true;
        c.lits.clear();
        c.lits.shrink_to_fit();
    }

    /// Phase 1: delete level-0-satisfied clauses, strip level-0 false
    /// literals, and collect clauses that became unit.
    fn inprocess_cleanup(&mut self, st: &mut InprocessStats) -> Vec<Lit> {
        let mut units = Vec::new();
        for i in 0..self.clauses.len() {
            if self.clauses[i].deleted {
                continue;
            }
            let satisfied = self.clauses[i]
                .lits
                .iter()
                .any(|&l| self.lit_value(l) == LBool::True);
            if satisfied {
                st.clauses_satisfied += 1;
                self.inprocess_delete(i);
                continue;
            }
            let before = self.clauses[i].lits.len();
            let kept: Vec<Lit> = self.clauses[i]
                .lits
                .iter()
                .copied()
                .filter(|&l| self.lit_value(l) != LBool::False)
                .collect();
            if kept.len() != before {
                st.lits_removed += (before - kept.len()) as u64;
                self.clauses[i].lits = kept;
            }
            match self.clauses[i].lits.len() {
                0 => {
                    // Every literal false at level 0: the formula is
                    // unsatisfiable.
                    self.ok = false;
                    return units;
                }
                1 => {
                    units.push(self.clauses[i].lits[0]);
                    self.inprocess_delete(i);
                }
                _ => {}
            }
        }
        units
    }

    /// Phase 2: bounded subsumption and self-subsuming resolution over
    /// occurrence lists.
    fn inprocess_subsume(
        &mut self,
        cfg: &InprocessConfig,
        st: &mut InprocessStats,
        units: &mut Vec<Lit>,
    ) {
        // Sorted literal lists make subset checks binary searches. The
        // watch order of the first two literals is destroyed — fine,
        // the caller rebuilds all watches.
        for c in &mut self.clauses {
            if !c.deleted {
                c.lits.sort_unstable();
            }
        }
        let n_lit_slots = self.watches.len();
        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); n_lit_slots];
        for (i, c) in self.clauses.iter().enumerate() {
            if c.deleted {
                continue;
            }
            for &l in &c.lits {
                occ[l.index()].push(i as u32);
            }
        }
        let var_sig = |lits: &[Lit]| -> u64 {
            lits.iter()
                .fold(0u64, |s, l| s | 1u64 << (l.var().index() % 64))
        };
        let mut sigs: Vec<u64> = self
            .clauses
            .iter()
            .map(|c| if c.deleted { 0 } else { var_sig(&c.lits) })
            .collect();
        // `sub` subsumes `sup` (both sorted); with `flip = Some(p)`,
        // checks the self-subsumption condition sub \ {p} ⊆ sup \ {¬p}
        // by looking for ¬p in sup instead of p.
        let subset = |sub: &[Lit], sup: &[Lit], flip: Option<Lit>| -> bool {
            sub.iter().all(|&l| {
                let want = if Some(l) == flip { !l } else { l };
                sup.binary_search(&want).is_ok()
            })
        };
        'clauses: for i in 0..self.clauses.len() {
            if st.subsumption_checks >= cfg.subsumption_checks {
                break;
            }
            if self.clauses[i].deleted || self.clauses[i].lits.len() > cfg.max_subsuming_len {
                continue;
            }
            let lits_i = self.clauses[i].lits.clone();
            let sig_i = sigs[i];
            // Backward subsumption: scan the occurrence list of the
            // rarest literal of C for clauses D ⊇ C.
            let best = lits_i
                .iter()
                .copied()
                .min_by_key(|l| occ[l.index()].len())
                .expect("cleanup leaves no empty clauses");
            for &cand in &occ[best.index()] {
                if st.subsumption_checks >= cfg.subsumption_checks {
                    continue 'clauses;
                }
                let j = cand as usize;
                if j == i
                    || self.clauses[j].deleted
                    || self.clauses[j].lits.len() < lits_i.len()
                    || sig_i & !sigs[j] != 0
                {
                    continue;
                }
                st.subsumption_checks += 1;
                if subset(&lits_i, &self.clauses[j].lits, None) {
                    // If a learnt clause subsumes an original one, the
                    // original's constraint must survive future
                    // learnt-database reductions: promote the subsumer.
                    if self.clauses[i].learnt && !self.clauses[j].learnt {
                        self.clauses[i].learnt = false;
                        self.learnt_count -= 1;
                    }
                    st.clauses_subsumed += 1;
                    self.inprocess_delete(j);
                }
            }
            // Self-subsuming resolution: C strengthens D on p when
            // C \ {p} ⊆ D \ {¬p}; the resolvent replaces D.
            for &p in &lits_i {
                for &cand in &occ[(!p).index()] {
                    if st.subsumption_checks >= cfg.subsumption_checks {
                        continue 'clauses;
                    }
                    let j = cand as usize;
                    if j == i
                        || self.clauses[j].deleted
                        || self.clauses[j].lits.len() < lits_i.len()
                        || sig_i & !sigs[j] != 0
                    {
                        continue;
                    }
                    st.subsumption_checks += 1;
                    if subset(&lits_i, &self.clauses[j].lits, Some(p)) {
                        let pos = self.clauses[j]
                            .lits
                            .binary_search(&!p)
                            .expect("subset check found ¬p");
                        self.clauses[j].lits.remove(pos);
                        st.lits_removed += 1;
                        sigs[j] = var_sig(&self.clauses[j].lits);
                        if self.clauses[j].lits.len() == 1 {
                            units.push(self.clauses[j].lits[0]);
                            self.inprocess_delete(j);
                        }
                    }
                }
            }
        }
    }

    /// Phase 3: failed-literal probing. Each probe assumes one literal
    /// at a fresh decision level; a propagation conflict proves its
    /// negation as a level-0 unit.
    fn inprocess_probe(&mut self, cfg: &InprocessConfig, st: &mut InprocessStats) {
        if !self.ok {
            return;
        }
        for vi in 0..self.num_vars() {
            if st.probes >= cfg.probes {
                break;
            }
            if st.probes.is_multiple_of(16) && self.inprocess_interrupted() {
                break;
            }
            if self.assigns[vi] != LBool::Undef {
                continue;
            }
            let v = Var(vi as u32);
            for phase in [self.polarity[vi], !self.polarity[vi]] {
                if st.probes >= cfg.probes || self.assigns[vi] != LBool::Undef {
                    break;
                }
                st.probes += 1;
                self.new_decision_level();
                self.unchecked_enqueue(Lit::new(v, phase), None);
                let failed = self.propagate().is_some();
                self.cancel_until(0);
                if failed {
                    st.failed_literals += 1;
                    self.unchecked_enqueue(Lit::new(v, !phase), None);
                    if self.propagate().is_some() {
                        self.ok = false;
                        return;
                    }
                }
            }
        }
    }

    /// Reconstructs every watch list from the (possibly mutated) clause
    /// database. All literals of surviving clauses are unassigned at
    /// level 0 when this is called, so watching the first two is valid.
    fn rebuild_watches(&mut self) {
        for w in &mut self.watches {
            w.clear();
        }
        for i in 0..self.clauses.len() {
            let (deleted, len) = {
                let c = &self.clauses[i];
                (c.deleted, c.lits.len())
            };
            if deleted || len < 2 {
                continue;
            }
            let cref = ClauseRef(i as u32);
            let (l0, l1) = (self.clauses[i].lits[0], self.clauses[i].lits[1]);
            self.watches[(!l0).index()].push(Watcher { cref, blocker: l1 });
            self.watches[(!l1).index()].push(Watcher { cref, blocker: l0 });
        }
    }

    /// The value of `v` in the most recent satisfying model.
    ///
    /// Returns `None` if no model is available or the variable was left
    /// unconstrained (callers may treat that as either polarity).
    pub fn value(&self, v: Var) -> Option<bool> {
        self.model.get(v.index()).and_then(|b| b.to_bool())
    }

    /// The value of a literal in the most recent model.
    pub fn lit_model_value(&self, l: Lit) -> Option<bool> {
        self.value(l.var())
            .map(|b| if l.is_positive() { b } else { !b })
    }
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
fn luby(x: u64) -> u64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
// Pigeonhole encodings index a 2-D grid by (pigeon, hole); iterator
// rewrites obscure the encoding, so keep the index loops.
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| s.new_var().positive()).collect()
    }

    #[test]
    fn export_learnts_respects_len_cap_and_import_is_learnt() {
        // PHP(4,3) forces conflicts, so the solver learns clauses.
        let n = 4;
        let m = 3;
        let mut s = Solver::new();
        let mut p = vec![vec![Lit(0); m]; n];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var().positive();
            }
        }
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for j in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    s.add_clause([!p[a][j], !p[b][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        let all = s.export_learnts(usize::MAX);
        assert!(!all.is_empty(), "PHP(4,3) must learn clauses");
        let capped = s.export_learnts(3);
        assert!(capped.iter().all(|c| c.len() <= 3));
        assert!(capped.len() <= all.len());

        // Importing into a compatible solver keeps it consistent and the
        // clauses land as learnt (re-exportable).
        let mut t = Solver::new();
        for _ in 0..(n * m) {
            t.new_var();
        }
        for row in &p {
            t.add_clause(row.iter().copied());
        }
        for j in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    t.add_clause([!p[a][j], !p[b][j]]);
                }
            }
        }
        let imported = t.import_clauses(capped.iter().map(Vec::as_slice));
        assert_eq!(imported, capped.len());
        assert_eq!(t.solve(), SolveResult::Unsat);
    }

    #[test]
    fn import_skips_clauses_over_unallocated_vars() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        let alien = vec![Lit::new(Var(7), true)];
        let ok = vec![!v[0], !v[1]];
        let n = s.import_clauses([alien.as_slice(), ok.as_slice()]);
        assert_eq!(n, 1);
        assert!(s.solve().is_sat());
    }

    mod share_properties {
        use super::super::*;
        use proptest::prelude::*;

        /// Non-tautological clauses of 2..=4 distinct variables out of 8:
        /// consecutive variables (mod 8) starting anywhere, so the
        /// literals are distinct by construction.
        fn shareable_clause() -> impl Strategy<Value = Vec<Lit>> {
            (
                0u32..8,
                2usize..=4,
                proptest::collection::vec(any::<bool>(), 4),
            )
                .prop_map(|(start, len, signs)| {
                    (0..len)
                        .map(|i| Lit::new(Var((start + i as u32) % 8), signs[i]))
                        .collect()
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Importing exported clauses into a fresh solver over the
            /// same variables and re-exporting under the cap returns the
            /// clause set verbatim (as stored: sorted, deduped), and a
            /// tighter cap returns exactly the short subset.
            #[test]
            fn export_import_roundtrip_under_len_cap(
                clauses in proptest::collection::vec(shareable_clause(), 1..12),
            ) {
                let mut s = Solver::new();
                for _ in 0..8 {
                    s.new_var();
                }
                let n = s.import_clauses(clauses.iter().map(Vec::as_slice));
                prop_assert_eq!(n, clauses.len());
                let mut expect: Vec<Vec<Lit>> = clauses
                    .iter()
                    .map(|c| {
                        let mut c = c.clone();
                        c.sort_unstable();
                        c.dedup();
                        c
                    })
                    .collect();
                let mut got = s.export_learnts(4);
                expect.sort();
                got.sort();
                prop_assert_eq!(got, expect.clone());
                let mut short: Vec<Vec<Lit>> = expect
                    .iter()
                    .filter(|c| c.len() <= 2)
                    .cloned()
                    .collect();
                let mut got2 = s.export_learnts(2);
                short.sort();
                got2.sort();
                prop_assert_eq!(got2, short);
            }
        }
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause([v[0]]);
        assert!(s.solve().is_sat());
        assert_eq!(s.lit_model_value(v[0]), Some(true));
        assert!(!s.add_clause([!v[0]]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn simple_implication_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        for i in 0..4 {
            s.add_clause([!v[i], v[i + 1]]);
        }
        s.add_clause([v[0]]);
        assert!(s.solve().is_sat());
        for l in &v {
            assert_eq!(s.lit_model_value(*l), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: var p_{i,j} = pigeon i in hole j.
        let mut s = Solver::new();
        let mut p = [[Lit(0); 2]; 3];
        for i in 0..3 {
            for j in 0..2 {
                p[i][j] = s.new_var().positive();
            }
        }
        for i in 0..3 {
            s.add_clause([p[i][0], p[i][1]]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    s.add_clause([!p[a][j], !p[b][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_are_transient() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        assert_eq!(s.solve_with_assumptions(&[!v[0], !v[1]]), SolveResult::Unsat);
        // The formula itself is still satisfiable.
        assert!(s.solve().is_sat());
        assert!(s.solve_with_assumptions(&[!v[0]]).is_sat());
        assert_eq!(s.lit_model_value(v[1]), Some(true));
    }

    #[test]
    fn contradictory_assumptions() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert_eq!(s.solve_with_assumptions(&[v[0], !v[0]]), SolveResult::Unsat);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn xor_chain_forces_unique_model() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x1 = 1 -> x2 = 0, x3 = 1
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor = |s: &mut Solver, a: Lit, b: Lit| {
            s.add_clause([a, b]);
            s.add_clause([!a, !b]);
        };
        xor(&mut s, v[0], v[1]);
        xor(&mut s, v[1], v[2]);
        s.add_clause([v[0]]);
        assert!(s.solve().is_sat());
        assert_eq!(s.lit_model_value(v[1]), Some(false));
        assert_eq!(s.lit_model_value(v[2]), Some(true));
    }

    #[test]
    fn tautology_and_duplicates_ignored() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause([v[0], !v[0]]));
        assert!(s.add_clause([v[1], v[1], v[1]]));
        assert!(s.solve().is_sat());
        assert_eq!(s.lit_model_value(v[1]), Some(true));
    }

    #[test]
    fn php_4_into_3_unsat_exercises_learning() {
        let n = 4;
        let m = 3;
        let mut s = Solver::new();
        let mut p = vec![vec![Lit(0); m]; n];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var().positive();
            }
        }
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for j in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    s.add_clause([!p[a][j], !p[b][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn last_solve_stats_is_per_call_delta() {
        // A pigeonhole solve racks up conflicts; a trivial follow-up
        // solve must report only its own (near-zero) effort.
        let mut s = Solver::new();
        let n = 5;
        let m = 4;
        let mut p = vec![vec![Lit(0); m]; n];
        for row in p.iter_mut() {
            for cell in row.iter_mut() {
                *cell = s.new_var().positive();
            }
        }
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for j in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    s.add_clause([!p[a][j], !p[b][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        let first = s.last_solve_stats();
        assert!(first.conflicts > 0);
        assert_eq!(first.conflicts, s.stats().conflicts);

        let mut t = Solver::new();
        let a = t.new_var().positive();
        t.add_clause([a]);
        assert!(t.solve().is_sat());
        assert!(t.solve_with_assumptions(&[a]).is_sat());
        assert_eq!(t.last_solve_stats().conflicts, 0);
        assert_eq!(t.last_solve_stats().decisions, 0);
    }

    #[test]
    fn incremental_add_solve_add_solve() {
        // Clauses added after a solve must be respected, and learned
        // clauses from earlier solves must not corrupt later ones.
        let mut s = Solver::new();
        let v: Vec<Lit> = (0..6).map(|_| s.new_var().positive()).collect();
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[0], v[2]]);
        assert!(s.solve().is_sat());
        s.add_clause([!v[2]]);
        assert!(s.solve().is_sat());
        assert_eq!(s.lit_model_value(v[2]), Some(false));
        assert_eq!(s.lit_model_value(v[0]), Some(false));
        assert_eq!(s.lit_model_value(v[1]), Some(true));
        s.add_clause([!v[1]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        // Once UNSAT, the solver stays UNSAT.
        assert!(!s.add_clause([v[3]]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_after_learning() {
        // Force learning with a pigeonhole core, then reuse the solver
        // under assumptions on fresh variables.
        let mut s = Solver::new();
        let mut grid = Vec::new();
        for _ in 0..4 {
            let row: Vec<Lit> = (0..3).map(|_| s.new_var().positive()).collect();
            grid.push(row);
        }
        let sel = s.new_var().positive();
        // The PHP clauses are guarded by `sel` so the formula is SAT
        // overall but UNSAT under the assumption `sel`.
        for row in &grid {
            let mut c = row.clone();
            c.push(!sel);
            s.add_clause(c);
        }
        for j in 0..3 {
            for a in 0..4 {
                for b in (a + 1)..4 {
                    s.add_clause([!grid[a][j], !grid[b][j], !sel]);
                }
            }
        }
        assert!(s.solve().is_sat());
        assert_eq!(s.solve_with_assumptions(&[sel]), SolveResult::Unsat);
        // Still SAT without the assumption afterwards.
        assert!(s.solve_with_assumptions(&[!sel]).is_sat());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn random_instances_with_assumptions_agree_with_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xA55);
        for _ in 0..60 {
            let n_vars = rng.gen_range(4..=7usize);
            let n_clauses = rng.gen_range(4..=24usize);
            let clauses: Vec<Vec<(usize, bool)>> = (0..n_clauses)
                .map(|_| {
                    (0..rng.gen_range(1..=3usize))
                        .map(|_| (rng.gen_range(0..n_vars), rng.gen_bool(0.5)))
                        .collect()
                })
                .collect();
            let n_assume = rng.gen_range(0..=2usize);
            let assumptions: Vec<(usize, bool)> = (0..n_assume)
                .map(|_| (rng.gen_range(0..n_vars), rng.gen_bool(0.5)))
                .collect();
            // Brute force under the assumptions.
            let mut brute = false;
            'outer: for m in 0u32..(1 << n_vars) {
                for &(v, pos) in &assumptions {
                    if ((m >> v) & 1 == 1) != pos {
                        continue 'outer;
                    }
                }
                for c in &clauses {
                    if !c.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos) {
                        continue 'outer;
                    }
                }
                brute = true;
                break;
            }
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..n_vars).map(|_| s.new_var()).collect();
            let mut ok = true;
            for c in &clauses {
                ok &= s.add_clause(c.iter().map(|&(v, pos)| Lit::new(vars[v], pos)));
            }
            let lits: Vec<Lit> = assumptions
                .iter()
                .map(|&(v, pos)| Lit::new(vars[v], pos))
                .collect();
            let got = ok && s.solve_with_assumptions(&lits).is_sat();
            assert_eq!(got, brute, "clauses {clauses:?} assumptions {assumptions:?}");
        }
    }

    /// A guarded pigeonhole core: UNSAT under `sel`, SAT without it.
    /// Returns the solver and the selector literal.
    fn guarded_php(n: usize, m: usize) -> (Solver, Lit) {
        let mut s = Solver::new();
        let mut grid = Vec::new();
        for _ in 0..n {
            let row: Vec<Lit> = (0..m).map(|_| s.new_var().positive()).collect();
            grid.push(row);
        }
        let sel = s.new_var().positive();
        for row in &grid {
            let mut c = row.clone();
            c.push(!sel);
            s.add_clause(c);
        }
        for j in 0..m {
            for a in 0..n {
                for b in (a + 1)..n {
                    s.add_clause([!grid[a][j], !grid[b][j], !sel]);
                }
            }
        }
        (s, sel)
    }

    #[test]
    fn conflict_budget_returns_unknown_and_solver_stays_usable() {
        let (mut s, sel) = guarded_php(6, 5);
        s.set_limits(SolveLimits {
            conflicts: Some(2),
            ..Default::default()
        });
        let r = s.solve_with_assumptions(&[sel]);
        assert_eq!(r, SolveResult::Unknown(ResourceOut::Conflicts));
        // Unknown implies the limit actually fired.
        assert!(s.last_solve_stats().conflicts > 2);
        // Removing the limit converges to the real verdict, and the
        // solver was not poisoned by the aborted call.
        s.set_limits(SolveLimits::default());
        assert_eq!(s.solve_with_assumptions(&[sel]), SolveResult::Unsat);
        assert!(s.solve_with_assumptions(&[!sel]).is_sat());
    }

    #[test]
    fn propagation_budget_returns_unknown() {
        let (mut s, sel) = guarded_php(6, 5);
        s.set_limits(SolveLimits {
            propagations: Some(1),
            ..Default::default()
        });
        let r = s.solve_with_assumptions(&[sel]);
        assert_eq!(r, SolveResult::Unknown(ResourceOut::Propagations));
        assert!(s.last_solve_stats().propagations > 1);
    }

    #[test]
    fn expired_deadline_returns_unknown_before_searching() {
        let (mut s, sel) = guarded_php(4, 3);
        s.set_limits(SolveLimits {
            deadline: Some(Instant::now()),
            ..Default::default()
        });
        assert_eq!(
            s.solve_with_assumptions(&[sel]),
            SolveResult::Unknown(ResourceOut::Deadline)
        );
        // No search effort was spent.
        assert_eq!(s.last_solve_stats().conflicts, 0);
        assert_eq!(s.last_solve_stats().decisions, 0);
    }

    #[test]
    fn cancel_token_aborts_and_reset_recovers() {
        let (mut s, sel) = guarded_php(4, 3);
        let tok = CancelToken::new();
        s.set_cancel(tok.clone());
        tok.cancel();
        assert_eq!(
            s.solve_with_assumptions(&[sel]),
            SolveResult::Unknown(ResourceOut::Cancelled)
        );
        tok.reset();
        assert_eq!(s.solve_with_assumptions(&[sel]), SolveResult::Unsat);
    }

    #[test]
    fn generous_budget_never_reports_unknown() {
        // The budget-semantics property: limits that are never hit do
        // not change verdicts.
        let (mut s, sel) = guarded_php(5, 4);
        s.set_limits(SolveLimits {
            conflicts: Some(u64::MAX),
            propagations: Some(u64::MAX),
            deadline: Some(Instant::now() + std::time::Duration::from_secs(3600)),
        });
        assert_eq!(s.solve_with_assumptions(&[sel]), SolveResult::Unsat);
        assert!(s.solve_with_assumptions(&[!sel]).is_sat());
    }

    #[test]
    fn zero_conflict_budget_is_sound_under_failing_assumptions() {
        // Budget 0 turns the first conflict into Unknown; the aborted
        // call must leave the solver able to find the real model.
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], !v[1]]);
        s.add_clause([!v[0], v[1]]);
        s.set_limits(SolveLimits {
            conflicts: Some(0),
            ..Default::default()
        });
        let r = s.solve_with_assumptions(&[!v[0]]);
        assert_eq!(r, SolveResult::Unknown(ResourceOut::Conflicts));
        s.set_limits(SolveLimits::default());
        assert_eq!(s.solve_with_assumptions(&[!v[0]]), SolveResult::Unsat);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(v[0].var()), Some(true));
    }

    #[test]
    fn inprocess_reclaims_clauses_satisfied_by_level0_units() {
        // The activation-literal pattern: clauses guarded by `!sel`
        // become permanently satisfied once the unit `!sel` lands, and
        // inprocessing must delete them all.
        let (mut s, sel) = guarded_php(4, 3);
        let before = s.num_clauses();
        s.add_clause([!sel]); // retract the guarded scope
        let st = s.inprocess(&InprocessConfig::default());
        assert!(st.clauses_satisfied > 0, "{st:?}");
        assert!(s.num_clauses() < before, "{before} -> {}", s.num_clauses());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn inprocess_subsumption_deletes_supersets() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], v[1], v[2]]);
        s.add_clause([v[0], v[1], v[3]]);
        let st = s.inprocess(&InprocessConfig::default());
        assert_eq!(st.clauses_subsumed, 2, "{st:?}");
        assert_eq!(s.num_clauses(), 1);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn inprocess_self_subsumption_strengthens() {
        // (a ∨ b) and (¬a ∨ b ∨ c) resolve on a to (b ∨ c), which
        // replaces the longer clause; the binary then subsumes nothing
        // further but b∨c must behave like the resolvent.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[0], v[1], v[2]]);
        let st = s.inprocess(&InprocessConfig::default());
        assert!(st.lits_removed >= 1, "{st:?}");
        // Semantics preserved: assuming ¬b forces (a from the first
        // clause and c from the strengthened resolvent).
        assert!(s.solve_with_assumptions(&[!v[1]]).is_sat());
        assert_eq!(s.lit_model_value(v[2]), Some(true));
    }

    #[test]
    fn inprocess_probing_learns_failed_literals() {
        // ¬a propagates b and ¬b via (a ∨ b) ∧ (a ∨ ¬b): probing ¬a
        // conflicts, so a must be learnt as a level-0 unit.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], !v[1]]);
        s.add_clause([v[2], v[0]]); // keep another var around
        // Subsumption disabled so the unit can only come from probing.
        let st = s.inprocess(&InprocessConfig {
            subsumption_checks: 0,
            ..Default::default()
        });
        assert!(st.failed_literals >= 1, "{st:?}");
        assert!(s.solve().is_sat());
        assert_eq!(s.lit_model_value(v[0]), Some(true));
    }

    #[test]
    fn inprocess_preserves_verdicts_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x1217);
        for round in 0..80 {
            let n_vars = rng.gen_range(4..=8usize);
            let n_clauses = rng.gen_range(4..=28usize);
            let clauses: Vec<Vec<(usize, bool)>> = (0..n_clauses)
                .map(|_| {
                    (0..rng.gen_range(1..=3usize))
                        .map(|_| (rng.gen_range(0..n_vars), rng.gen_bool(0.5)))
                        .collect()
                })
                .collect();
            let assumptions: Vec<(usize, bool)> = (0..rng.gen_range(0..=2usize))
                .map(|_| (rng.gen_range(0..n_vars), rng.gen_bool(0.5)))
                .collect();
            let mut brute = false;
            'outer: for m in 0u32..(1 << n_vars) {
                for &(v, pos) in &assumptions {
                    if ((m >> v) & 1 == 1) != pos {
                        continue 'outer;
                    }
                }
                for c in &clauses {
                    if !c.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos) {
                        continue 'outer;
                    }
                }
                brute = true;
                break;
            }
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..n_vars).map(|_| s.new_var()).collect();
            let mut ok = true;
            for c in &clauses {
                ok &= s.add_clause(c.iter().map(|&(v, pos)| Lit::new(vars[v], pos)));
            }
            // Interleave: inprocess, solve, inprocess again, solve with
            // assumptions — the verdicts must match brute force and
            // stay consistent across passes.
            s.inprocess(&InprocessConfig::default());
            let lits: Vec<Lit> = assumptions
                .iter()
                .map(|&(v, pos)| Lit::new(vars[v], pos))
                .collect();
            let got = ok && s.solve_with_assumptions(&lits).is_sat();
            assert_eq!(got, brute, "round {round}: {clauses:?} / {assumptions:?}");
            s.inprocess(&InprocessConfig::default());
            let again = ok && s.solve_with_assumptions(&lits).is_sat();
            assert_eq!(again, brute, "round {round} after second pass");
        }
    }

    #[test]
    fn inprocess_respects_budgets_and_cancellation() {
        let (mut s, _) = guarded_php(6, 5);
        let cfg = InprocessConfig {
            subsumption_checks: 3,
            probes: 2,
            ..Default::default()
        };
        let st = s.inprocess(&cfg);
        assert!(st.subsumption_checks <= 3, "{st:?}");
        assert!(st.probes <= 2, "{st:?}");
        // A cancelled token stops probing but leaves the solver valid.
        let (mut s2, sel) = guarded_php(5, 4);
        let tok = CancelToken::new();
        s2.set_cancel(tok.clone());
        tok.cancel();
        s2.inprocess(&InprocessConfig::default());
        tok.reset();
        assert_eq!(s2.solve_with_assumptions(&[sel]), SolveResult::Unsat);
        assert!(s2.solve_with_assumptions(&[!sel]).is_sat());
    }

    #[test]
    fn inprocess_detects_level0_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[0], !v[1]]);
        s.add_clause([!v[0], v[1]]);
        s.add_clause([!v[0], !v[1]]);
        // Probing either variable fails both ways: the formula is UNSAT
        // and inprocessing alone can prove it.
        s.inprocess(&InprocessConfig::default());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn inprocess_is_noop_on_clean_database() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1]]);
        s.add_clause([v[1], v[2]]);
        let st = s.inprocess(&InprocessConfig::default());
        assert!(st.is_noop(), "{st:?}");
        assert!(s.solve().is_sat());
    }

    #[test]
    fn luby_sequence() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..120 {
            let n_vars = rng.gen_range(3..=8usize);
            let n_clauses = rng.gen_range(3..=30usize);
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..n_clauses {
                let len = rng.gen_range(1..=3usize);
                let c: Vec<(usize, bool)> = (0..len)
                    .map(|_| (rng.gen_range(0..n_vars), rng.gen_bool(0.5)))
                    .collect();
                clauses.push(c);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << n_vars) {
                for c in &clauses {
                    if !c.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // Solver.
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..n_vars).map(|_| s.new_var()).collect();
            let mut ok = true;
            for c in &clauses {
                ok &= s.add_clause(c.iter().map(|&(v, pos)| Lit::new(vars[v], pos)));
            }
            let sat = ok && s.solve().is_sat();
            assert_eq!(sat, brute_sat, "clauses: {clauses:?}");
            if sat {
                // Every variable is decided in a model; verify each clause.
                for c in &clauses {
                    assert!(
                        c.iter().any(|&(v, pos)| s.value(vars[v]).unwrap() == pos),
                        "model does not satisfy {c:?}"
                    );
                }
            }
        }
    }
}
