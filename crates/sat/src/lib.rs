//! # gila-sat — a CDCL SAT solver
//!
//! The decision-procedure backend of the gila verification platform.
//! [`gila-smt`](https://docs.rs/gila-smt) bit-blasts bit-vector refinement
//! properties into CNF and discharges them with this solver — the role
//! JasperGold plays in the original DATE 2021 evaluation.
//!
//! Features: two-watched-literal unit propagation, first-UIP clause
//! learning with local minimization, VSIDS branching with phase saving,
//! Luby restarts, LBD/activity-guided learnt-clause reduction, solving
//! under assumptions (incremental use), resource-bounded solving
//! ([`SolveLimits`] budgets plus a shared [`CancelToken`]) that returns
//! [`SolveResult::Unknown`] instead of hanging, and bounded
//! inprocessing ([`Solver::inprocess`]) that shrinks the permanent
//! clause database between solve calls without breaking incrementality.
//!
//! # Examples
//!
//! ```
//! use gila_sat::Solver;
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause([a.positive(), b.positive()]);
//! s.add_clause([!a.positive()]);
//! assert!(s.solve().is_sat());
//! assert_eq!(s.value(b), Some(true));
//! ```

#![warn(missing_docs)]

mod dimacs;
mod heap;
mod inprocess;
mod lit;
mod solver;

pub use dimacs::{parse_dimacs, solver_from_dimacs, to_dimacs, ParseDimacsError};
pub use inprocess::{InprocessConfig, InprocessStats};
pub use lit::{LBool, Lit, Var};
pub use solver::{CancelToken, ResourceOut, SolveLimits, SolveResult, Solver, SolverStats};
