//! Configuration and reporting types for bounded inprocessing.
//!
//! Inprocessing simplifies the permanent clause database *between*
//! solve calls, at decision level 0. Every derived fact (a removed
//! clause, a strengthened literal, a learnt unit) is a consequence of
//! the permanent clauses alone — never of any assumption — so the
//! simplified database is equisatisfiable with the original under every
//! future assumption set. The pass is budgeted: it does a bounded
//! amount of work and stops, preserving incremental-solving latency.
//!
//! The phases, in order (see [`crate::Solver::inprocess`]):
//!
//! 1. **Satisfied-clause elimination + strengthening.** Clauses with a
//!    level-0 true literal are deleted (level-0 assignments are
//!    permanent, so they can never matter again — this is what reclaims
//!    clauses guarded by a popped activation scope's negated unit);
//!    level-0 false literals are removed from the remaining clauses.
//! 2. **Subsumption and self-subsuming resolution.** If clause `C ⊆ D`,
//!    `D` is deleted; if `C \ {l} ⊆ D \ {¬l}`, `¬l` is removed from
//!    `D`. Pair checks are drawn from an occurrence-list queue and
//!    counted against [`InprocessConfig::subsumption_checks`].
//! 3. **Failed-literal probing.** A bounded number of unassigned
//!    literals are assumed at a probe decision level; if unit
//!    propagation derives a conflict, the negation is a level-0 unit.

/// Resource bounds for one [`crate::Solver::inprocess`] call.
///
/// Each field caps one phase; a pass never exceeds its caps and the
/// wall-clock deadline / cancellation token installed on the solver
/// ([`crate::Solver::set_limits`], [`crate::Solver::set_cancel`]) are
/// honoured as well, so inprocessing can never stall a budgeted run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InprocessConfig {
    /// Maximum clause-pair subset checks in the subsumption phase.
    pub subsumption_checks: u64,
    /// Maximum failed-literal probes (each probe is one propagation to
    /// fixpoint from a single assumed literal).
    pub probes: u64,
    /// Clauses longer than this are not used as subsuming candidates
    /// (long clauses rarely subsume anything; skipping them keeps the
    /// occurrence queue short).
    pub max_subsuming_len: usize,
}

impl Default for InprocessConfig {
    fn default() -> Self {
        InprocessConfig {
            subsumption_checks: 20_000,
            probes: 128,
            max_subsuming_len: 8,
        }
    }
}

/// What one [`crate::Solver::inprocess`] call accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InprocessStats {
    /// Clauses deleted because a literal is true at level 0.
    pub clauses_satisfied: u64,
    /// Clauses deleted because another clause subsumes them.
    pub clauses_subsumed: u64,
    /// Literals removed (level-0 false literals plus self-subsuming
    /// resolution strengthenings).
    pub lits_removed: u64,
    /// Level-0 units learned by failed-literal probing.
    pub failed_literals: u64,
    /// Probes attempted.
    pub probes: u64,
    /// Clause-pair subset checks performed.
    pub subsumption_checks: u64,
}

impl InprocessStats {
    /// Component-wise sum, for aggregating across calls.
    pub fn merge(&mut self, other: InprocessStats) {
        self.clauses_satisfied += other.clauses_satisfied;
        self.clauses_subsumed += other.clauses_subsumed;
        self.lits_removed += other.lits_removed;
        self.failed_literals += other.failed_literals;
        self.probes += other.probes;
        self.subsumption_checks += other.subsumption_checks;
    }

    /// True when the pass found nothing to do (useful for scheduling
    /// heuristics and for tests).
    pub fn is_noop(&self) -> bool {
        self.clauses_satisfied == 0
            && self.clauses_subsumed == 0
            && self.lits_removed == 0
            && self.failed_literals == 0
    }
}
