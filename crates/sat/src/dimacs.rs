//! DIMACS CNF import/export, mainly for debugging and fuzzing the solver
//! against external tools.

use std::fmt;

use crate::lit::{Lit, Var};
use crate::solver::Solver;

/// An error while parsing DIMACS CNF text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dimacs parse error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDimacsError {}

/// Parses DIMACS CNF text into a list of clauses (1-based variable
/// numbers become 0-based [`Var`] indices) and the declared variable count.
///
/// # Errors
///
/// Returns an error on malformed literals or a missing/invalid `p cnf`
/// header (a missing header is tolerated if clauses are well-formed; the
/// variable count is then inferred).
pub fn parse_dimacs(text: &str) -> Result<(usize, Vec<Vec<Lit>>), ParseDimacsError> {
    let mut declared_vars: Option<usize> = None;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    let mut max_var = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            let mut it = rest.split_whitespace();
            if it.next() != Some("cnf") {
                return Err(ParseDimacsError {
                    line: lineno + 1,
                    message: "expected 'p cnf <vars> <clauses>'".into(),
                });
            }
            let nv: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ParseDimacsError {
                    line: lineno + 1,
                    message: "invalid variable count".into(),
                })?;
            declared_vars = Some(nv);
            continue;
        }
        for tok in line.split_whitespace() {
            let n: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: lineno + 1,
                message: format!("invalid literal {tok:?}"),
            })?;
            if n == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                let v = (n.unsigned_abs() - 1) as usize;
                max_var = max_var.max(v + 1);
                current.push(Lit::new(Var(v as u32), n > 0));
            }
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    Ok((declared_vars.unwrap_or(max_var).max(max_var), clauses))
}

/// Loads DIMACS text into a fresh [`Solver`].
///
/// # Errors
///
/// Propagates [`ParseDimacsError`] from [`parse_dimacs`].
pub fn solver_from_dimacs(text: &str) -> Result<Solver, ParseDimacsError> {
    let (n_vars, clauses) = parse_dimacs(text)?;
    let mut s = Solver::new();
    for _ in 0..n_vars {
        s.new_var();
    }
    for c in clauses {
        s.add_clause(c);
    }
    Ok(s)
}

/// Renders clauses as DIMACS CNF text.
pub fn to_dimacs(n_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = format!("p cnf {} {}\n", n_vars, clauses.len());
    for c in clauses {
        for &l in c {
            let n = l.var().index() as i64 + 1;
            let n = if l.is_positive() { n } else { -n };
            out.push_str(&n.to_string());
            out.push(' ');
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let (n, clauses) = parse_dimacs(text).unwrap();
        assert_eq!(n, 3);
        assert_eq!(clauses.len(), 2);
        assert_eq!(clauses[0].len(), 2);
        assert!(clauses[0][0].is_positive());
        assert!(!clauses[0][1].is_positive());
    }

    #[test]
    fn roundtrip() {
        let text = "p cnf 2 2\n1 2 0\n-1 -2 0\n";
        let (n, clauses) = parse_dimacs(text).unwrap();
        let re = to_dimacs(n, &clauses);
        let (n2, clauses2) = parse_dimacs(&re).unwrap();
        assert_eq!(n, n2);
        assert_eq!(clauses, clauses2);
    }

    #[test]
    fn solve_parsed_instance() {
        let mut s = solver_from_dimacs("p cnf 2 3\n1 2 0\n-1 0\n-2 -1 0\n").unwrap();
        assert!(s.solve().is_sat());
        assert_eq!(s.value(Var(0)), Some(false));
        assert_eq!(s.value(Var(1)), Some(true));
    }

    #[test]
    fn bad_header_rejected() {
        assert!(parse_dimacs("p dnf 1 1\n1 0\n").is_err());
        assert!(parse_dimacs("p cnf x 1\n").is_err());
        assert!(parse_dimacs("1 one 0\n").is_err());
    }

    #[test]
    fn header_optional_and_var_count_inferred() {
        let (n, clauses) = parse_dimacs("1 -3 0\n2 0\n").unwrap();
        assert_eq!(n, 3);
        assert_eq!(clauses.len(), 2);
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        fn clauses_strategy() -> impl Strategy<Value = Vec<Vec<Lit>>> {
            proptest::collection::vec(
                proptest::collection::vec(
                    (0u32..8, any::<bool>()).prop_map(|(v, pos)| Lit::new(Var(v), pos)),
                    0..5,
                ),
                0..16,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Rendering and re-parsing recovers the exact clause list
            /// (including empty clauses) and the declared variable count.
            #[test]
            fn render_parse_roundtrip(clauses in clauses_strategy()) {
                let text = to_dimacs(8, &clauses);
                let (n, back) = parse_dimacs(&text).unwrap();
                prop_assert_eq!(n, 8);
                prop_assert_eq!(back, clauses);
            }

            /// Comments, blank lines, and clauses split across lines are
            /// cosmetic: parsing is invariant under them.
            #[test]
            fn parse_ignores_layout(clauses in clauses_strategy()) {
                let plain = to_dimacs(8, &clauses);
                let mut decorated = String::from("c header comment\n\n");
                for line in plain.lines() {
                    if line.starts_with("p ") {
                        // The header must stay on one line.
                        decorated.push_str(line);
                        decorated.push('\n');
                        continue;
                    }
                    // One token per line, interleaved with comments.
                    for tok in line.split_whitespace() {
                        decorated.push_str(tok);
                        decorated.push('\n');
                    }
                    decorated.push_str("c between\n");
                }
                let (n, a) = parse_dimacs(&plain).unwrap();
                let (m, b) = parse_dimacs(&decorated).unwrap();
                prop_assert_eq!(n, m);
                prop_assert_eq!(a, b);
            }
        }
    }
}
