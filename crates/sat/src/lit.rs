//! Variables, literals, and the three-valued assignment domain.

use std::fmt;
use std::ops::Not;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The variable's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable with a polarity.
///
/// Encoded as `var << 1 | positive`, so literals index watch lists directly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// Creates a literal from a variable and polarity (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Self {
        Lit(var.0 << 1 | positive as u32)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True if the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 1
    }

    /// The literal's index (for watch lists): `2*var + polarity`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from its index.
    pub fn from_index(index: usize) -> Self {
        Lit(index as u32)
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_positive() { "" } else { "-" }, self.0 >> 1)
    }
}

/// A lifted boolean: true, false, or unassigned.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Converts from a concrete boolean.
    pub fn from_bool(b: bool) -> Self {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// The complement (`Undef` stays `Undef`).
    pub fn negate(self) -> Self {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// Converts to a boolean if assigned.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        let v = Var(7);
        let p = v.positive();
        let n = v.negative();
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(Lit::from_index(p.index()), p);
    }

    #[test]
    fn lbool_ops() {
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::False.to_bool(), Some(false));
        assert_eq!(LBool::Undef.to_bool(), None);
    }
}
