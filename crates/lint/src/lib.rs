//! # gila-lint — SAT-backed static analysis for ILA specs and RTL
//!
//! The paper's methodology hinges on catching *specification gaps* —
//! incomplete decode coverage, overlapping instruction triggers, and
//! unresolved shared-state conflicts — before any model checking runs.
//! This crate unifies those checks (and a family of cheaper structural
//! lints) behind one diagnostic surface:
//!
//! * stable diagnostic codes (`GL001`..) with fixed severities,
//! * source spans threaded from the `.ila` parser,
//! * concrete SAT witnesses for the decode proofs,
//! * human-readable and JSON renderers (via `gila-json`),
//! * per-pass timing emitted as `gila-trace` spans.
//!
//! Entry points: [`lint_spec`] for a parsed `.ila` file (maximum
//! fidelity: spans, width notes, composition findings),
//! [`lint_module`] for a programmatically built [`ModuleIla`], and
//! [`lint_rtl`] for an elaborated [`RtlModule`].
//!
//! ```
//! use gila_lint::{lint_spec, LintOptions};
//!
//! let spec = gila_lang::parse_spec(r#"
//! port p {
//!   input x : bv1
//!   state ghost : bv8
//!   instr only when x == 1 { }
//! }
//! "#)?;
//! let report = lint_spec("p.ila", &spec, &LintOptions::default(), &gila_trace::Tracer::disabled());
//! // x == 0 is uncovered (GL001) and `ghost` is never touched (GL004).
//! assert_eq!(report.diagnostics.len(), 2);
//! assert_eq!(report.errors(), 0);
//! # Ok::<(), gila_lang::IlaSyntaxError>(())
//! ```

#![warn(missing_docs)]

use std::fmt;

use gila_core::Witness;
use gila_expr::Value;
use gila_json::Value as Json;

mod passes;
mod rtl;

pub use passes::{lint_module, lint_ports, lint_spec, LintOptions};
pub use rtl::lint_rtl;

/// How serious a diagnostic is.
///
/// Errors are findings that make verification unsound or impossible
/// (nondeterministic decode, dead instructions, unresolved shared-state
/// conflicts); warnings flag suspicious but potentially intentional
/// specifications (decode gaps scoped by a reachability assumption,
/// write-only state, implicit truncation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but possibly intentional.
    Warning,
    /// A well-formedness violation.
    Error,
}

impl Severity {
    /// Lower-case name, as rendered in diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable diagnostic codes. Codes are append-only: a code never changes
/// meaning or severity class once released, so `--deny` lists and CI
/// filters stay valid across versions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// GL001: the decode functions do not cover every command.
    DecodeGap,
    /// GL002: two instructions can trigger on the same command.
    DecodeOverlap,
    /// GL003: an instruction's decode condition is unsatisfiable.
    DeadInstruction,
    /// GL004: an input or state is never referenced.
    UnusedVar,
    /// GL005: a state is read but never written and has no reset value.
    ReadNeverWritten,
    /// GL006: an internal state is written but never read.
    WriteOnlyState,
    /// GL007: an assignment silently truncated its right-hand side.
    TruncatedAssign,
    /// GL008: operands of unequal widths were implicitly zero-extended.
    WidthMismatch,
    /// GL009: an `integrate` directive left a specification gap.
    UnresolvedConflict,
    /// GL010: ports update a shared state no directive integrates.
    UnintegratedShared,
    /// GL011: an RTL input pin drives nothing.
    RtlUnusedInput,
    /// GL012: an RTL state element is never driven and has no reset.
    RtlUndrivenState,
    /// GL013: an RTL state element never influences an output.
    RtlDeadState,
    /// GL014: an init-less state can be read before it is ever written.
    UninitStateRead,
    /// GL015: a truncation drops bits that are provably set.
    TruncatedSetBits,
    /// GL016: an output state provably never changes from one constant.
    ConstantOutput,
    /// GL017: an instruction's decode is satisfiable in isolation but
    /// provably false in every reachable state.
    UnreachableInstruction,
}

impl Code {
    /// Every code, in numeric order.
    pub const ALL: [Code; 17] = [
        Code::DecodeGap,
        Code::DecodeOverlap,
        Code::DeadInstruction,
        Code::UnusedVar,
        Code::ReadNeverWritten,
        Code::WriteOnlyState,
        Code::TruncatedAssign,
        Code::WidthMismatch,
        Code::UnresolvedConflict,
        Code::UnintegratedShared,
        Code::RtlUnusedInput,
        Code::RtlUndrivenState,
        Code::RtlDeadState,
        Code::UninitStateRead,
        Code::TruncatedSetBits,
        Code::ConstantOutput,
        Code::UnreachableInstruction,
    ];

    /// The stable `GL0xx` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::DecodeGap => "GL001",
            Code::DecodeOverlap => "GL002",
            Code::DeadInstruction => "GL003",
            Code::UnusedVar => "GL004",
            Code::ReadNeverWritten => "GL005",
            Code::WriteOnlyState => "GL006",
            Code::TruncatedAssign => "GL007",
            Code::WidthMismatch => "GL008",
            Code::UnresolvedConflict => "GL009",
            Code::UnintegratedShared => "GL010",
            Code::RtlUnusedInput => "GL011",
            Code::RtlUndrivenState => "GL012",
            Code::RtlDeadState => "GL013",
            Code::UninitStateRead => "GL014",
            Code::TruncatedSetBits => "GL015",
            Code::ConstantOutput => "GL016",
            Code::UnreachableInstruction => "GL017",
        }
    }

    /// The fixed severity class of this code.
    ///
    /// Decode gaps are warnings, not errors: several real designs (the
    /// OpenPiton L2 pipes, for instance) are deliberately incomplete
    /// outside a reachability assumption the lint cannot know about.
    pub fn severity(self) -> Severity {
        match self {
            Code::DecodeOverlap
            | Code::DeadInstruction
            | Code::UnresolvedConflict
            | Code::UnintegratedShared => Severity::Error,
            _ => Severity::Warning,
        }
    }

    /// Parses a `GL0xx` identifier (as accepted by `--deny`).
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.iter().copied().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a coded, located, self-describing message, optionally
/// carrying the SAT witness that proves it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: Code,
    /// The port (or RTL module) the finding is about, if any.
    pub port: String,
    /// The instruction involved, if any.
    pub instruction: String,
    /// The state/input/signal involved, if any.
    pub state: String,
    /// Source line in the `.ila` file, when known.
    pub line: Option<usize>,
    /// Human-readable description (already includes the context names).
    pub message: String,
    /// A concrete command witnessing the finding (decode proofs only).
    pub witness: Option<Witness>,
}

impl Diagnostic {
    /// Creates a diagnostic with empty context fields.
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            port: String::new(),
            instruction: String::new(),
            state: String::new(),
            line: None,
            message: message.into(),
            witness: None,
        }
    }

    /// Sets the port context.
    pub fn port(mut self, port: &str) -> Diagnostic {
        self.port = port.to_string();
        self
    }

    /// Sets the instruction context.
    pub fn instruction(mut self, instruction: &str) -> Diagnostic {
        self.instruction = instruction.to_string();
        self
    }

    /// Sets the state/input/signal context.
    pub fn state(mut self, state: &str) -> Diagnostic {
        self.state = state.to_string();
        self
    }

    /// Sets the source line.
    pub fn at(mut self, line: Option<usize>) -> Diagnostic {
        self.line = line;
        self
    }

    /// Attaches a witness command.
    pub fn witness(mut self, witness: Witness) -> Diagnostic {
        self.witness = Some(witness);
        self
    }

    /// The diagnostic's severity (fixed by its code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// A stable identity for the finding: FNV-1a over the code and the
    /// context names (port, instruction, state), *not* over the message
    /// text, the source line, or the witness. Rewording a message or
    /// inserting lines above a finding keeps its fingerprint, so
    /// suppression lists and CI diffs can track findings across edits.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        for part in [
            self.code.as_str(),
            &self.port,
            &self.instruction,
            &self.state,
        ] {
            for b in part.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
            // Separator so ("ab","c") and ("a","bc") differ.
            h ^= 0xff;
            h = h.wrapping_mul(PRIME);
        }
        h
    }

    fn to_json(&self) -> Json {
        let mut obj: Vec<(String, Json)> = vec![
            ("code".into(), self.code.as_str().into()),
            ("severity".into(), self.severity().as_str().into()),
            ("fingerprint".into(), format!("{:016x}", self.fingerprint()).into()),
        ];
        if !self.port.is_empty() {
            obj.push(("port".into(), self.port.as_str().into()));
        }
        if !self.instruction.is_empty() {
            obj.push(("instruction".into(), self.instruction.as_str().into()));
        }
        if !self.state.is_empty() {
            obj.push(("state".into(), self.state.as_str().into()));
        }
        if let Some(line) = self.line {
            obj.push(("line".into(), line.into()));
        }
        obj.push(("message".into(), self.message.as_str().into()));
        if let Some(w) = &self.witness {
            obj.push(("witness".into(), witness_to_json(w)));
        }
        Json::Object(obj)
    }
}

/// Renders a concrete value the way the `.ila` language writes literals
/// (`8'h2a`); memories render as their default word plus any overrides.
pub fn value_str(v: &Value) -> String {
    match v {
        Value::Bool(b) => b.to_string(),
        Value::Bv(bv) => bv.to_string(),
        Value::Mem(m) => {
            let mut s = format!("mem(default {}", m.default_word());
            for (addr, word) in m.iter_written() {
                s.push_str(&format!(", [{addr:#x}] = {word}"));
            }
            s.push(')');
            s
        }
    }
}

/// Renders a witness as `name = value` pairs, inputs first — the one
/// canonical formatting every consumer (CLI, goldens, JSON) shares.
pub fn format_witness(w: &Witness) -> String {
    w.inputs
        .iter()
        .chain(w.states.iter())
        .map(|(n, v)| format!("{n} = {}", value_str(v)))
        .collect::<Vec<_>>()
        .join(", ")
}

fn witness_to_json(w: &Witness) -> Json {
    let pairs = |xs: &[(String, Value)]| {
        Json::Array(
            xs.iter()
                .map(|(n, v)| {
                    Json::Object(vec![
                        ("name".into(), n.as_str().into()),
                        ("value".into(), value_str(v).into()),
                    ])
                })
                .collect(),
        )
    };
    Json::Object(vec![
        ("inputs".into(), pairs(&w.inputs)),
        ("states".into(), pairs(&w.states)),
    ])
}

/// How much lint work the abstract-interpretation fast path settled
/// without the SAT solver. Carried on [`LintReport`] for `--stats` and
/// the bench harness; deliberately *not* serialized into the report's
/// JSON, which must be byte-identical with the fast path on or off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LintStats {
    /// Lint questions (one per code per port) whose every SAT query was
    /// settled by the abstract verdict alone.
    pub lints_discharged_static: u64,
    /// Individual SAT queries skipped because the abstract verdict was
    /// conclusive.
    pub sat_calls_avoided: u64,
    /// Wall-clock nanoseconds spent in abstract interpretation (the
    /// decode oracle plus the GL014–GL017 fixpoint pass).
    pub absint_ns: u64,
}

impl LintStats {
    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &LintStats) {
        self.lints_discharged_static += other.lints_discharged_static;
        self.sat_calls_avoided += other.sat_calls_avoided;
        self.absint_ns += other.absint_ns;
    }
}

/// Every finding for one target (a spec file, a design, or an RTL
/// module), in deterministic order: ports in declaration order, passes
/// in pipeline order within a port, file-level findings last.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// What was linted (a file path or a design name).
    pub target: String,
    /// The findings, in deterministic order.
    pub diagnostics: Vec<Diagnostic>,
    /// Fast-path bookkeeping (not part of the JSON rendering).
    pub stats: LintStats,
}

impl LintReport {
    /// Creates an empty report for `target`.
    pub fn new(target: impl Into<String>) -> LintReport {
        LintReport {
            target: target.into(),
            diagnostics: Vec::new(),
            stats: LintStats::default(),
        }
    }

    /// Number of error-class findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count()
    }

    /// Number of warning-class findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count()
    }

    /// Number of findings whose code appears in `denied` (counted
    /// regardless of their natural severity).
    pub fn denied(&self, denied: &[Code]) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| denied.contains(&d.code))
            .count()
    }

    /// Renders the report as human-readable text, one finding per
    /// paragraph, ending with a one-line summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            match d.line {
                Some(line) => out.push_str(&format!(
                    "{}:{}: {}[{}] {}\n",
                    self.target,
                    line,
                    d.severity().as_str(),
                    d.code,
                    d.message
                )),
                None => out.push_str(&format!(
                    "{}: {}[{}] {}\n",
                    self.target,
                    d.severity().as_str(),
                    d.code,
                    d.message
                )),
            }
            if let Some(w) = &d.witness {
                out.push_str(&format!("    witness: {}\n", format_witness(w)));
            }
        }
        let (e, w) = (self.errors(), self.warnings());
        if e == 0 && w == 0 {
            out.push_str(&format!("{}: clean\n", self.target));
        } else {
            out.push_str(&format!(
                "{}: {} error{}, {} warning{}\n",
                self.target,
                e,
                if e == 1 { "" } else { "s" },
                w,
                if w == 1 { "" } else { "s" }
            ));
        }
        out
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("target".into(), self.target.as_str().into()),
            ("errors".into(), self.errors().into()),
            ("warnings".into(), self.warnings().into()),
            (
                "diagnostics".into(),
                Json::Array(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_parseable() {
        for (i, c) in Code::ALL.iter().enumerate() {
            assert_eq!(c.as_str(), format!("GL{:03}", i + 1));
            assert_eq!(Code::parse(c.as_str()), Some(*c));
        }
        assert_eq!(Code::parse("GL999"), None);
        assert_eq!(Code::parse("gl001"), None);
    }

    #[test]
    fn severity_classes_fixed() {
        let errors: Vec<Code> = Code::ALL
            .iter()
            .copied()
            .filter(|c| c.severity() == Severity::Error)
            .collect();
        assert_eq!(
            errors,
            vec![
                Code::DecodeOverlap,
                Code::DeadInstruction,
                Code::UnresolvedConflict,
                Code::UnintegratedShared
            ]
        );
    }

    #[test]
    fn witness_formatting() {
        use gila_expr::BitVecValue;
        let w = Witness {
            inputs: vec![("en".into(), Value::Bv(BitVecValue::from_u64(1, 1)))],
            states: vec![("cnt".into(), Value::Bv(BitVecValue::from_u64(0x2a, 8)))],
        };
        assert_eq!(format_witness(&w), "en = 1'h1, cnt = 8'h2a");
    }

    #[test]
    fn report_rendering() {
        let mut r = LintReport::new("x.ila");
        r.diagnostics.push(
            Diagnostic::new(Code::UnusedVar, "port 'p': input 'x' is never used")
                .port("p")
                .state("x")
                .at(Some(3)),
        );
        let text = r.render_human();
        assert!(text.contains("x.ila:3: warning[GL004]"), "{text}");
        assert!(text.contains("1 warning\n"), "{text}");
        let json = r.to_json().to_compact();
        assert!(json.contains("\"code\":\"GL004\""), "{json}");
    }
}
