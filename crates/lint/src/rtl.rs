//! RTL-side lints over the elaborated `gila-rtl` IR: unused inputs,
//! undriven state, and state outside the observable cone.

use std::collections::BTreeSet;
use std::time::Instant;

use gila_expr::ExprRef;
use gila_rtl::RtlModule;
use gila_trace::{Event, SpanKind, Tracer};

use crate::{Code, Diagnostic};

/// Input names conventionally consumed by the clocking/reset
/// infrastructure rather than by next-state logic; never reported as
/// unused.
const EXEMPT_INPUTS: [&str; 6] = ["clk", "clock", "rst", "reset", "rst_n", "resetn"];

fn var_names(m: &RtlModule, roots: &[ExprRef]) -> BTreeSet<String> {
    m.ctx()
        .vars_of(roots)
        .into_iter()
        .filter_map(|v| m.ctx().var_name(v).map(str::to_string))
        .collect()
}

/// Pass 6a: inputs that drive no register, memory, or signal logic.
fn unused_input_pass(m: &RtlModule) -> Vec<Diagnostic> {
    let mut roots: Vec<ExprRef> = Vec::new();
    roots.extend(m.regs().iter().map(|r| r.next));
    roots.extend(m.mems().iter().map(|mm| mm.next));
    roots.extend(m.signals().iter().map(|s| s.expr));
    let used = var_names(m, &roots);
    let mut ds = Vec::new();
    for i in m.inputs() {
        if !used.contains(&i.name) && !EXEMPT_INPUTS.contains(&i.name.as_str()) {
            ds.push(
                Diagnostic::new(
                    Code::RtlUnusedInput,
                    format!(
                        "module '{}': input '{}' drives no logic",
                        m.name(),
                        i.name
                    ),
                )
                .port(m.name())
                .state(&i.name),
            );
        }
    }
    ds
}

/// Pass 6b: registers/memories that hold their value forever and have
/// no reset value — their contents are unconstrained at every cycle.
fn undriven_state_pass(m: &RtlModule) -> Vec<Diagnostic> {
    let mut ds = Vec::new();
    for r in m.regs() {
        if r.next == r.var && r.init.is_none() {
            ds.push(
                Diagnostic::new(
                    Code::RtlUndrivenState,
                    format!(
                        "module '{}': register '{}' is never driven and has no \
                         reset value",
                        m.name(),
                        r.name
                    ),
                )
                .port(m.name())
                .state(&r.name),
            );
        }
    }
    for mm in m.mems() {
        if mm.next == mm.var && mm.init.is_none() {
            ds.push(
                Diagnostic::new(
                    Code::RtlUndrivenState,
                    format!(
                        "module '{}': memory '{}' is never driven and has no \
                         reset contents",
                        m.name(),
                        mm.name
                    ),
                )
                .port(m.name())
                .state(&mm.name),
            );
        }
    }
    ds
}

/// Pass 6c: state elements outside the observable cone — no path
/// through next-state dependencies reaches any output signal. Skipped
/// when the module declares no outputs (nothing is observable, so the
/// cone is undefined).
fn dead_state_pass(m: &RtlModule) -> Vec<Diagnostic> {
    let outputs: Vec<ExprRef> = m
        .signals()
        .iter()
        .filter(|s| s.output)
        .map(|s| s.expr)
        .collect();
    if outputs.is_empty() {
        return Vec::new();
    }
    // Fixpoint: seed with the state names outputs read, then pull in
    // everything the next-state functions of cone members read.
    let mut cone = var_names(m, &outputs);
    loop {
        let mut roots: Vec<ExprRef> = Vec::new();
        roots.extend(
            m.regs()
                .iter()
                .filter(|r| cone.contains(&r.name))
                .map(|r| r.next),
        );
        roots.extend(
            m.mems()
                .iter()
                .filter(|mm| cone.contains(&mm.name))
                .map(|mm| mm.next),
        );
        let grown: BTreeSet<String> = cone.union(&var_names(m, &roots)).cloned().collect();
        if grown.len() == cone.len() {
            break;
        }
        cone = grown;
    }
    let mut ds = Vec::new();
    for r in m.regs() {
        if !cone.contains(&r.name) {
            ds.push(
                Diagnostic::new(
                    Code::RtlDeadState,
                    format!(
                        "module '{}': register '{}' never influences an output",
                        m.name(),
                        r.name
                    ),
                )
                .port(m.name())
                .state(&r.name),
            );
        }
    }
    for mm in m.mems() {
        if !cone.contains(&mm.name) {
            ds.push(
                Diagnostic::new(
                    Code::RtlDeadState,
                    format!(
                        "module '{}': memory '{}' never influences an output",
                        m.name(),
                        mm.name
                    ),
                )
                .port(m.name())
                .state(&mm.name),
            );
        }
    }
    ds
}

/// Lints an elaborated RTL module: unused inputs (GL011), undriven
/// state (GL012), and state outside the observable cone (GL013).
/// Emits one `lint_pass` timing span per pass against `target`.
pub fn lint_rtl(target: &str, m: &RtlModule, tracer: &Tracer) -> Vec<Diagnostic> {
    let mut ds = Vec::new();
    for (pass, f) in [
        ("rtl_unused_input", unused_input_pass as fn(&RtlModule) -> Vec<Diagnostic>),
        ("rtl_undriven_state", undriven_state_pass),
        ("rtl_dead_state", dead_state_pass),
    ] {
        let t0 = Instant::now();
        let found = f(m);
        tracer.record(|| {
            Event::new(SpanKind::LintPass)
                .port(target)
                .label(pass)
                .field("diags", found.len() as u64)
                .field("wall_ns", t0.elapsed().as_nanos() as u64)
        });
        ds.extend(found);
    }
    ds
}
