//! The spec-side pass pipeline: decode proofs, state-usage analysis,
//! width notes, and composition checks.

use std::collections::BTreeSet;
use std::time::Instant;

use gila_core::{dead_instructions, decode_gap, decode_overlaps, ModuleIla, PortIla, StateKind};
use gila_lang::{ElabNote, SpecFile};
use gila_trace::{Event, SpanKind, Tracer};

use crate::{Code, Diagnostic, LintReport};

/// Tuning knobs for a lint run.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// Worker threads for the per-port passes (the SAT-backed decode
    /// proofs dominate); diagnostics come back in declaration order
    /// regardless, so output is identical at any job count.
    pub jobs: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions { jobs: 1 }
    }
}

/// Names a port's instructions read (decode + update right-hand sides)
/// and the states they write.
struct Usage {
    read: BTreeSet<String>,
    written: BTreeSet<String>,
}

fn usage_of(port: &PortIla) -> Usage {
    let mut roots = Vec::new();
    for i in port.instructions() {
        roots.push(i.decode);
        roots.extend(i.updates.values().copied());
    }
    Usage {
        read: port
            .ctx()
            .vars_of(&roots)
            .into_iter()
            .filter_map(|v| port.ctx().var_name(v).map(str::to_string))
            .collect(),
        written: port
            .instructions()
            .iter()
            .flat_map(|i| i.updates.keys().cloned())
            .collect(),
    }
}

/// Pass 1+2: SAT-backed decode completeness/determinism proofs plus
/// dead-instruction detection.
fn decode_pass(port: &PortIla) -> Vec<Diagnostic> {
    let mut ds = Vec::new();
    if port.instructions().is_empty() {
        return ds;
    }
    for name in dead_instructions(port, None) {
        let line = port.find_instruction(&name).and_then(|i| i.line);
        ds.push(
            Diagnostic::new(
                Code::DeadInstruction,
                format!(
                    "port '{}': instruction '{}' can never trigger: its decode \
                     condition is unsatisfiable",
                    port.name(),
                    name
                ),
            )
            .port(port.name())
            .instruction(&name)
            .at(line),
        );
    }
    if let Some(w) = decode_gap(port, None) {
        ds.push(
            Diagnostic::new(
                Code::DecodeGap,
                format!(
                    "port '{}': decode is incomplete: no instruction triggers \
                     on the witness command",
                    port.name()
                ),
            )
            .port(port.name())
            .witness(w),
        );
    }
    for o in decode_overlaps(port, None) {
        let line = port.find_instruction(&o.second).and_then(|i| i.line);
        ds.push(
            Diagnostic::new(
                Code::DecodeOverlap,
                format!(
                    "port '{}': instructions '{}' and '{}' can trigger on the \
                     same command",
                    port.name(),
                    o.first,
                    o.second
                ),
            )
            .port(port.name())
            .instruction(&format!("{} & {}", o.first, o.second))
            .at(line)
            .witness(o.witness),
        );
    }
    ds
}

/// Pass 3: unused / never-written / write-only architectural state.
///
/// `usage` holds every port's read/written sets and `idx` names the
/// port under analysis: a state another port of the same module reads
/// or writes is shared, not dead — sibling usage suppresses the lint.
fn state_pass(port: &PortIla, usage: &[Usage], idx: usize) -> Vec<Diagnostic> {
    let read = &usage[idx].read;
    let written = &usage[idx].written;
    let elsewhere = |f: fn(&Usage) -> &BTreeSet<String>, name: &str| {
        usage
            .iter()
            .enumerate()
            .any(|(j, u)| j != idx && f(u).contains(name))
    };
    let mut ds = Vec::new();
    for i in port.inputs() {
        if !read.contains(&i.name) {
            ds.push(
                Diagnostic::new(
                    Code::UnusedVar,
                    format!("port '{}': input '{}' is never used", port.name(), i.name),
                )
                .port(port.name())
                .state(&i.name)
                .at(i.line),
            );
        }
    }
    for s in port.states() {
        let r = read.contains(&s.name) || elsewhere(|u| &u.read, &s.name);
        let w = written.contains(&s.name) || elsewhere(|u| &u.written, &s.name);
        if !r && !w {
            ds.push(
                Diagnostic::new(
                    Code::UnusedVar,
                    format!(
                        "port '{}': state '{}' is never read or written",
                        port.name(),
                        s.name
                    ),
                )
                .port(port.name())
                .state(&s.name)
                .at(s.line),
            );
        } else if r && !w && s.init.is_none() {
            ds.push(
                Diagnostic::new(
                    Code::ReadNeverWritten,
                    format!(
                        "port '{}': state '{}' is read but never written and \
                         has no reset value",
                        port.name(),
                        s.name
                    ),
                )
                .port(port.name())
                .state(&s.name)
                .at(s.line),
            );
        } else if w && !r && s.kind == StateKind::Internal {
            ds.push(
                Diagnostic::new(
                    Code::WriteOnlyState,
                    format!(
                        "port '{}': internal state '{}' is written but never read",
                        port.name(),
                        s.name
                    ),
                )
                .port(port.name())
                .state(&s.name)
                .at(s.line),
            );
        }
    }
    ds
}

/// Per-port pass results, kept separate per pass so callers can emit
/// one timing span per pass.
struct PortDiags {
    decode: Vec<Diagnostic>,
    state: Vec<Diagnostic>,
    decode_ns: u64,
    state_ns: u64,
}

fn port_diags(port: &PortIla, usage: &[Usage], idx: usize) -> PortDiags {
    let t0 = Instant::now();
    let decode = decode_pass(port);
    let decode_ns = t0.elapsed().as_nanos() as u64;
    let t1 = Instant::now();
    let state = state_pass(port, usage, idx);
    PortDiags {
        decode,
        state,
        decode_ns,
        state_ns: t1.elapsed().as_nanos() as u64,
    }
}

/// Runs the per-port passes, fanning ports out over `opts.jobs` worker
/// threads. Results come back in declaration order, so output does not
/// depend on the job count.
fn run_port_passes(ports: &[&PortIla], opts: &LintOptions) -> Vec<PortDiags> {
    let usage: Vec<Usage> = ports.iter().map(|p| usage_of(p)).collect();
    let usage = &usage;
    let jobs = opts.jobs.max(1).min(ports.len().max(1));
    if jobs <= 1 {
        return ports
            .iter()
            .enumerate()
            .map(|(i, p)| port_diags(p, usage, i))
            .collect();
    }
    let mut slots: Vec<Option<PortDiags>> = Vec::new();
    slots.resize_with(ports.len(), || None);
    std::thread::scope(|scope| {
        let mut pending: Vec<(usize, &mut Option<PortDiags>)> =
            slots.iter_mut().enumerate().collect();
        let mut shards: Vec<Vec<(usize, &mut Option<PortDiags>)>> = Vec::new();
        shards.resize_with(jobs, Vec::new);
        for (i, slot) in pending.drain(..) {
            shards[i % jobs].push((i, slot));
        }
        for shard in shards {
            scope.spawn(move || {
                for (i, slot) in shard {
                    *slot = Some(port_diags(ports[i], usage, i));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker filled slot"))
        .collect()
}

/// Emits one `lint_pass` span for a pass over `target`.
fn span(tracer: &Tracer, target: &str, pass: &str, diags: usize, wall_ns: u64) {
    tracer.record(|| {
        Event::new(SpanKind::LintPass)
            .port(target)
            .label(pass)
            .field("diags", diags as u64)
            .field("wall_ns", wall_ns)
    });
}

/// Collects the per-port findings (interleaved per port, declaration
/// order) and emits one timing span per pass.
fn collect_port_passes(
    report: &mut LintReport,
    ports: &[&PortIla],
    opts: &LintOptions,
    tracer: &Tracer,
) {
    let results = run_port_passes(ports, opts);
    let (mut decode_n, mut decode_ns, mut state_n, mut state_ns) = (0, 0, 0, 0);
    for r in results {
        decode_n += r.decode.len();
        decode_ns += r.decode_ns;
        state_n += r.state.len();
        state_ns += r.state_ns;
        report.diagnostics.extend(r.decode);
        report.diagnostics.extend(r.state);
    }
    span(tracer, &report.target, "decode", decode_n, decode_ns);
    span(tracer, &report.target, "state_usage", state_n, state_ns);
}

/// Lints a set of ports (decode proofs + state usage) and returns the
/// findings in declaration order.
pub fn lint_ports(ports: &[&PortIla], opts: &LintOptions) -> Vec<Diagnostic> {
    let mut report = LintReport::new("");
    collect_port_passes(&mut report, ports, opts, &Tracer::disabled());
    report.diagnostics
}

/// Pass 4: surfaces the implicit width adjustments the elaborator
/// recorded while parsing.
fn width_pass(report: &mut LintReport, notes: &[ElabNote]) {
    for note in notes {
        match note {
            ElabNote::TruncatedAssign {
                port,
                instruction,
                state,
                line,
                from_width,
                to_width,
            } => report.diagnostics.push(
                Diagnostic::new(
                    Code::TruncatedAssign,
                    format!(
                        "port '{port}', instruction '{instruction}': assignment \
                         to '{state}' truncates a bv{from_width} value to bv{to_width}"
                    ),
                )
                .port(port)
                .instruction(instruction)
                .state(state)
                .at(Some(*line)),
            ),
            ElabNote::WidthMismatch {
                port,
                instruction,
                op,
                line,
                left_width,
                right_width,
            } => report.diagnostics.push(
                Diagnostic::new(
                    Code::WidthMismatch,
                    format!(
                        "port '{port}', instruction '{instruction}': operands of \
                         '{op}' have widths bv{left_width} and bv{right_width}; \
                         the narrower is implicitly zero-extended"
                    ),
                )
                .port(port)
                .instruction(instruction)
                .at(Some(*line)),
            ),
        }
    }
}

/// Pass 5: composition lints — unresolved `integrate` gaps and shared
/// updated states no directive covers, surfaced statically.
fn compose_pass(report: &mut LintReport, spec: &SpecFile) {
    for integ in &spec.integrations {
        for gap in &integ.gaps {
            report.diagnostics.push(
                Diagnostic::new(
                    Code::UnresolvedConflict,
                    format!(
                        "integrate '{}' (resolve {}): {}",
                        integ.name, integ.resolver, gap
                    ),
                )
                .port(&integ.name)
                .state(&gap.state)
                .at(Some(integ.line)),
            );
        }
    }
    for state in &spec.unintegrated_shared {
        let updaters: Vec<&str> = spec
            .ports
            .iter()
            .filter(|p| {
                p.instructions()
                    .iter()
                    .any(|i| i.updates.contains_key(state))
            })
            .map(|p| p.name())
            .collect();
        let line = spec
            .ports
            .iter()
            .find(|p| updaters.contains(&p.name()))
            .and_then(|p| p.find_state(state))
            .and_then(|s| s.line);
        report.diagnostics.push(
            Diagnostic::new(
                Code::UnintegratedShared,
                format!(
                    "state '{}' is updated by ports {} but no integrate \
                     directive covers them; composing this module will fail",
                    state,
                    updaters
                        .iter()
                        .map(|p| format!("'{p}'"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )
            .state(state)
            .at(line),
        );
    }
}

/// Lints a leniently parsed `.ila` file: per-port decode proofs and
/// state usage on the *pre-integration* ports (where source spans
/// live), the elaborator's width notes, and the composition findings.
pub fn lint_spec(
    target: &str,
    spec: &SpecFile,
    opts: &LintOptions,
    tracer: &Tracer,
) -> LintReport {
    let mut report = LintReport::new(target);
    let refs: Vec<&PortIla> = spec.ports.iter().collect();
    collect_port_passes(&mut report, &refs, opts, tracer);
    let t0 = Instant::now();
    let before = report.diagnostics.len();
    width_pass(&mut report, &spec.notes);
    span(
        tracer,
        target,
        "width",
        report.diagnostics.len() - before,
        t0.elapsed().as_nanos() as u64,
    );
    let t1 = Instant::now();
    let before = report.diagnostics.len();
    compose_pass(&mut report, spec);
    span(
        tracer,
        target,
        "compose",
        report.diagnostics.len() - before,
        t1.elapsed().as_nanos() as u64,
    );
    report
}

/// Lints a built module-ILA (e.g. a registry design): the per-port
/// decode proofs and state-usage passes. Built models carry no source
/// spans or elaboration notes, so the width pass does not apply, and
/// composition already succeeded by construction.
pub fn lint_module(
    target: &str,
    module: &ModuleIla,
    opts: &LintOptions,
    tracer: &Tracer,
) -> LintReport {
    let mut report = LintReport::new(target);
    let refs: Vec<&PortIla> = module.ports().iter().collect();
    collect_port_passes(&mut report, &refs, opts, tracer);
    report
}
