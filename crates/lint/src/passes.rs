//! The spec-side pass pipeline: decode proofs, state-usage analysis,
//! width notes, and composition checks.

use std::collections::BTreeSet;
use std::time::Instant;

use gila_absint::{analyze_port, uninit_reads, DecodeOracle};
use gila_core::{
    decode_gap, decode_overlap_pair, instruction_dead, ModuleIla, PortIla, StateKind,
};
use gila_expr::{abs_eval, abs_eval_nodes, AbsBool, AbsValue, ExprNode, Op, Sort};
use gila_lang::{ElabNote, SpecFile};
use gila_trace::{Event, SpanKind, Tracer};

use crate::{Code, Diagnostic, LintReport, LintStats};

/// Tuning knobs for a lint run.
#[derive(Clone, Debug)]
pub struct LintOptions {
    /// Worker threads for the per-port passes (the SAT-backed decode
    /// proofs dominate); diagnostics come back in declaration order
    /// regardless, so output is identical at any job count.
    pub jobs: usize,
    /// Try the abstract-interpretation verdict before SAT on the decode
    /// lints (GL001–GL003). Diagnostics are identical either way — the
    /// fast path only skips SAT calls whose outcome it proves, and any
    /// finding that carries a witness still goes to the solver — so
    /// this is purely a performance knob (`--no-absint` in the CLI).
    /// The GL014–GL017 passes are analyses, not fast paths, and run
    /// regardless.
    pub absint: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            jobs: 1,
            absint: true,
        }
    }
}

/// Names a port's instructions read (decode + update right-hand sides)
/// and the states they write.
struct Usage {
    read: BTreeSet<String>,
    written: BTreeSet<String>,
}

fn usage_of(port: &PortIla) -> Usage {
    let mut roots = Vec::new();
    for i in port.instructions() {
        roots.push(i.decode);
        roots.extend(i.updates.values().copied());
    }
    Usage {
        read: port
            .ctx()
            .vars_of(&roots)
            .into_iter()
            .filter_map(|v| port.ctx().var_name(v).map(str::to_string))
            .collect(),
        written: port
            .instructions()
            .iter()
            .flat_map(|i| i.updates.keys().cloned())
            .collect(),
    }
}

/// Pass 1+2: decode completeness/determinism proofs plus dead-
/// instruction detection. With `use_absint`, each SAT query is first
/// offered to the [`DecodeOracle`]; a conclusive abstract verdict
/// settles the question without the solver. Verdicts that *report* a
/// finding with a witness (a gap or an overlap) always go to SAT so
/// the diagnostic — witness bytes included — is identical either way.
///
/// Returns the diagnostics and the declaration indices of dead
/// instructions (consumed by the GL017 pass, which must not re-report
/// them).
fn decode_pass(
    port: &PortIla,
    use_absint: bool,
    stats: &mut LintStats,
) -> (Vec<Diagnostic>, Vec<usize>) {
    let mut ds = Vec::new();
    let mut dead = Vec::new();
    if port.instructions().is_empty() {
        return (ds, dead);
    }
    let oracle = if use_absint {
        Some(DecodeOracle::new(port))
    } else {
        None
    };
    let n = port.instructions().len();
    let mut all_dead_static = true;
    for idx in 0..n {
        let is_dead = match oracle.as_ref().and_then(|o| o.decode_satisfiable(idx)) {
            Some(sat) => {
                stats.sat_calls_avoided += 1;
                !sat
            }
            None => {
                all_dead_static = false;
                instruction_dead(port, idx, None)
            }
        };
        if !is_dead {
            continue;
        }
        dead.push(idx);
        let name = port.instructions()[idx].name.clone();
        let line = port.find_instruction(&name).and_then(|i| i.line);
        ds.push(
            Diagnostic::new(
                Code::DeadInstruction,
                format!(
                    "port '{}': instruction '{}' can never trigger: its decode \
                     condition is unsatisfiable",
                    port.name(),
                    name
                ),
            )
            .port(port.name())
            .instruction(&name)
            .at(line),
        );
    }
    if all_dead_static {
        stats.lints_discharged_static += 1;
    }
    if oracle.as_ref().and_then(|o| o.no_gap()) == Some(true) {
        stats.sat_calls_avoided += 1;
        stats.lints_discharged_static += 1;
    } else if let Some(w) = decode_gap(port, None) {
        ds.push(
            Diagnostic::new(
                Code::DecodeGap,
                format!(
                    "port '{}': decode is incomplete: no instruction triggers \
                     on the witness command",
                    port.name()
                ),
            )
            .port(port.name())
            .witness(w),
        );
    }
    let mut all_pairs_static = true;
    for i in 0..n {
        for j in (i + 1)..n {
            if oracle.as_ref().and_then(|o| o.pair_disjoint(i, j)) == Some(true) {
                stats.sat_calls_avoided += 1;
                continue;
            }
            all_pairs_static = false;
            let Some(o) = decode_overlap_pair(port, i, j, None) else {
                continue;
            };
            let line = port.find_instruction(&o.second).and_then(|i| i.line);
            ds.push(
                Diagnostic::new(
                    Code::DecodeOverlap,
                    format!(
                        "port '{}': instructions '{}' and '{}' can trigger on the \
                         same command",
                        port.name(),
                        o.first,
                        o.second
                    ),
                )
                .port(port.name())
                .instruction(&format!("{} & {}", o.first, o.second))
                .at(line)
                .witness(o.witness),
            );
        }
    }
    if n > 1 && all_pairs_static {
        stats.lints_discharged_static += 1;
    }
    (ds, dead)
}

/// Pass 3: unused / never-written / write-only architectural state.
///
/// `usage` holds every port's read/written sets and `idx` names the
/// port under analysis: a state another port of the same module reads
/// or writes is shared, not dead — sibling usage suppresses the lint.
fn state_pass(port: &PortIla, usage: &[Usage], idx: usize) -> Vec<Diagnostic> {
    let read = &usage[idx].read;
    let written = &usage[idx].written;
    let elsewhere = |f: fn(&Usage) -> &BTreeSet<String>, name: &str| {
        usage
            .iter()
            .enumerate()
            .any(|(j, u)| j != idx && f(u).contains(name))
    };
    let mut ds = Vec::new();
    for i in port.inputs() {
        if !read.contains(&i.name) {
            ds.push(
                Diagnostic::new(
                    Code::UnusedVar,
                    format!("port '{}': input '{}' is never used", port.name(), i.name),
                )
                .port(port.name())
                .state(&i.name)
                .at(i.line),
            );
        }
    }
    for s in port.states() {
        let r = read.contains(&s.name) || elsewhere(|u| &u.read, &s.name);
        let w = written.contains(&s.name) || elsewhere(|u| &u.written, &s.name);
        if !r && !w {
            ds.push(
                Diagnostic::new(
                    Code::UnusedVar,
                    format!(
                        "port '{}': state '{}' is never read or written",
                        port.name(),
                        s.name
                    ),
                )
                .port(port.name())
                .state(&s.name)
                .at(s.line),
            );
        } else if r && !w && s.init.is_none() {
            ds.push(
                Diagnostic::new(
                    Code::ReadNeverWritten,
                    format!(
                        "port '{}': state '{}' is read but never written and \
                         has no reset value",
                        port.name(),
                        s.name
                    ),
                )
                .port(port.name())
                .state(&s.name)
                .at(s.line),
            );
        } else if w && !r && s.kind == StateKind::Internal {
            ds.push(
                Diagnostic::new(
                    Code::WriteOnlyState,
                    format!(
                        "port '{}': internal state '{}' is written but never read",
                        port.name(),
                        s.name
                    ),
                )
                .port(port.name())
                .state(&s.name)
                .at(s.line),
            );
        }
    }
    ds
}

/// Pass 6 ("absint"): the word-level abstract-interpretation lints.
///
/// * **GL014** — an init-less state some instruction can consume before
///   any instruction has written it ([`uninit_reads`]).
/// * **GL015** — a truncation (`extract [hi:0]`) that provably drops a
///   set bit under the port's inductive fixpoint environment.
/// * **GL016** — an output state the fixpoint proves equal to one
///   constant in every reachable state.
/// * **GL017** — an instruction whose decode is satisfiable in
///   isolation (not GL003-dead) yet provably false in every reachable
///   state.
///
/// The pass is an analysis, not a fast path: it runs at any
/// `LintOptions::absint` setting, so reports are identical with the
/// fast path on or off.
fn absint_pass(port: &PortIla, dead: &[usize]) -> Vec<Diagnostic> {
    let mut ds = Vec::new();
    for r in uninit_reads(port) {
        let line = port.find_state(&r.state).and_then(|s| s.line);
        ds.push(
            Diagnostic::new(
                Code::UninitStateRead,
                format!(
                    "port '{}': state '{}' has no reset value but instruction \
                     '{}' can read it before any instruction has written it",
                    port.name(),
                    r.state,
                    r.instruction
                ),
            )
            .port(port.name())
            .instruction(&r.instruction)
            .state(&r.state)
            .at(line),
        );
    }
    if port.instructions().is_empty() {
        return ds;
    }
    let analysis = analyze_port(port);
    let ctx = port.ctx();
    // GL015: a truncation at the *root* of an update — the shape the
    // elaborator gives a truncating assignment, as opposed to a
    // deliberate nested bit-slice — whose dropped high bits are
    // provably set under the reachable-state environment refined by
    // the instruction's own decode.
    for instr in port.instructions() {
        let Some(env) = gila_absint::assume(ctx, instr.decode, &analysis.env) else {
            // Decode refuted in every reachable state: GL017 territory.
            continue;
        };
        for (state, rhs) in &instr.updates {
            let ExprNode::App {
                op: Op::BvExtract { hi, lo: 0 },
                args,
                ..
            } = ctx.node(*rhs)
            else {
                continue;
            };
            let arg = args[0];
            let Sort::Bv(w) = ctx.sort_of(arg) else {
                continue;
            };
            if hi + 1 >= w {
                continue;
            }
            let vals = abs_eval_nodes(ctx, &[*rhs], &env);
            let Some(AbsValue::Bv(bv)) = vals.get(&arg) else {
                continue;
            };
            if bv.is_bottom() {
                continue;
            }
            if let Some(bit) = (hi + 1..w).find(|&b| bv.known_one().bit(b)) {
                ds.push(
                    Diagnostic::new(
                        Code::TruncatedSetBits,
                        format!(
                            "port '{}', instruction '{}': assignment to '{}' \
                             truncates bv{} to bv{} and drops bit {}, which \
                             is provably set",
                            port.name(),
                            instr.name,
                            state,
                            w,
                            hi + 1,
                            bit
                        ),
                    )
                    .port(port.name())
                    .instruction(&instr.name)
                    .state(state)
                    .at(instr.line),
                );
            }
        }
    }
    // GL016: outputs some instruction writes, yet the fixpoint proves
    // they can only ever hold one value. Never-written outputs are
    // GL004's territory.
    let written: BTreeSet<&str> = port
        .instructions()
        .iter()
        .flat_map(|i| i.updates.keys())
        .map(String::as_str)
        .collect();
    for s in port.states() {
        if s.kind != StateKind::Output || !written.contains(s.name.as_str()) {
            continue;
        }
        let Some(v) = analysis.env.get(s.var) else {
            continue;
        };
        if let Some(c) = v.as_exact() {
            ds.push(
                Diagnostic::new(
                    Code::ConstantOutput,
                    format!(
                        "port '{}': output '{}' is written but provably constant: \
                         it reads {} in every reachable state",
                        port.name(),
                        s.name,
                        crate::value_str(&c)
                    ),
                )
                .port(port.name())
                .state(&s.name)
                .at(s.line),
            );
        }
    }
    // GL017: reachability-aware dead decode. GL003 (arbitrary-state
    // unsatisfiability) subsumes these instructions when it fires, so
    // SAT-confirmed dead ones are skipped.
    for (idx, instr) in port.instructions().iter().enumerate() {
        if dead.contains(&idx) {
            continue;
        }
        if abs_eval(ctx, instr.decode, &analysis.env) == AbsValue::Bool(AbsBool::False) {
            ds.push(
                Diagnostic::new(
                    Code::UnreachableInstruction,
                    format!(
                        "port '{}': instruction '{}' can never trigger: its decode \
                         condition is provably false in every reachable state",
                        port.name(),
                        instr.name
                    ),
                )
                .port(port.name())
                .instruction(&instr.name)
                .at(instr.line),
            );
        }
    }
    ds
}

/// Per-port pass results, kept separate per pass so callers can emit
/// one timing span per pass.
struct PortDiags {
    decode: Vec<Diagnostic>,
    state: Vec<Diagnostic>,
    absint: Vec<Diagnostic>,
    decode_ns: u64,
    state_ns: u64,
    absint_ns: u64,
    stats: LintStats,
}

fn port_diags(port: &PortIla, usage: &[Usage], idx: usize, use_absint: bool) -> PortDiags {
    let mut stats = LintStats::default();
    let t0 = Instant::now();
    let (decode, dead) = decode_pass(port, use_absint, &mut stats);
    let decode_ns = t0.elapsed().as_nanos() as u64;
    let t1 = Instant::now();
    let state = state_pass(port, usage, idx);
    let state_ns = t1.elapsed().as_nanos() as u64;
    let t2 = Instant::now();
    let absint = absint_pass(port, &dead);
    let absint_ns = t2.elapsed().as_nanos() as u64;
    stats.absint_ns = absint_ns;
    PortDiags {
        decode,
        state,
        absint,
        decode_ns,
        state_ns,
        absint_ns,
        stats,
    }
}

/// Runs the per-port passes, fanning ports out over `opts.jobs` worker
/// threads. Results come back in declaration order, so output does not
/// depend on the job count.
fn run_port_passes(ports: &[&PortIla], opts: &LintOptions) -> Vec<PortDiags> {
    let usage: Vec<Usage> = ports.iter().map(|p| usage_of(p)).collect();
    let usage = &usage;
    let jobs = opts.jobs.max(1).min(ports.len().max(1));
    if jobs <= 1 {
        return ports
            .iter()
            .enumerate()
            .map(|(i, p)| port_diags(p, usage, i, opts.absint))
            .collect();
    }
    let mut slots: Vec<Option<PortDiags>> = Vec::new();
    slots.resize_with(ports.len(), || None);
    std::thread::scope(|scope| {
        let mut pending: Vec<(usize, &mut Option<PortDiags>)> =
            slots.iter_mut().enumerate().collect();
        let mut shards: Vec<Vec<(usize, &mut Option<PortDiags>)>> = Vec::new();
        shards.resize_with(jobs, Vec::new);
        for (i, slot) in pending.drain(..) {
            shards[i % jobs].push((i, slot));
        }
        for shard in shards {
            scope.spawn(move || {
                for (i, slot) in shard {
                    *slot = Some(port_diags(ports[i], usage, i, opts.absint));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker filled slot"))
        .collect()
}

/// Emits one `lint_pass` span for a pass over `target`.
fn span(tracer: &Tracer, target: &str, pass: &str, diags: usize, wall_ns: u64) {
    tracer.record(|| {
        Event::new(SpanKind::LintPass)
            .port(target)
            .label(pass)
            .field("diags", diags as u64)
            .field("wall_ns", wall_ns)
    });
}

/// Collects the per-port findings (interleaved per port, declaration
/// order) and emits one timing span per pass.
fn collect_port_passes(
    report: &mut LintReport,
    ports: &[&PortIla],
    opts: &LintOptions,
    tracer: &Tracer,
) {
    let results = run_port_passes(ports, opts);
    let (mut decode_n, mut decode_ns, mut state_n, mut state_ns) = (0, 0, 0, 0);
    let (mut absint_n, mut absint_ns) = (0, 0);
    for r in results {
        decode_n += r.decode.len();
        decode_ns += r.decode_ns;
        state_n += r.state.len();
        state_ns += r.state_ns;
        absint_n += r.absint.len();
        absint_ns += r.absint_ns;
        report.stats.merge(&r.stats);
        report.diagnostics.extend(r.decode);
        report.diagnostics.extend(r.state);
        report.diagnostics.extend(r.absint);
    }
    span(tracer, &report.target, "decode", decode_n, decode_ns);
    span(tracer, &report.target, "state_usage", state_n, state_ns);
    span(tracer, &report.target, "absint", absint_n, absint_ns);
}

/// Lints a set of ports (decode proofs + state usage) and returns the
/// findings in declaration order.
pub fn lint_ports(ports: &[&PortIla], opts: &LintOptions) -> Vec<Diagnostic> {
    let mut report = LintReport::new("");
    collect_port_passes(&mut report, ports, opts, &Tracer::disabled());
    report.diagnostics
}

/// Pass 4: surfaces the implicit width adjustments the elaborator
/// recorded while parsing.
fn width_pass(report: &mut LintReport, notes: &[ElabNote]) {
    for note in notes {
        match note {
            ElabNote::TruncatedAssign {
                port,
                instruction,
                state,
                line,
                from_width,
                to_width,
            } => report.diagnostics.push(
                Diagnostic::new(
                    Code::TruncatedAssign,
                    format!(
                        "port '{port}', instruction '{instruction}': assignment \
                         to '{state}' truncates a bv{from_width} value to bv{to_width}"
                    ),
                )
                .port(port)
                .instruction(instruction)
                .state(state)
                .at(Some(*line)),
            ),
            ElabNote::WidthMismatch {
                port,
                instruction,
                op,
                line,
                left_width,
                right_width,
            } => report.diagnostics.push(
                Diagnostic::new(
                    Code::WidthMismatch,
                    format!(
                        "port '{port}', instruction '{instruction}': operands of \
                         '{op}' have widths bv{left_width} and bv{right_width}; \
                         the narrower is implicitly zero-extended"
                    ),
                )
                .port(port)
                .instruction(instruction)
                .at(Some(*line)),
            ),
        }
    }
}

/// Pass 5: composition lints — unresolved `integrate` gaps and shared
/// updated states no directive covers, surfaced statically.
fn compose_pass(report: &mut LintReport, spec: &SpecFile) {
    for integ in &spec.integrations {
        for gap in &integ.gaps {
            report.diagnostics.push(
                Diagnostic::new(
                    Code::UnresolvedConflict,
                    format!(
                        "integrate '{}' (resolve {}): {}",
                        integ.name, integ.resolver, gap
                    ),
                )
                .port(&integ.name)
                .state(&gap.state)
                .at(Some(integ.line)),
            );
        }
    }
    for state in &spec.unintegrated_shared {
        let updaters: Vec<&str> = spec
            .ports
            .iter()
            .filter(|p| {
                p.instructions()
                    .iter()
                    .any(|i| i.updates.contains_key(state))
            })
            .map(|p| p.name())
            .collect();
        let line = spec
            .ports
            .iter()
            .find(|p| updaters.contains(&p.name()))
            .and_then(|p| p.find_state(state))
            .and_then(|s| s.line);
        report.diagnostics.push(
            Diagnostic::new(
                Code::UnintegratedShared,
                format!(
                    "state '{}' is updated by ports {} but no integrate \
                     directive covers them; composing this module will fail",
                    state,
                    updaters
                        .iter()
                        .map(|p| format!("'{p}'"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )
            .state(state)
            .at(line),
        );
    }
}

/// Lints a leniently parsed `.ila` file: per-port decode proofs and
/// state usage on the *pre-integration* ports (where source spans
/// live), the elaborator's width notes, and the composition findings.
pub fn lint_spec(
    target: &str,
    spec: &SpecFile,
    opts: &LintOptions,
    tracer: &Tracer,
) -> LintReport {
    let mut report = LintReport::new(target);
    let refs: Vec<&PortIla> = spec.ports.iter().collect();
    collect_port_passes(&mut report, &refs, opts, tracer);
    let t0 = Instant::now();
    let before = report.diagnostics.len();
    width_pass(&mut report, &spec.notes);
    span(
        tracer,
        target,
        "width",
        report.diagnostics.len() - before,
        t0.elapsed().as_nanos() as u64,
    );
    let t1 = Instant::now();
    let before = report.diagnostics.len();
    compose_pass(&mut report, spec);
    span(
        tracer,
        target,
        "compose",
        report.diagnostics.len() - before,
        t1.elapsed().as_nanos() as u64,
    );
    report
}

/// Lints a built module-ILA (e.g. a registry design): the per-port
/// decode proofs and state-usage passes. Built models carry no source
/// spans or elaboration notes, so the width pass does not apply, and
/// composition already succeeded by construction.
pub fn lint_module(
    target: &str,
    module: &ModuleIla,
    opts: &LintOptions,
    tracer: &Tracer,
) -> LintReport {
    let mut report = LintReport::new(target);
    let refs: Vec<&PortIla> = module.ports().iter().collect();
    collect_port_passes(&mut report, &refs, opts, tracer);
    report
}
