//! Lexer for the `.ila` specification language.

use std::fmt;

use gila_expr::BitVecValue;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Number: unsized decimal or sized Verilog-style literal.
    Number {
        /// Declared width for sized literals.
        width: Option<u32>,
        /// The value.
        value: BitVecValue,
    },
    /// Operator or punctuation.
    Sym(&'static str),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number { width, value } => match width {
                Some(w) => write!(f, "{w}'h{value:x}"),
                None => write!(f, "{}", value.to_u64()),
            },
            Token::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// A token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Source line.
    pub line: usize,
}

/// A lexing or parsing error with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IlaSyntaxError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl IlaSyntaxError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> Self {
        IlaSyntaxError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for IlaSyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ila syntax error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for IlaSyntaxError {}

const MULTI: &[&str] = &[":=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>"];
const SINGLE: &[(char, &str)] = &[
    ('{', "{"),
    ('}', "}"),
    ('(', "("),
    (')', ")"),
    ('[', "["),
    (']', "]"),
    (',', ","),
    (';', ";"),
    (':', ":"),
    ('=', "="),
    ('<', "<"),
    ('>', ">"),
    ('+', "+"),
    ('-', "-"),
    ('*', "*"),
    ('/', "/"),
    ('%', "%"),
    ('&', "&"),
    ('|', "|"),
    ('^', "^"),
    ('~', "~"),
    ('!', "!"),
    ('?', "?"),
];

/// Tokenizes `.ila` source text.
///
/// # Errors
///
/// Returns an [`IlaSyntaxError`] for malformed literals or unexpected
/// characters.
pub fn lex(src: &str) -> Result<Vec<SpannedToken>, IlaSyntaxError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(SpannedToken {
                token: Token::Ident(chars[start..i].iter().collect()),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
            let dec: String = chars[start..i].iter().filter(|c| **c != '_').collect();
            if chars.get(i) == Some(&'\'') {
                let width: u32 = dec
                    .parse()
                    .map_err(|_| IlaSyntaxError::new(line, format!("bad width {dec:?}")))?;
                if width == 0 {
                    return Err(IlaSyntaxError::new(line, "zero-width literal"));
                }
                i += 1;
                let base = chars
                    .get(i)
                    .copied()
                    .ok_or_else(|| IlaSyntaxError::new(line, "missing literal base"))?;
                i += 1;
                let dstart = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let digits: String = chars[dstart..i].iter().filter(|c| **c != '_').collect();
                let raw = match base.to_ascii_lowercase() {
                    'h' => BitVecValue::parse_hex(&digits),
                    'b' => BitVecValue::parse_binary(&digits),
                    'd' => digits
                        .parse::<u64>()
                        .ok()
                        .map(|v| BitVecValue::from_u64(v, 64)),
                    _ => None,
                }
                .ok_or_else(|| {
                    IlaSyntaxError::new(line, format!("bad {base}-literal {digits:?}"))
                })?;
                let value = if raw.width() >= width {
                    raw.extract(width - 1, 0)
                } else {
                    raw.zext(width)
                };
                out.push(SpannedToken {
                    token: Token::Number {
                        width: Some(width),
                        value,
                    },
                    line,
                });
            } else {
                let v: u64 = dec
                    .parse()
                    .map_err(|_| IlaSyntaxError::new(line, format!("bad number {dec:?}")))?;
                out.push(SpannedToken {
                    token: Token::Number {
                        width: None,
                        value: BitVecValue::from_u64(v, 64),
                    },
                    line,
                });
            }
            continue;
        }
        let rest: String = chars[i..chars.len().min(i + 2)].iter().collect();
        if let Some(&m) = MULTI.iter().find(|m| rest.starts_with(**m)) {
            out.push(SpannedToken {
                token: Token::Sym(m),
                line,
            });
            i += m.len();
            continue;
        }
        if let Some(&(_, s)) = SINGLE.iter().find(|&&(ch, _)| ch == c) {
            out.push(SpannedToken {
                token: Token::Sym(s),
                line,
            });
            i += 1;
            continue;
        }
        return Err(IlaSyntaxError::new(line, format!("unexpected character {c:?}")));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_declarations_and_assign() {
        let toks = lex("state cnt : bv8 init 0\ncnt := cnt + 1").unwrap();
        assert_eq!(toks[0].token, Token::Ident("state".into()));
        assert_eq!(toks[3].token, Token::Ident("bv8".into()));
        assert!(toks.iter().any(|t| t.token == Token::Sym(":=")));
    }

    #[test]
    fn sized_literals() {
        let toks = lex("4'b1010 8'hff 10'd33").unwrap();
        let Token::Number { width, value } = &toks[0].token else {
            panic!()
        };
        assert_eq!((*width, value.to_u64()), (Some(4), 0b1010));
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("a // comment\nb").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn errors() {
        assert!(lex("@").is_err());
        assert!(lex("3'q0").is_err());
        assert!(lex("0'h0").is_err());
    }
}
