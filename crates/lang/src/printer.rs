//! Printing [`ModuleIla`]s back to `.ila` text.
//!
//! Together with [`crate::parse_ila`] this round-trips every model —
//! including integrated ports, whose resolver-generated if-then-else and
//! `store(...)` update chains print as plain expressions. The test suite
//! round-trips all eight case studies and proves per-instruction decode
//! and update equivalence between the original and reparsed models.

use std::fmt;

use gila_core::{ModuleIla, PortIla, StateKind};
use gila_expr::{ExprCtx, ExprNode, ExprRef, Op, Sort};

/// An error printing a model: an expression form with no `.ila` syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrintIlaError {
    message: String,
}

impl fmt::Display for PrintIlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot print ila: {}", self.message)
    }
}

impl std::error::Error for PrintIlaError {}

fn err(message: impl Into<String>) -> PrintIlaError {
    PrintIlaError {
        message: message.into(),
    }
}

fn sort_text(sort: Sort) -> String {
    match sort {
        Sort::Bool => "bool".to_string(),
        Sort::Bv(w) => format!("bv{w}"),
        Sort::Mem {
            addr_width,
            data_width,
        } => format!("mem[{addr_width}, {data_width}]"),
    }
}

/// Renders a bit-vector- or memory-sorted expression in `.ila` syntax.
fn bv_text(ctx: &ExprCtx, e: ExprRef) -> Result<String, PrintIlaError> {
    Ok(match ctx.node(e) {
        ExprNode::BvConst(v) => format!("{}'h{:x}", v.width(), v),
        ExprNode::Var { name, .. } => name.clone(),
        ExprNode::MemConst(_) => return Err(err("memory constants")),
        ExprNode::BoolConst(_) => return Err(err("bare boolean constants in bv positions")),
        ExprNode::App { op, args, .. } => {
            let bin = |sym: &str| -> Result<String, PrintIlaError> {
                Ok(format!(
                    "({} {sym} {})",
                    bv_text(ctx, args[0])?,
                    bv_text(ctx, args[1])?
                ))
            };
            match op {
                Op::BvNot => format!("(~{})", bv_text(ctx, args[0])?),
                Op::BvNeg => format!("(-{})", bv_text(ctx, args[0])?),
                Op::BvAnd => bin("&")?,
                Op::BvOr => bin("|")?,
                Op::BvXor => bin("^")?,
                Op::BvAdd => bin("+")?,
                Op::BvSub => bin("-")?,
                Op::BvMul => bin("*")?,
                Op::BvUdiv => bin("/")?,
                Op::BvUrem => bin("%")?,
                Op::BvShl => bin("<<")?,
                Op::BvLshr => bin(">>")?,
                Op::BvAshr => return Err(err("arithmetic shifts have no .ila syntax")),
                Op::BvConcat => format!(
                    "{{{}, {}}}",
                    bv_text(ctx, args[0])?,
                    bv_text(ctx, args[1])?
                ),
                Op::BvExtract { hi, lo } => match ctx.node(args[0]) {
                    ExprNode::Var { name, .. } => format!("{name}[{hi}:{lo}]"),
                    _ => format!("({})[{hi}:{lo}]", bv_text(ctx, args[0])?),
                },
                Op::BvZext { to } => {
                    let from = ctx.sort_of(args[0]).bv_width().expect("bv");
                    format!("{{{}'b0, {}}}", to - from, bv_text(ctx, args[0])?)
                }
                Op::BvSext { .. } => return Err(err("sign extension has no .ila syntax")),
                Op::Ite => {
                    // Condition is boolean; branches bv or mem.
                    format!(
                        "({} ? {} : {})",
                        bool_text(ctx, args[0])?,
                        bv_text(ctx, args[1])?,
                        bv_text(ctx, args[2])?
                    )
                }
                Op::MemRead => match ctx.node(args[0]) {
                    ExprNode::Var { name, .. } => {
                        format!("{name}[{}]", bv_text(ctx, args[1])?)
                    }
                    // Reads of composite memories print via store(): m[a]
                    // works only on names, so spell it as a nested read.
                    _ => return Err(err("reads of composite memory expressions")),
                },
                Op::MemWrite => format!(
                    "store({}, {}, {})",
                    bv_text(ctx, args[0])?,
                    bv_text(ctx, args[1])?,
                    bv_text(ctx, args[2])?
                ),
                Op::BoolToBv => format!("({} ? 1'b1 : 1'b0)", bool_text(ctx, args[0])?),
                other => return Err(err(format!("{other:?} in a bv position"))),
            }
        }
    })
}

/// Renders a boolean-sorted expression in `.ila` condition syntax
/// (comparisons produce 1-bit values that `when` treats as truth).
fn bool_text(ctx: &ExprCtx, e: ExprRef) -> Result<String, PrintIlaError> {
    Ok(match ctx.node(e) {
        ExprNode::BoolConst(b) => if *b { "1" } else { "0" }.to_string(),
        ExprNode::Var { name, .. } => {
            return Err(err(format!(
                "boolean variable {name:?} (model booleans as bv1)"
            )))
        }
        ExprNode::App { op, args, .. } => match op {
            Op::Not => format!("(!{})", bool_text(ctx, args[0])?),
            Op::And => format!(
                "({} && {})",
                bool_text(ctx, args[0])?,
                bool_text(ctx, args[1])?
            ),
            Op::Or => format!(
                "({} || {})",
                bool_text(ctx, args[0])?,
                bool_text(ctx, args[1])?
            ),
            Op::Implies => format!(
                "((!{}) || {})",
                bool_text(ctx, args[0])?,
                bool_text(ctx, args[1])?
            ),
            Op::Iff => format!(
                "(({} ? 1'b1 : 1'b0) == ({} ? 1'b1 : 1'b0))",
                bool_text(ctx, args[0])?,
                bool_text(ctx, args[1])?
            ),
            Op::Xor => format!(
                "(({} ? 1'b1 : 1'b0) != ({} ? 1'b1 : 1'b0))",
                bool_text(ctx, args[0])?,
                bool_text(ctx, args[1])?
            ),
            Op::Ite => format!(
                "({} ? ({} ? 1'b1 : 1'b0) : ({} ? 1'b1 : 1'b0)) == 1'b1",
                bool_text(ctx, args[0])?,
                bool_text(ctx, args[1])?,
                bool_text(ctx, args[2])?
            ),
            Op::Eq => {
                if ctx.sort_of(args[0]).is_mem() {
                    return Err(err("memory equality has no .ila syntax"));
                }
                format!(
                    "({} == {})",
                    bv_text(ctx, args[0])?,
                    bv_text(ctx, args[1])?
                )
            }
            Op::BvUlt => format!(
                "({} < {})",
                bv_text(ctx, args[0])?,
                bv_text(ctx, args[1])?
            ),
            Op::BvUle => format!(
                "({} <= {})",
                bv_text(ctx, args[0])?,
                bv_text(ctx, args[1])?
            ),
            Op::BvSlt | Op::BvSle => {
                return Err(err("signed comparisons have no .ila syntax"))
            }
            other => return Err(err(format!("{other:?} in a boolean position"))),
        },
        _ => return Err(err("unexpected boolean leaf")),
    })
}

/// Renders one port as an `.ila` `port` block.
pub fn port_to_ila_text(port: &PortIla) -> Result<String, PrintIlaError> {
    let ctx = port.ctx();
    let mut out = String::new();
    out.push_str(&format!("port {} {{\n", sanitize_port_name(port.name())));
    for i in port.inputs() {
        out.push_str(&format!("  input {} : {}\n", i.name, sort_text(i.sort)));
    }
    for s in port.states() {
        let kw = match s.kind {
            StateKind::Output => "output state",
            StateKind::Internal => "state",
        };
        let init = match &s.init {
            Some(gila_expr::Value::Bv(v)) => format!(" init {}'h{:x}", v.width(), v),
            Some(gila_expr::Value::Bool(b)) => format!(" init {}", *b as u8),
            Some(gila_expr::Value::Mem(m)) if m.iter_written().count() == 0 => {
                format!(
                    " init {}'h{:x}",
                    m.default_word().width(),
                    m.default_word()
                )
            }
            Some(gila_expr::Value::Mem(_)) => {
                return Err(err("sparse memory initial values have no .ila syntax"))
            }
            None => String::new(),
        };
        out.push_str(&format!(
            "  {kw} {} : {}{init}\n",
            s.name,
            sort_text(s.sort)
        ));
    }
    for instr in port.instructions() {
        let head = match &instr.parent {
            Some(p) => format!(
                "  sub {} of {}",
                sanitize_instr_name(&instr.name),
                sanitize_instr_name(p)
            ),
            None => format!("  instr {}", sanitize_instr_name(&instr.name)),
        };
        out.push_str(&format!(
            "{head} when {} {{\n",
            bool_text(ctx, instr.decode)?
        ));
        for (state, &update) in &instr.updates {
            out.push_str(&format!("    {state} := {}\n", bv_text(ctx, update)?));
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    Ok(out)
}

/// `.ila` identifiers cannot contain `-` or spaces; port names like
/// `READ-PORT` print as `READ_PORT`.
fn sanitize_port_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Instruction names from integration contain `" & "`.
fn sanitize_instr_name(name: &str) -> String {
    name.replace(" & ", "__and__")
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect()
}

/// Renders a whole module. Integrated ports print as flat ports (the
/// cross product is already materialized), so the output is a valid
/// standalone specification.
pub fn to_ila_text(module: &ModuleIla) -> Result<String, PrintIlaError> {
    let mut out = String::new();
    if module.ports().len() == 1 {
        return port_to_ila_text(&module.ports()[0]);
    }
    out.push_str(&format!(
        "module {} {{\n",
        sanitize_port_name(module.name())
    ));
    for port in module.ports() {
        for line in port_to_ila_text(port)?.lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push_str("}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_ila;

    #[test]
    fn counter_round_trips() {
        let m = parse_ila(
            r#"
port counter {
  input en : bv1
  output state cnt : bv8 init 0

  instr inc when en == 1 { cnt := cnt + 1 }
  instr hold when en == 0 { }
}
"#,
        )
        .unwrap();
        let text = to_ila_text(&m).unwrap();
        let back = parse_ila(&text).unwrap();
        assert_eq!(back.stats().instructions, 2);
        assert_eq!(
            back.ports()[0].find_state("cnt").unwrap().init,
            m.ports()[0].find_state("cnt").unwrap().init
        );
    }

    #[test]
    fn memory_and_ite_round_trip() {
        let m = parse_ila(
            r#"
port fifo {
  input push : bv1
  input data : bv8
  state buf : mem[3, 8]
  state tail : bv3
  output state full : bv1

  instr PUSH when push == 1 {
    buf := full == 1 ? buf : store(buf, tail, data)
    tail := full == 1 ? tail : (tail + 1)
  }
  instr NOP when push == 0 { }
}
"#,
        )
        .unwrap();
        let text = to_ila_text(&m).unwrap();
        assert!(text.contains("store(buf, tail, data)"), "{text}");
        let back = parse_ila(&text).unwrap();
        assert_eq!(back.stats().instructions, 2);
    }
}
