//! # gila-lang — a textual specification language for ILAs
//!
//! Write port-ILAs and module-ILAs (including shared-state integration
//! with conflict resolvers) as plain text instead of Rust:
//!
//! ```
//! use gila_lang::parse_ila;
//!
//! let module = parse_ila(r#"
//! port counter {
//!   input en : bv1
//!   output state cnt : bv8 init 0
//!
//!   instr inc when en == 1 { cnt := cnt + 1 }
//!   instr hold when en == 0 { }
//! }
//! "#)?;
//! assert_eq!(module.stats().instructions, 2);
//! # Ok::<(), gila_lang::IlaSyntaxError>(())
//! ```
//!
//! A `module` block may contain several `port` blocks plus `integrate`
//! directives that cross-product shared-state ports with a named
//! conflict-resolution policy (`value_priority 1'b1`,
//! `port_priority [A, B]`, `round_robin ptr`, or `none` to surface
//! specification gaps).

#![warn(missing_docs)]

mod lexer;
mod parser;
mod printer;

pub use lexer::IlaSyntaxError;
pub use parser::{parse_ila, parse_spec, ElabNote, IntegrationReport, SpecFile};
pub use printer::{port_to_ila_text, to_ila_text, PrintIlaError};
