//! Parser and elaborator for the `.ila` specification language.
//!
//! ```text
//! module mem_iface {
//!   port ROM_PORT {
//!     input rom_req : bv1
//!     input rom_addr_in : bv16
//!     output state rom_addr : bv16
//!     state mem_wait : bv1 init 0
//!
//!     instr ROM_REQ when rom_req == 1 {
//!       rom_addr := rom_addr_in
//!       mem_wait := 1
//!     }
//!     instr ROM_IDLE when rom_req == 0 { mem_wait := 0 }
//!   }
//!   port RAM_PORT { ... }
//!
//!   integrate ROM_RAM_PORT = ROM_PORT, RAM_PORT resolve value_priority 1'b1
//! }
//! ```
//!
//! A file may instead contain bare `port` blocks; each becomes a
//! single-port module. Unsized decimal literals adapt to the width of
//! the surrounding context (`mem_wait := 1` writes a 1-bit one).

use gila_core::{
    integrate, shared_updated_states, ConflictResolver, IntegrateError, ModuleIla, NoResolver,
    PortIla, PortPriorityResolver, RoundRobinResolver, SpecificationGap, StateKind,
    ValuePriorityResolver,
};
use gila_expr::{BitVecValue, ExprRef, Sort};

use crate::lexer::{lex, IlaSyntaxError, SpannedToken, Token};

/// An implicit width adjustment the elaborator performed silently.
///
/// The language deliberately adapts operand widths (max-width join on
/// binary operators, truncate-or-extend on assignment), which is
/// convenient but can hide real specification bugs; notes record every
/// such adjustment so `gila-lint` can surface the suspicious ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ElabNote {
    /// A `state := value` assignment silently dropped high bits.
    TruncatedAssign {
        /// Port being elaborated.
        port: String,
        /// Instruction containing the assignment.
        instruction: String,
        /// The assigned state.
        state: String,
        /// Source line of the assignment.
        line: usize,
        /// Width of the right-hand side.
        from_width: u32,
        /// Width of the state (what the value was truncated to).
        to_width: u32,
    },
    /// Two sized operands of unequal widths met at a binary or ternary
    /// operator; the narrower one was implicitly zero-extended.
    WidthMismatch {
        /// Port being elaborated.
        port: String,
        /// Instruction containing the expression.
        instruction: String,
        /// The operator the operands met at (e.g. `"+"`, `"?:"`).
        op: String,
        /// Source line of the expression.
        line: usize,
        /// Width of the left operand.
        left_width: u32,
        /// Width of the right operand.
        right_width: u32,
    },
}

/// One `integrate` directive of a module file, with the specification
/// gaps its resolver left open (empty when it integrated cleanly).
#[derive(Debug)]
pub struct IntegrationReport {
    /// Name of the integrated port.
    pub name: String,
    /// Member port names, in directive order.
    pub members: Vec<String>,
    /// The resolver kind keyword (`none`, `value_priority`, ...).
    pub resolver: String,
    /// Source line of the directive.
    pub line: usize,
    /// Unresolved conflicting-update combinations, if any.
    pub gaps: Vec<SpecificationGap>,
}

/// The lenient parse of a `.ila` file, for static analysis.
///
/// Unlike [`parse_ila`], which refuses files whose `integrate`
/// directives leave specification gaps or whose ports share updated
/// state without integration, this form records those findings and
/// keeps going, so a linter can report *all* of them with source
/// positions. [`SpecFile::module`] is `Some` exactly when the strict
/// parse would have succeeded.
#[derive(Debug)]
pub struct SpecFile {
    /// Module name (or the port name, for a bare-port file).
    pub name: String,
    /// Whether the file used the `module { ... }` form.
    pub is_module: bool,
    /// The port blocks as written, *before* any integration, with
    /// source lines on declarations and instructions.
    pub ports: Vec<PortIla>,
    /// Every `integrate` directive, with its unresolved gaps.
    pub integrations: Vec<IntegrationReport>,
    /// States updated by several ports that no directive integrates —
    /// composing such a module would fail.
    pub unintegrated_shared: Vec<String>,
    /// Implicit width adjustments recorded during elaboration.
    pub notes: Vec<ElabNote>,
    /// The composed module, when the file is strictly well-formed.
    pub module: Option<ModuleIla>,
}

/// A value under elaboration: a concrete expression or a still-unsized
/// decimal literal awaiting a width from context.
#[derive(Clone, Copy, Debug)]
enum Val {
    Expr(ExprRef),
    Lit(u64),
}

/// A top-level item of a module file, in source order.
enum Item {
    Port(PortIla),
    Integrate(RawIntegrate),
}

struct RawIntegrate {
    name: String,
    members: Vec<String>,
    resolver_kind: String,
    resolver: Box<dyn ConflictResolver>,
    line: usize,
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    notes: Vec<ElabNote>,
    cur_port: String,
    cur_instr: String,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> IlaSyntaxError {
        IlaSyntaxError::new(self.line(), msg)
    }

    fn next(&mut self) -> Result<Token, IlaSyntaxError> {
        let t = self
            .tokens
            .get(self.pos)
            .map(|t| t.token.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_sym(&mut self, sym: &str) -> Result<(), IlaSyntaxError> {
        let line = self.line();
        match self.next()? {
            Token::Sym(s) if s == sym => Ok(()),
            other => Err(IlaSyntaxError::new(
                line,
                format!("expected {sym:?}, found {other}"),
            )),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), IlaSyntaxError> {
        let line = self.line();
        match self.next()? {
            Token::Ident(s) if s == kw => Ok(()),
            other => Err(IlaSyntaxError::new(
                line,
                format!("expected keyword {kw:?}, found {other}"),
            )),
        }
    }

    fn try_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn try_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, IlaSyntaxError> {
        let line = self.line();
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(IlaSyntaxError::new(
                line,
                format!("expected identifier, found {other}"),
            )),
        }
    }

    fn number(&mut self) -> Result<(Option<u32>, BitVecValue), IlaSyntaxError> {
        let line = self.line();
        match self.next()? {
            Token::Number { width, value } => Ok((width, value)),
            other => Err(IlaSyntaxError::new(
                line,
                format!("expected number, found {other}"),
            )),
        }
    }

    /// Parses a type: `bvN`, `bool`, or `mem[aw, dw]`.
    fn sort(&mut self) -> Result<Sort, IlaSyntaxError> {
        let name = self.ident()?;
        if name == "bool" {
            return Ok(Sort::Bool);
        }
        if name == "mem" {
            self.eat_sym("[")?;
            let (_, aw) = self.number()?;
            self.eat_sym(",")?;
            let (_, dw) = self.number()?;
            self.eat_sym("]")?;
            return Ok(Sort::Mem {
                addr_width: aw.to_u64() as u32,
                data_width: dw.to_u64() as u32,
            });
        }
        if let Some(w) = name.strip_prefix("bv") {
            let w: u32 = w
                .parse()
                .map_err(|_| self.err(format!("bad bit-vector type {name:?}")))?;
            if w == 0 {
                return Err(self.err("zero-width bit-vector type"));
            }
            return Ok(Sort::Bv(w));
        }
        Err(self.err(format!("unknown type {name:?}")))
    }

    // ------------------------------------------------------------------
    // Expressions (elaborated against the current port)
    // ------------------------------------------------------------------

    fn resolve_val(&self, p: &mut PortIla, v: Val, width: u32) -> ExprRef {
        match v {
            Val::Expr(e) => {
                let w = p.ctx().sort_of(e).bv_width().expect("bv value");
                if w == width {
                    e
                } else if w < width {
                    p.ctx_mut().zext(e, width)
                } else {
                    p.ctx_mut().extract(e, width - 1, 0)
                }
            }
            Val::Lit(x) => p.ctx_mut().bv(BitVecValue::from_u64(x, width)),
        }
    }

    fn width_of(&self, p: &PortIla, v: Val) -> Option<u32> {
        match v {
            Val::Expr(e) => p.ctx().sort_of(e).bv_width(),
            Val::Lit(_) => None,
        }
    }

    fn join(
        &mut self,
        p: &mut PortIla,
        a: Val,
        b: Val,
        op: &str,
    ) -> Result<(ExprRef, ExprRef), IlaSyntaxError> {
        let w = match (self.width_of(p, a), self.width_of(p, b)) {
            (Some(wa), Some(wb)) => {
                if wa != wb {
                    self.notes.push(ElabNote::WidthMismatch {
                        port: self.cur_port.clone(),
                        instruction: self.cur_instr.clone(),
                        op: op.to_string(),
                        line: self.line(),
                        left_width: wa,
                        right_width: wb,
                    });
                }
                wa.max(wb)
            }
            (Some(w), None) | (None, Some(w)) => w,
            (None, None) => 64,
        };
        Ok((self.resolve_val(p, a, w), self.resolve_val(p, b, w)))
    }

    fn expr(&mut self, p: &mut PortIla) -> Result<Val, IlaSyntaxError> {
        self.ternary(p)
    }

    fn ternary(&mut self, p: &mut PortIla) -> Result<Val, IlaSyntaxError> {
        let c = self.logical_or(p)?;
        if self.try_sym("?") {
            let t = self.ternary(p)?;
            self.eat_sym(":")?;
            let f = self.ternary(p)?;
            let cw = self.width_of(p, c).unwrap_or(1);
            let c = self.resolve_val(p, c, cw);
            let cb = p.ctx_mut().bv_to_bool(c);
            // Memory-sorted branches select whole memories (used by
            // integrated models, e.g. "full ? buf : store(buf, ...)").
            if let (Val::Expr(te), Val::Expr(fe)) = (t, f) {
                if p.ctx().sort_of(te).is_mem() || p.ctx().sort_of(fe).is_mem() {
                    if p.ctx().sort_of(te) != p.ctx().sort_of(fe) {
                        return Err(self.err("ternary branches have different sorts"));
                    }
                    return Ok(Val::Expr(p.ctx_mut().ite(cb, te, fe)));
                }
            }
            let (t, f) = self.join(p, t, f, "?:")?;
            return Ok(Val::Expr(p.ctx_mut().ite(cb, t, f)));
        }
        Ok(c)
    }

    fn binary_chain(
        &mut self,
        p: &mut PortIla,
        ops: &[&str],
        next: fn(&mut Self, &mut PortIla) -> Result<Val, IlaSyntaxError>,
    ) -> Result<Val, IlaSyntaxError> {
        let mut lhs = next(self, p)?;
        'outer: loop {
            for &sym in ops {
                if matches!(self.peek(), Some(Token::Sym(s)) if *s == sym) {
                    self.pos += 1;
                    let rhs = next(self, p)?;
                    lhs = self.apply_binary(p, sym, lhs, rhs)?;
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn apply_binary(
        &mut self,
        p: &mut PortIla,
        sym: &str,
        a: Val,
        b: Val,
    ) -> Result<Val, IlaSyntaxError> {
        // Pure literal arithmetic stays unsized.
        if let (Val::Lit(x), Val::Lit(y)) = (a, b) {
            let r = match sym {
                "+" => x.wrapping_add(y),
                "-" => x.wrapping_sub(y),
                "*" => x.wrapping_mul(y),
                "/" => x.checked_div(y).unwrap_or(u64::MAX),
                "%" => x.checked_rem(y).unwrap_or(x),
                "&" => x & y,
                "|" => x | y,
                "^" => x ^ y,
                "<<" => x.checked_shl(y as u32).unwrap_or(0),
                ">>" => x.checked_shr(y as u32).unwrap_or(0),
                "==" => (x == y) as u64,
                "!=" => (x != y) as u64,
                "<" => (x < y) as u64,
                "<=" => (x <= y) as u64,
                ">" => (x > y) as u64,
                ">=" => (x >= y) as u64,
                "&&" => ((x != 0) && (y != 0)) as u64,
                "||" => ((x != 0) || (y != 0)) as u64,
                other => return Err(self.err(format!("unknown operator {other:?}"))),
            };
            return Ok(Val::Lit(r));
        }
        let (ea, eb) = self.join(p, a, b, sym)?;
        let ctx = p.ctx_mut();
        let out = match sym {
            "+" => ctx.bvadd(ea, eb),
            "-" => ctx.bvsub(ea, eb),
            "*" => ctx.bvmul(ea, eb),
            "/" => ctx.bvudiv(ea, eb),
            "%" => ctx.bvurem(ea, eb),
            "&" => ctx.bvand(ea, eb),
            "|" => ctx.bvor(ea, eb),
            "^" => ctx.bvxor(ea, eb),
            "<<" => ctx.bvshl(ea, eb),
            ">>" => ctx.bvlshr(ea, eb),
            "==" => {
                let c = ctx.eq(ea, eb);
                ctx.bool_to_bv(c)
            }
            "!=" => {
                let c = ctx.ne(ea, eb);
                ctx.bool_to_bv(c)
            }
            "<" => {
                let c = ctx.ult(ea, eb);
                ctx.bool_to_bv(c)
            }
            "<=" => {
                let c = ctx.ule(ea, eb);
                ctx.bool_to_bv(c)
            }
            ">" => {
                let c = ctx.ugt(ea, eb);
                ctx.bool_to_bv(c)
            }
            ">=" => {
                let c = ctx.uge(ea, eb);
                ctx.bool_to_bv(c)
            }
            "&&" => {
                let ba = ctx.bv_to_bool(ea);
                let bb = ctx.bv_to_bool(eb);
                let c = ctx.and(ba, bb);
                ctx.bool_to_bv(c)
            }
            "||" => {
                let ba = ctx.bv_to_bool(ea);
                let bb = ctx.bv_to_bool(eb);
                let c = ctx.or(ba, bb);
                ctx.bool_to_bv(c)
            }
            other => return Err(self.err(format!("unknown operator {other:?}"))),
        };
        Ok(Val::Expr(out))
    }

    fn logical_or(&mut self, p: &mut PortIla) -> Result<Val, IlaSyntaxError> {
        self.binary_chain(p, &["||"], Self::logical_and)
    }

    fn logical_and(&mut self, p: &mut PortIla) -> Result<Val, IlaSyntaxError> {
        self.binary_chain(p, &["&&"], Self::bit_or)
    }

    fn bit_or(&mut self, p: &mut PortIla) -> Result<Val, IlaSyntaxError> {
        self.binary_chain(p, &["|"], Self::bit_xor)
    }

    fn bit_xor(&mut self, p: &mut PortIla) -> Result<Val, IlaSyntaxError> {
        self.binary_chain(p, &["^"], Self::bit_and)
    }

    fn bit_and(&mut self, p: &mut PortIla) -> Result<Val, IlaSyntaxError> {
        self.binary_chain(p, &["&"], Self::equality)
    }

    fn equality(&mut self, p: &mut PortIla) -> Result<Val, IlaSyntaxError> {
        self.binary_chain(p, &["==", "!="], Self::relational)
    }

    fn relational(&mut self, p: &mut PortIla) -> Result<Val, IlaSyntaxError> {
        self.binary_chain(p, &["<=", ">=", "<", ">"], Self::shift)
    }

    fn shift(&mut self, p: &mut PortIla) -> Result<Val, IlaSyntaxError> {
        self.binary_chain(p, &["<<", ">>"], Self::additive)
    }

    fn additive(&mut self, p: &mut PortIla) -> Result<Val, IlaSyntaxError> {
        self.binary_chain(p, &["+", "-"], Self::multiplicative)
    }

    fn multiplicative(&mut self, p: &mut PortIla) -> Result<Val, IlaSyntaxError> {
        self.binary_chain(p, &["*", "/", "%"], Self::unary)
    }

    fn unary(&mut self, p: &mut PortIla) -> Result<Val, IlaSyntaxError> {
        if self.try_sym("~") {
            let v = self.unary(p)?;
            let e = self.resolve_val(p, v, self.width_of(p, v).unwrap_or(64));
            return Ok(Val::Expr(p.ctx_mut().bvnot(e)));
        }
        if self.try_sym("!") {
            let v = self.unary(p)?;
            let e = self.resolve_val(p, v, self.width_of(p, v).unwrap_or(1));
            let b = p.ctx_mut().bv_to_bool(e);
            let nb = p.ctx_mut().not(b);
            return Ok(Val::Expr(p.ctx_mut().bool_to_bv(nb)));
        }
        if self.try_sym("-") {
            let v = self.unary(p)?;
            if let Val::Lit(x) = v {
                return Ok(Val::Lit(x.wrapping_neg()));
            }
            let e = self.resolve_val(p, v, self.width_of(p, v).unwrap_or(64));
            return Ok(Val::Expr(p.ctx_mut().bvneg(e)));
        }
        self.primary(p)
    }

    fn primary(&mut self, p: &mut PortIla) -> Result<Val, IlaSyntaxError> {
        match self.next()? {
            Token::Number { width, value } => Ok(match width {
                Some(_) => Val::Expr(p.ctx_mut().bv(value)),
                None => Val::Lit(value.to_u64()),
            }),
            Token::Sym("(") => {
                let v = self.expr(p)?;
                self.eat_sym(")")?;
                // Postfix constant part-select on a parenthesized value.
                if self.try_sym("[") {
                    let Val::Lit(hi) = self.expr(p)? else {
                        return Err(self.err("part-select bounds must be literals"));
                    };
                    self.eat_sym(":")?;
                    let Val::Lit(lo) = self.expr(p)? else {
                        return Err(self.err("part-select bounds must be literals"));
                    };
                    self.eat_sym("]")?;
                    let e = self.resolve_val(p, v, self.width_of(p, v).unwrap_or(64));
                    return Ok(Val::Expr(p.ctx_mut().extract(e, hi as u32, lo as u32)));
                }
                Ok(v)
            }
            Token::Sym("{") => {
                // Concatenation, first element most significant.
                let mut acc: Option<ExprRef> = None;
                loop {
                    let v = self.expr(p)?;
                    let Val::Expr(e) = v else {
                        return Err(self.err("concatenation elements must be sized"));
                    };
                    acc = Some(match acc {
                        None => e,
                        Some(a) => p.ctx_mut().concat(a, e),
                    });
                    if !self.try_sym(",") {
                        break;
                    }
                }
                self.eat_sym("}")?;
                Ok(Val::Expr(acc.ok_or_else(|| self.err("empty concatenation"))?))
            }
            Token::Ident(name) if name == "store" => {
                // store(mem, addr, data): a functional memory write.
                self.eat_sym("(")?;
                let m = self.expr(p)?;
                let Val::Expr(me) = m else {
                    return Err(self.err("store() expects a memory first argument"));
                };
                let Sort::Mem {
                    addr_width,
                    data_width,
                } = p.ctx().sort_of(me)
                else {
                    return Err(self.err("store() expects a memory first argument"));
                };
                self.eat_sym(",")?;
                let a = self.expr(p)?;
                self.eat_sym(",")?;
                let d = self.expr(p)?;
                self.eat_sym(")")?;
                let a = self.resolve_val(p, a, addr_width);
                let d = self.resolve_val(p, d, data_width);
                Ok(Val::Expr(p.ctx_mut().mem_write(me, a, d)))
            }
            Token::Ident(name) => {
                let var = self.lookup(p, &name)?;
                if self.try_sym("[") {
                    // Memory read, part select, or bit select.
                    let first = self.expr(p)?;
                    if self.try_sym(":") {
                        let Val::Lit(hi) = first else {
                            return Err(self.err("part-select bounds must be literals"));
                        };
                        let lo = match self.expr(p)? {
                            Val::Lit(lo) => lo,
                            _ => return Err(self.err("part-select bounds must be literals")),
                        };
                        self.eat_sym("]")?;
                        return Ok(Val::Expr(p.ctx_mut().extract(var, hi as u32, lo as u32)));
                    }
                    self.eat_sym("]")?;
                    match p.ctx().sort_of(var) {
                        Sort::Mem { addr_width, .. } => {
                            let a = self.resolve_val(p, first, addr_width);
                            return Ok(Val::Expr(p.ctx_mut().mem_read(var, a)));
                        }
                        Sort::Bv(w) => {
                            // Bit select: constant or dynamic.
                            if let Val::Lit(i) = first {
                                return Ok(Val::Expr(p.ctx_mut().extract(
                                    var,
                                    i as u32,
                                    i as u32,
                                )));
                            }
                            let idx = self.resolve_val(p, first, w);
                            let sh = p.ctx_mut().bvlshr(var, idx);
                            return Ok(Val::Expr(p.ctx_mut().extract(sh, 0, 0)));
                        }
                        Sort::Bool => return Err(self.err("cannot index a boolean")),
                    }
                }
                Ok(Val::Expr(var))
            }
            other => Err(self.err(format!("unexpected token {other} in expression"))),
        }
    }

    fn lookup(&self, p: &PortIla, name: &str) -> Result<ExprRef, IlaSyntaxError> {
        if let Some(i) = p.find_input(name) {
            return Ok(i.var);
        }
        if let Some(s) = p.find_state(name) {
            return Ok(s.var);
        }
        Err(self.err(format!("undeclared name {name:?}")))
    }

    // ------------------------------------------------------------------
    // Declarations and instructions
    // ------------------------------------------------------------------

    fn port_block(&mut self, name: String) -> Result<PortIla, IlaSyntaxError> {
        self.cur_port = name.clone();
        let mut p = PortIla::new(name);
        self.eat_sym("{")?;
        loop {
            if self.try_sym("}") {
                return Ok(p);
            }
            let dline = self.line();
            if self.try_kw("input") {
                let name = self.ident()?;
                self.eat_sym(":")?;
                let sort = self.sort()?;
                p.input_at(name, sort, dline);
                continue;
            }
            let output = self.try_kw("output");
            if self.try_kw("state") {
                let name = self.ident()?;
                self.eat_sym(":")?;
                let sort = self.sort()?;
                let kind = if output {
                    StateKind::Output
                } else {
                    StateKind::Internal
                };
                p.state_at(name.clone(), sort, kind, dline);
                if self.try_kw("init") {
                    let (_, v) = self.number()?;
                    let value: gila_expr::Value = match sort {
                        Sort::Bv(w) => {
                            let adj = if v.width() >= w {
                                v.extract(w - 1, 0)
                            } else {
                                v.zext(w)
                            };
                            adj.into()
                        }
                        Sort::Bool => gila_expr::Value::Bool(!v.is_zero()),
                        Sort::Mem {
                            addr_width,
                            data_width,
                        } => {
                            let word = if v.width() >= data_width {
                                v.extract(data_width - 1, 0)
                            } else {
                                v.zext(data_width)
                            };
                            gila_expr::MemValue::filled(addr_width, data_width, word).into()
                        }
                    };
                    p.set_init(&name, value)
                        .map_err(|e| self.err(e.to_string()))?;
                }
                continue;
            }
            if output {
                return Err(self.err("expected 'state' after 'output'"));
            }
            let is_sub = if self.try_kw("instr") {
                false
            } else if self.try_kw("sub") {
                true
            } else {
                return Err(self.err(format!(
                    "expected declaration or instruction, found {}",
                    self.peek().map(|t| t.to_string()).unwrap_or_default()
                )));
            };
            let iname = self.ident()?;
            self.cur_instr = iname.clone();
            let parent = if is_sub {
                self.eat_kw("of")?;
                Some(self.ident()?)
            } else {
                None
            };
            self.eat_kw("when")?;
            let decode_v = self.expr(&mut p)?;
            let decode_w = self.width_of(&p, decode_v).unwrap_or(1);
            let decode_e = self.resolve_val(&mut p, decode_v, decode_w);
            let decode = p.ctx_mut().bv_to_bool(decode_e);
            self.eat_sym("{")?;
            // Updates accumulate; repeated writes to one memory chain.
            let mut updates: Vec<(String, ExprRef)> = Vec::new();
            while !self.try_sym("}") {
                let aline = self.line();
                let target = self.ident()?;
                let sv = p
                    .find_state(&target)
                    .ok_or_else(|| self.err(format!("unknown state {target:?}")))?;
                let (tsort, tvar) = (sv.sort, sv.var);
                if self.try_sym("[") {
                    let Sort::Mem {
                        addr_width,
                        data_width,
                    } = tsort
                    else {
                        return Err(self.err(format!("{target:?} is not a memory")));
                    };
                    let addr_v = self.expr(&mut p)?;
                    self.eat_sym("]")?;
                    self.eat_sym(":=")?;
                    let data_v = self.expr(&mut p)?;
                    if let Some(wd) = self.width_of(&p, data_v) {
                        if wd > data_width {
                            self.notes.push(ElabNote::TruncatedAssign {
                                port: self.cur_port.clone(),
                                instruction: self.cur_instr.clone(),
                                state: target.clone(),
                                line: aline,
                                from_width: wd,
                                to_width: data_width,
                            });
                        }
                    }
                    let addr = self.resolve_val(&mut p, addr_v, addr_width);
                    let data = self.resolve_val(&mut p, data_v, data_width);
                    let base = updates
                        .iter()
                        .rev()
                        .find(|(n, _)| n == &target)
                        .map(|(_, e)| *e)
                        .unwrap_or(tvar);
                    let w = p.ctx_mut().mem_write(base, addr, data);
                    updates.retain(|(n, _)| n != &target);
                    updates.push((target, w));
                } else {
                    self.eat_sym(":=")?;
                    let v = self.expr(&mut p)?;
                    let twidth = match tsort {
                        Sort::Bv(w) => Some(w),
                        Sort::Bool => Some(1),
                        Sort::Mem { .. } => None,
                    };
                    if let (Some(w), Some(wv)) = (twidth, self.width_of(&p, v)) {
                        if wv > w {
                            self.notes.push(ElabNote::TruncatedAssign {
                                port: self.cur_port.clone(),
                                instruction: self.cur_instr.clone(),
                                state: target.clone(),
                                line: aline,
                                from_width: wv,
                                to_width: w,
                            });
                        }
                    }
                    let e = match tsort {
                        Sort::Bv(w) => self.resolve_val(&mut p, v, w),
                        Sort::Bool => {
                            let e = self.resolve_val(&mut p, v, 1);
                            p.ctx_mut().bv_to_bool(e)
                        }
                        Sort::Mem { .. } => match v {
                            Val::Expr(e) if p.ctx().sort_of(e) == tsort => e,
                            _ => {
                                return Err(self.err(format!(
                                    "whole-memory assignment to {target:?} needs a memory value"
                                )))
                            }
                        },
                    };
                    updates.retain(|(n, _)| n != &target);
                    updates.push((target, e));
                }
            }
            let mut b = match parent {
                Some(par) => p.sub_instr(iname, par),
                None => p.instr(iname),
            };
            b = b.decode(decode).at(dline);
            for (n, e) in updates {
                b = b.update(n, e);
            }
            b.add().map_err(|e| self.err(e.to_string()))?;
        }
    }

    fn resolver(&mut self) -> Result<Box<dyn ConflictResolver>, IlaSyntaxError> {
        let kind = self.ident()?;
        Ok(match kind.as_str() {
            "none" => Box::new(NoResolver),
            "value_priority" => {
                let (width, v) = self.number()?;
                if width.is_none() {
                    return Err(self.err("value_priority needs a sized literal (e.g. 1'b1)"));
                }
                Box::new(ValuePriorityResolver::new(v))
            }
            "port_priority" => {
                self.eat_sym("[")?;
                let mut order = vec![self.ident()?];
                while self.try_sym(",") {
                    order.push(self.ident()?);
                }
                self.eat_sym("]")?;
                Box::new(PortPriorityResolver::new(order))
            }
            other => Err(self.err(format!(
                "unknown resolver {other:?} (expected none, value_priority, port_priority, round_robin)"
            )))?,
        })
    }

    /// Parses the file into top-level items without applying any
    /// `integrate` directive. Returns (name, is_module, items).
    fn items(&mut self) -> Result<(String, bool, Vec<Item>), IlaSyntaxError> {
        if self.try_kw("module") {
            let mname = self.ident()?;
            self.eat_sym("{")?;
            let mut items = Vec::new();
            while !self.try_sym("}") {
                if self.try_kw("port") {
                    let pname = self.ident()?;
                    items.push(Item::Port(self.port_block(pname)?));
                    continue;
                }
                if self.try_kw("integrate") {
                    let line = self.line();
                    let iname = self.ident()?;
                    self.eat_sym("=")?;
                    let mut members = vec![self.ident()?];
                    while self.try_sym(",") {
                        members.push(self.ident()?);
                    }
                    self.eat_kw("resolve")?;
                    // Round-robin needs the member count; re-dispatch.
                    let save = self.pos;
                    let kind = self.ident()?;
                    let resolver: Box<dyn ConflictResolver> = if kind == "round_robin" {
                        let rr_name = self.ident()?;
                        Box::new(RoundRobinResolver::new(rr_name, members.len()))
                    } else {
                        self.pos = save;
                        self.resolver()?
                    };
                    items.push(Item::Integrate(RawIntegrate {
                        name: iname,
                        members,
                        resolver_kind: kind,
                        resolver,
                        line,
                    }));
                    continue;
                }
                return Err(self.err(format!(
                    "expected 'port' or 'integrate', found {}",
                    self.peek().map(|t| t.to_string()).unwrap_or_default()
                )));
            }
            if self.pos != self.tokens.len() {
                return Err(self.err("trailing tokens after module"));
            }
            return Ok((mname, true, items));
        }
        // Bare port file.
        self.eat_kw("port")?;
        let pname = self.ident()?;
        let port = self.port_block(pname)?;
        if self.pos != self.tokens.len() {
            return Err(self.err("trailing tokens after port"));
        }
        Ok((port.name().to_string(), false, vec![Item::Port(port)]))
    }

    fn file(&mut self) -> Result<ModuleIla, IlaSyntaxError> {
        let (name, is_module, items) = self.items()?;
        let end_line = self.line();
        if !is_module {
            let Some(Item::Port(port)) = items.into_iter().next() else {
                unreachable!("bare-port parse yields exactly one port item");
            };
            return Ok(ModuleIla::single_port(port));
        }
        let mut ports: Vec<PortIla> = Vec::new();
        for item in items {
            match item {
                Item::Port(p) => ports.push(p),
                Item::Integrate(raw) => {
                    let selected = select_members(&ports, &raw)?;
                    let integrated = integrate(raw.name.clone(), &selected, raw.resolver.as_ref())
                        .map_err(|e| IlaSyntaxError::new(raw.line, e.to_string()))?;
                    ports.retain(|p| !raw.members.iter().any(|m| m == p.name()));
                    ports.push(integrated);
                }
            }
        }
        ModuleIla::compose(name, ports).map_err(|e| IlaSyntaxError::new(end_line, e.to_string()))
    }
}

fn select_members<'a>(
    ports: &'a [PortIla],
    raw: &RawIntegrate,
) -> Result<Vec<&'a PortIla>, IlaSyntaxError> {
    raw.members
        .iter()
        .map(|m| {
            ports
                .iter()
                .find(|p| p.name() == m)
                .ok_or_else(|| IlaSyntaxError::new(raw.line, format!("unknown port {m:?}")))
        })
        .collect()
}

/// Parses a `.ila` source file into a [`ModuleIla`].
///
/// # Errors
///
/// Returns an [`IlaSyntaxError`] with the source line for lexical,
/// syntactic, and semantic (sort/`integrate`) problems.
pub fn parse_ila(src: &str) -> Result<ModuleIla, IlaSyntaxError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        notes: Vec::new(),
        cur_port: String::new(),
        cur_instr: String::new(),
    };
    p.file()
}

/// Parses a `.ila` source file leniently, for static analysis.
///
/// Composition problems — unresolved `integrate` gaps and shared
/// updated states no directive covers — are *recorded* in the returned
/// [`SpecFile`] instead of failing the parse.
///
/// # Errors
///
/// Still returns an [`IlaSyntaxError`] for lexical, syntactic, and
/// hard semantic problems (unknown ports, sort clashes, ...): a file
/// that does not elaborate cannot be analyzed.
pub fn parse_spec(src: &str) -> Result<SpecFile, IlaSyntaxError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        notes: Vec::new(),
        cur_port: String::new(),
        cur_instr: String::new(),
    };
    let (name, is_module, items) = p.items()?;
    let mut pre: Vec<PortIla> = Vec::new();
    let mut working: Vec<PortIla> = Vec::new();
    let mut integrations: Vec<IntegrationReport> = Vec::new();
    let mut any_gaps = false;
    for item in items {
        match item {
            Item::Port(port) => {
                pre.push(port.clone());
                working.push(port);
            }
            Item::Integrate(raw) => {
                let selected = select_members(&working, &raw)?;
                let gaps = match integrate(raw.name.clone(), &selected, raw.resolver.as_ref()) {
                    Ok(integrated) => {
                        working.retain(|p| !raw.members.iter().any(|m| m == p.name()));
                        working.push(integrated);
                        Vec::new()
                    }
                    Err(IntegrateError::SpecificationGaps(gaps)) => {
                        // The members stay un-integrated but are still
                        // *covered* by a directive; drop them so they do
                        // not additionally count as unintegrated shares.
                        working.retain(|p| !raw.members.iter().any(|m| m == p.name()));
                        any_gaps = true;
                        gaps
                    }
                    Err(other) => return Err(IlaSyntaxError::new(raw.line, other.to_string())),
                };
                integrations.push(IntegrationReport {
                    name: raw.name,
                    members: raw.members,
                    resolver: raw.resolver_kind,
                    line: raw.line,
                    gaps,
                });
            }
        }
    }
    let refs: Vec<&PortIla> = working.iter().collect();
    let unintegrated_shared = if is_module {
        shared_updated_states(&refs)
    } else {
        Vec::new()
    };
    let module = if !any_gaps && unintegrated_shared.is_empty() {
        if is_module {
            ModuleIla::compose(name.clone(), working).ok()
        } else {
            working.pop().map(ModuleIla::single_port)
        }
    } else {
        None
    };
    Ok(SpecFile {
        name,
        is_module,
        ports: pre,
        integrations,
        unintegrated_shared,
        notes: p.notes,
        module,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::{decode_gap, decode_overlaps, PortSimulator};
    use gila_expr::Value;

    #[test]
    fn parses_single_port_counter() {
        let m = parse_ila(
            r#"
port counter {
  input en : bv1
  output state cnt : bv8 init 0

  instr inc when en == 1 { cnt := cnt + 1 }
  instr hold when en == 0 { }
}
"#,
        )
        .unwrap();
        assert_eq!(m.stats().instructions, 2);
        let port = &m.ports()[0];
        assert!(decode_gap(port, None).is_none());
        assert!(decode_overlaps(port, None).is_empty());
        let mut sim = PortSimulator::new(port);
        let mut ins = std::collections::BTreeMap::new();
        ins.insert("en".to_string(), Value::Bv(BitVecValue::from_u64(1, 1)));
        assert_eq!(sim.step(&ins).unwrap(), "inc");
        assert_eq!(sim.state()["cnt"].as_bv().to_u64(), 1);
    }

    #[test]
    fn sub_instructions_and_slices() {
        let m = parse_ila(
            r#"
port dec {
  input wait : bv1
  input word_in : bv8
  state current_word : bv8
  state step : bv2

  instr stall when wait == 1 { }
  instr load when wait == 0 && step == 0 {
    current_word := word_in
    step := word_in[7:6]
  }
  sub s1 of load when wait == 0 && step != 0 {
    step := step - 1
  }
}
"#,
        )
        .unwrap();
        let port = &m.ports()[0];
        assert_eq!(port.num_atomic_instructions(), 3);
        assert_eq!(port.num_logical_instructions(), 2);
        assert!(decode_gap(port, None).is_none());
    }

    #[test]
    fn memories_and_indexed_updates() {
        let m = parse_ila(
            r#"
port scratch {
  input we : bv1
  input addr : bv4
  input din : bv8
  state ram : mem[4, 8]
  output state dout : bv8

  instr write when we == 1 { ram[addr] := din }
  instr read when we == 0 { dout := ram[addr] }
}
"#,
        )
        .unwrap();
        let port = &m.ports()[0];
        let mut sim = PortSimulator::new(port);
        let mut ins = std::collections::BTreeMap::new();
        ins.insert("we".to_string(), Value::Bv(BitVecValue::from_u64(1, 1)));
        ins.insert("addr".to_string(), Value::Bv(BitVecValue::from_u64(5, 4)));
        ins.insert("din".to_string(), Value::Bv(BitVecValue::from_u64(0xAB, 8)));
        sim.step(&ins).unwrap();
        ins.insert("we".to_string(), Value::Bv(BitVecValue::from_u64(0, 1)));
        sim.step(&ins).unwrap();
        assert_eq!(sim.state()["dout"].as_bv().to_u64(), 0xAB);
    }

    #[test]
    fn module_with_integration() {
        let m = parse_ila(
            r#"
module mem_iface {
  port ROM_PORT {
    input rom_req : bv1
    input rom_addr_in : bv16
    output state rom_addr : bv16
    state mem_wait : bv1

    instr ROM_REQ when rom_req == 1 {
      rom_addr := rom_addr_in
      mem_wait := 1'b1
    }
    instr ROM_IDLE when rom_req == 0 { mem_wait := 1'b0 }
  }
  port RAM_PORT {
    input ram_req : bv1
    input ram_addr_in : bv8
    output state ram_addr : bv8
    state mem_wait : bv1

    instr RAM_REQ when ram_req == 1 {
      ram_addr := ram_addr_in
      mem_wait := 1'b1
    }
    instr RAM_IDLE when ram_req == 0 { mem_wait := 1'b0 }
  }
  integrate ROM_RAM = ROM_PORT, RAM_PORT resolve value_priority 1'b1
}
"#,
        )
        .unwrap();
        assert_eq!(m.stats().ports, 1);
        assert_eq!(m.stats().instructions, 4);
        let port = m.find_port("ROM_RAM").unwrap();
        let i = port.find_instruction("ROM_IDLE & RAM_REQ").unwrap();
        assert_eq!(
            port.ctx().as_bv_const(i.updates["mem_wait"]),
            Some(&BitVecValue::from_u64(1, 1))
        );
    }

    #[test]
    fn round_robin_integration() {
        let m = parse_ila(
            r#"
module rr {
  port A {
    input a_v : bv1
    state shared : bv4
    instr A_GO when a_v == 1 { shared := 1 }
    instr A_NO when a_v == 0 { }
  }
  port B {
    input b_v : bv1
    state shared : bv4
    instr B_GO when b_v == 1 { shared := 2 }
    instr B_NO when b_v == 0 { }
  }
  integrate AB = A, B resolve round_robin ptr
}
"#,
        )
        .unwrap();
        let port = m.find_port("AB").unwrap();
        assert!(port.find_state("ptr").is_some());
        let i = port.find_instruction("A_GO & B_GO").unwrap();
        assert!(i.updates.contains_key("ptr"));
    }

    #[test]
    fn unresolved_conflicts_surface_gaps() {
        let err = parse_ila(
            r#"
module gap {
  port A {
    input a_v : bv1
    state s : bv1
    instr A1 when a_v == 1 { s := 1 }
    instr A0 when a_v == 0 { }
  }
  port B {
    input b_v : bv1
    state s : bv1
    instr B1 when b_v == 1 { s := 0 }
    instr B0 when b_v == 0 { }
  }
  integrate AB = A, B resolve none
}
"#,
        )
        .unwrap_err();
        assert!(err.message.contains("specification gap"), "{err}");
    }

    #[test]
    fn syntax_errors_carry_lines() {
        let err = parse_ila("port p {\n  input x bv1\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse_ila("port p { input x : bv0 }").is_err());
        assert!(parse_ila("port p { instr i when ghost == 1 { } }").is_err());
        assert!(parse_ila("module m { port p { } } trailing").is_err());
    }
}
