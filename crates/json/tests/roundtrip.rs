//! Property test: `parse(render(v)) == v` for every serializable value.
//!
//! Rendering then reparsing must be the identity on the `Value` model —
//! this is what guarantees the benchmark reports, refinement maps, and
//! telemetry traces the workspace writes can always be read back. The
//! generator leans on the cases that break naive JSON layers: escaped
//! strings (quotes, backslashes, control characters, non-ASCII), deeply
//! nested arrays/objects, and integer/float edge values.

use gila_json::{parse, parse_with_limits, ParseLimits, Value};
use proptest::collection::vec;
use proptest::prelude::*;

/// Characters that stress the escaper: every class `write_escaped`
/// special-cases, plus ordinary ASCII and multi-byte code points.
const PALETTE: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1b}', '{', '}', '[', ']',
    ':', ',', 'é', 'λ', '🦎',
];

fn string_strategy() -> impl Strategy<Value = String> {
    vec((0usize..PALETTE.len()).prop_map(|i| PALETTE[i]), 0..12)
        .prop_map(|chars| chars.into_iter().collect())
}

/// Finite numbers only — JSON has no NaN/Infinity — biased toward the
/// integer-boundary and precision edge cases.
fn number_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        // i64-ish integers, including 2^53 boundaries where the writer
        // switches between integer and float formatting.
        any::<i64>().prop_map(|n| n as f64),
        Just(0.0),
        Just(-1.0),
        Just(2f64.powi(53)),
        Just(-(2f64.powi(53))),
        Just(2f64.powi(53) + 2.0),
        Just(9.007199254740993e15),
        // Fractional and extreme-magnitude floats.
        Just(0.5),
        Just(-1234.5678901234567),
        Just(1e-10),
        Just(1.7976931348623157e308),
        Just(5e-324),
        (0u32..1_000_000).prop_map(|n| f64::from(n) / 1024.0),
    ]
}

fn value_strategy() -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        number_strategy().prop_map(Value::Number),
        string_strategy().prop_map(Value::String),
    ];
    leaf.prop_recursive(4, 64, 5, |inner| {
        prop_oneof![
            vec(inner.clone(), 0..5).prop_map(Value::Array),
            vec((string_strategy(), inner), 0..5)
                .prop_map(|fields| Value::Object(fields.into_iter().collect())),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn compact_roundtrips(v in value_strategy()) {
        let rendered = v.to_compact();
        let back = parse(&rendered)
            .unwrap_or_else(|e| panic!("reparse of {rendered:?} failed: {e}"));
        prop_assert_eq!(&back, &v, "compact render: {:?}", rendered);
    }

    #[test]
    fn pretty_roundtrips(v in value_strategy()) {
        let rendered = v.pretty();
        let back = parse(&rendered)
            .unwrap_or_else(|e| panic!("reparse of {rendered:?} failed: {e}"));
        prop_assert_eq!(&back, &v, "pretty render: {:?}", rendered);
    }

    #[test]
    fn pretty_and_compact_agree(v in value_strategy()) {
        // Both layouts must denote the same value.
        prop_assert_eq!(parse(&v.pretty()).unwrap(), parse(&v.to_compact()).unwrap());
    }

    /// Fuzz the depth limiter: arbitrary nesting depths, arbitrary
    /// limits, arbitrary bracket mixes. Parsing must never crash, and it
    /// must succeed iff the document's depth is within the limit.
    #[test]
    fn depth_limit_never_crashes_and_is_exact(
        depth in 1usize..2_000,
        max_depth in 1usize..64,
        use_objects in any::<bool>(),
    ) {
        let (open, close) = if use_objects { ("{\"k\":", "}") } else { ("[", "]") };
        let doc = format!("{}0{}", open.repeat(depth), close.repeat(depth));
        let limits = ParseLimits { max_depth, max_bytes: usize::MAX };
        let result = parse_with_limits(&doc, limits);
        if depth <= max_depth {
            prop_assert!(result.is_ok(), "depth {} within limit {}", depth, max_depth);
        } else {
            let err = result.unwrap_err();
            prop_assert!(err.message.contains("depth limit"), "{}", err);
        }
    }

    /// Fuzz the byte cap: any input, any cap. Oversized inputs must be
    /// rejected with a "byte limit" error before parsing; others behave
    /// exactly like the uncapped parser.
    #[test]
    fn byte_cap_matches_uncapped_semantics(
        v in value_strategy(),
        max_bytes in 0usize..256,
    ) {
        let doc = v.to_compact();
        let limits = ParseLimits { max_depth: 512, max_bytes };
        let result = parse_with_limits(&doc, limits);
        if doc.len() > max_bytes {
            let err = result.unwrap_err();
            prop_assert!(err.message.contains("byte limit"), "{}", err);
        } else {
            prop_assert_eq!(result.unwrap(), v);
        }
    }
}

#[test]
fn handwritten_edge_cases_roundtrip() {
    let cases = [
        Value::String("\"\\\n\r\t\u{0}\u{1b}🦎".to_string()),
        Value::Number(-0.0),
        Value::Number(1e300),
        Value::Array(vec![Value::Array(vec![Value::Array(vec![])])]),
        Value::Object(vec![
            ("".to_string(), Value::Null),
            ("dup".to_string(), Value::Number(1.0)),
            ("dup".to_string(), Value::Number(2.0)),
        ]),
    ];
    for v in cases {
        assert_eq!(parse(&v.to_compact()).unwrap(), v, "{}", v.to_compact());
        assert_eq!(parse(&v.pretty()).unwrap(), v, "{}", v.pretty());
    }
}
