//! A small, dependency-free JSON library for gila's serialized artifacts
//! (refinement maps, benchmark reports).
//!
//! The build environment has no registry access, so `serde_json` is
//! replaced by this hand-rolled value model: [`Value`] with a recursive
//! descent [`parse`] and a 2-space [`Value::pretty`] printer whose output
//! matches the `serde_json::to_string_pretty` layout the repository's
//! artifacts were specified against. Object keys keep insertion order so
//! serialization is deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
///
/// Numbers are stored as `f64` plus an integer flag — every count this
/// workspace serializes (cycle bounds, sizes, statistics) is well below
/// 2^53, so the representation is exact where it matters.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object constructor preserving field order.
    pub fn object(fields: Vec<(String, Value)>) -> Value {
        Value::Object(fields)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// First value under `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Pretty rendering with 2-space indentation (serde_json layout).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            Value::Array(_) => out.push_str("[]"),
            Value::Object(_) => out.push_str("{}"),
            other => other.write_compact(out),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(n as f64)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<V: Into<Value> + Clone> From<&BTreeMap<String, V>> for Value {
    fn from(map: &BTreeMap<String, V>) -> Value {
        Value::Object(
            map.iter()
                .map(|(k, v)| (k.clone(), v.clone().into()))
                .collect(),
        )
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with byte offset and description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Default nesting-depth ceiling for [`parse`]. Deep enough for every
/// artifact this workspace writes (a few levels), shallow enough that a
/// hostile `[[[[...]]]]` frame errors out long before the recursive
/// descent can overflow the stack.
pub const DEFAULT_MAX_DEPTH: usize = 512;

/// Resource limits applied while parsing untrusted input (e.g. frames
/// arriving over a `gila serve` socket).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum nesting depth of arrays/objects combined.
    pub max_depth: usize,
    /// Maximum input size in bytes; larger documents are rejected before
    /// any parsing work happens.
    pub max_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_depth: DEFAULT_MAX_DEPTH,
            max_bytes: usize::MAX,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// anything else after the top-level value is an error). Applies the
/// default [`ParseLimits`]: no byte cap, nesting capped at
/// [`DEFAULT_MAX_DEPTH`].
pub fn parse(input: &str) -> Result<Value, Error> {
    parse_with_limits(input, ParseLimits::default())
}

/// Parses with explicit resource limits. Exceeding either limit yields a
/// normal [`Error`] (mentioning "depth limit" or "byte limit") rather
/// than unbounded recursion or allocation.
pub fn parse_with_limits(input: &str, limits: ParseLimits) -> Result<Value, Error> {
    if input.len() > limits.max_bytes {
        return Err(Error {
            offset: limits.max_bytes,
            message: format!(
                "input of {} bytes exceeds {} byte limit",
                input.len(),
                limits.max_bytes
            ),
        });
    }
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
        max_depth: limits.max_depth,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(self.error("nesting exceeds depth limit"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our
                            // artifacts; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape outside BMP scalars"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number text");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Value::object(vec![
            ("name".into(), Value::from("x")),
            ("count".into(), Value::from(42usize)),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
            (
                "items".into(),
                Value::from(vec!["a\nb".to_string(), "c\"d\\e".to_string()]),
            ),
            (
                "nested".into(),
                Value::object(vec![("pi".into(), Value::from(1.5f64))]),
            ),
            ("empty_arr".into(), Value::Array(vec![])),
            ("empty_obj".into(), Value::Object(vec![])),
        ]);
        for rendering in [doc.pretty(), doc.to_compact()] {
            assert_eq!(parse(&rendering).expect("parses"), doc);
        }
    }

    #[test]
    fn pretty_layout_matches_serde_style() {
        let doc = Value::object(vec![
            ("a".into(), Value::from(1usize)),
            ("b".into(), Value::from(vec!["x".to_string()])),
        ]);
        assert_eq!(doc.pretty(), "{\n  \"a\": 1,\n  \"b\": [\n    \"x\"\n  ]\n}");
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("[1] extra").is_err());
        assert!(parse("\"unterminated").is_err());
        let err = parse("nul").unwrap_err();
        assert!(err.to_string().contains("byte 0"));
    }

    #[test]
    fn unicode_and_escapes_decode() {
        let v = parse(r#""café \t tab""#).expect("parses");
        assert_eq!(v.as_str(), Some("café \t tab"));
        let v = parse("\"déjà\"").expect("raw unicode passes through");
        assert_eq!(v.as_str(), Some("déjà"));
    }

    #[test]
    fn numbers_parse_and_print() {
        assert_eq!(parse("-12").unwrap().as_f64(), Some(-12.0));
        assert_eq!(parse("3.25e2").unwrap().as_f64(), Some(325.0));
        assert_eq!(parse("17").unwrap().as_usize(), Some(17));
        assert_eq!(Value::from(2.5f64).to_compact(), "2.5");
        assert_eq!(Value::from(9000u64).to_compact(), "9000");
    }

    #[test]
    fn hostile_deep_nesting_is_rejected_not_overflowed() {
        // 10k-deep nesting must produce a clean error, not a stack
        // overflow, under the default limits.
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let deep = format!("{}null{}", open.repeat(10_000), close.repeat(10_000));
            let err = parse(&deep).unwrap_err();
            assert!(err.message.contains("depth limit"), "{}", err);
        }
    }

    #[test]
    fn depth_limit_is_exact() {
        let nested = |n: usize| format!("{}0{}", "[".repeat(n), "]".repeat(n));
        let limits = ParseLimits {
            max_depth: 8,
            max_bytes: usize::MAX,
        };
        assert!(parse_with_limits(&nested(8), limits).is_ok());
        assert!(parse_with_limits(&nested(9), limits).is_err());
        // Sibling containers at the same level don't accumulate depth.
        let wide = format!("[{}]", vec![nested(7); 16].join(","));
        assert!(parse_with_limits(&wide, limits).is_ok());
    }

    #[test]
    fn byte_cap_rejects_oversized_input_cleanly() {
        let limits = ParseLimits {
            max_depth: DEFAULT_MAX_DEPTH,
            max_bytes: 16,
        };
        assert!(parse_with_limits("[1,2,3]", limits).is_ok());
        let big = format!("\"{}\"", "x".repeat(64));
        let err = parse_with_limits(&big, limits).unwrap_err();
        assert!(err.message.contains("byte limit"), "{}", err);
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = parse(r#"{"outer": {"inner": [1, true, "s"]}}"#).unwrap();
        let arr = doc.get("outer").unwrap().get("inner").unwrap();
        assert_eq!(arr.as_array().unwrap().len(), 3);
        assert_eq!(arr.as_array().unwrap()[1].as_bool(), Some(true));
        assert!(doc.get("missing").is_none());
    }
}
