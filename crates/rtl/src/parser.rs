//! Parser for the supported Verilog subset.
//!
//! Supported constructs: one `module` per file with `input`/`output`
//! (`output reg`)/`wire`/`reg` declarations (including memories
//! `reg [w-1:0] name [0:depth-1]`), continuous `assign`s, `initial`
//! blocks with constant assignments, and `always @(posedge clk)` blocks
//! containing non-blocking assignments, `if`/`else`, and `case`.

use gila_expr::BitVecValue;

use crate::lexer::{lex, SpannedToken, Token, VerilogError};

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// Bitwise complement `~`.
    Not,
    /// Logical negation `!` (result 1 bit).
    LogicalNot,
    /// Arithmetic negation `-`.
    Neg,
    /// Reduction AND `&` (result 1 bit).
    RedAnd,
    /// Reduction OR `|` (result 1 bit).
    RedOr,
    /// Reduction XOR `^` (result 1 bit).
    RedXor,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    AShr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LogicalAnd,
    /// `||`
    LogicalOr,
}

/// An expression AST node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Identifier reference.
    Ident(String),
    /// Literal with optional declared width.
    Literal {
        /// Declared width, if sized.
        width: Option<u32>,
        /// The value.
        value: BitVecValue,
    },
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Ternary conditional `c ? t : e`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Single-bit or memory-word select `name[index]`.
    Index(String, Box<Expr>),
    /// Constant part select `name[hi:lo]`.
    Range(String, u32, u32),
    /// Concatenation `{a, b, ...}` (first element is most significant).
    Concat(Vec<Expr>),
    /// Replication `{n{e}}`.
    Repeat(u32, Box<Expr>),
}

/// An assignment target inside an always block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Target {
    /// Whole register.
    Reg(String),
    /// One memory word `name[addr]`.
    MemWord(String, Expr),
}

/// A statement inside an always block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// Non-blocking assignment `target <= rhs;`.
    NonBlocking {
        /// Assignment target.
        target: Target,
        /// Right-hand side.
        rhs: Expr,
    },
    /// `if (cond) ... else ...`.
    If {
        /// Condition (nonzero = true).
        cond: Expr,
        /// Then-branch statements.
        then_stmts: Vec<Stmt>,
        /// Else-branch statements.
        else_stmts: Vec<Stmt>,
    },
    /// `case (scrutinee) ... endcase` with priority-ordered arms.
    Case {
        /// The value being matched.
        scrutinee: Expr,
        /// `(labels, body)` per arm; a label list matches if any label equals.
        arms: Vec<(Vec<Expr>, Vec<Stmt>)>,
        /// `default:` body.
        default: Vec<Stmt>,
    },
}

/// A net/variable declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Decl {
    /// `input [w-1:0] name;`
    Input {
        /// Pin name.
        name: String,
        /// Width in bits.
        width: u32,
    },
    /// `output [w-1:0] name;` (wire output, driven by an assign)
    Output {
        /// Pin name.
        name: String,
        /// Width in bits.
        width: u32,
    },
    /// `output reg [w-1:0] name;`
    OutputReg {
        /// Pin name.
        name: String,
        /// Width in bits.
        width: u32,
    },
    /// `wire [w-1:0] name;`
    Wire {
        /// Net name.
        name: String,
        /// Width in bits.
        width: u32,
    },
    /// `reg [w-1:0] name;`
    Reg {
        /// Register name.
        name: String,
        /// Width in bits.
        width: u32,
    },
    /// `reg [dw-1:0] name [0:depth-1];`
    Mem {
        /// Memory name.
        name: String,
        /// Data width in bits.
        data_width: u32,
        /// Number of words (must be a power of two).
        depth: u64,
    },
}

/// A submodule instantiation `Sub inst (.port(expr), ...);`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// The instantiated module's name.
    pub module: String,
    /// The instance name (prefixes the flattened internals).
    pub name: String,
    /// Named port connections. Input ports accept arbitrary
    /// expressions; output ports must connect to plain identifiers.
    pub connections: Vec<(String, Expr)>,
}

/// A parsed module (pre-elaboration).
#[derive(Clone, Debug, Default)]
pub struct ModuleAst {
    /// Module name.
    pub name: String,
    /// Port list order (from the header).
    pub port_order: Vec<String>,
    /// All declarations.
    pub decls: Vec<Decl>,
    /// Continuous assignments `(lhs, rhs)`.
    pub assigns: Vec<(String, Expr)>,
    /// Always blocks (statement lists; all `@(posedge clk)`).
    pub always_blocks: Vec<Vec<Stmt>>,
    /// Initial-block constant assignments `(reg, value)`.
    pub initials: Vec<(String, BitVecValue)>,
    /// Submodule instantiations (flattened by the hierarchy elaborator).
    pub instances: Vec<Instance>,
    /// Number of source lines.
    pub source_lines: usize,
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    /// `parameter`/`localparam` constants, usable in widths, ranges,
    /// and expressions.
    params: std::collections::HashMap<String, u64>,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> VerilogError {
        VerilogError::new(self.line(), msg)
    }

    fn next(&mut self) -> Result<Token, VerilogError> {
        let t = self
            .tokens
            .get(self.pos)
            .map(|t| t.token.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_sym(&mut self, sym: &str) -> Result<(), VerilogError> {
        match self.next()? {
            Token::Sym(s) if s == sym => Ok(()),
            other => Err(self.err(format!("expected {sym:?}, found {other}"))),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), VerilogError> {
        match self.next()? {
            Token::Ident(s) if s == kw => Ok(()),
            other => Err(self.err(format!("expected keyword {kw:?}, found {other}"))),
        }
    }

    fn try_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn try_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, VerilogError> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn const_u64(&mut self) -> Result<u64, VerilogError> {
        let e = self.expr()?;
        self.const_eval(&e)
    }

    /// Evaluates a constant expression (literals, parameters, and
    /// arithmetic over them).
    fn const_eval(&self, e: &Expr) -> Result<u64, VerilogError> {
        match e {
            Expr::Literal { value, .. } => Ok(value.to_u64()),
            Expr::Ident(name) => self.params.get(name).copied().ok_or_else(|| {
                self.err(format!("{name:?} is not a parameter; constants required here"))
            }),
            Expr::Unary(UnOp::Neg, inner) => Ok(self.const_eval(inner)?.wrapping_neg()),
            Expr::Unary(UnOp::Not, inner) => Ok(!self.const_eval(inner)?),
            Expr::Binary(op, a, b) => {
                let (a, b) = (self.const_eval(a)?, self.const_eval(b)?);
                Ok(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => a.checked_div(b).unwrap_or(u64::MAX),
                    BinOp::Mod => a.checked_rem(b).unwrap_or(a),
                    BinOp::Shl => a.checked_shl(b as u32).unwrap_or(0),
                    BinOp::Shr => a.checked_shr(b as u32).unwrap_or(0),
                    BinOp::And => a & b,
                    BinOp::Or => a | b,
                    BinOp::Xor => a ^ b,
                    _ => return Err(self.err("unsupported operator in constant expression")),
                })
            }
            Expr::Ternary(c, t, f) => {
                if self.const_eval(c)? != 0 {
                    self.const_eval(t)
                } else {
                    self.const_eval(f)
                }
            }
            _ => Err(self.err("unsupported form in constant expression")),
        }
    }

    /// Parses an optional `[hi:lo]` range, returning the width `hi-lo+1`.
    fn width_spec(&mut self) -> Result<u32, VerilogError> {
        if self.try_sym("[") {
            let hi = self.const_u64()?;
            self.eat_sym(":")?;
            let lo = self.const_u64()?;
            self.eat_sym("]")?;
            if lo != 0 {
                return Err(self.err("only [N:0] ranges are supported in declarations"));
            }
            Ok((hi + 1) as u32)
        } else {
            Ok(1)
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, VerilogError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, VerilogError> {
        let c = self.logical_or()?;
        if self.try_sym("?") {
            let t = self.ternary()?;
            self.eat_sym(":")?;
            let e = self.ternary()?;
            Ok(Expr::Ternary(Box::new(c), Box::new(t), Box::new(e)))
        } else {
            Ok(c)
        }
    }

    fn binary_level<F>(&mut self, ops: &[(&str, BinOp)], next: F) -> Result<Expr, VerilogError>
    where
        F: Fn(&mut Self) -> Result<Expr, VerilogError>,
    {
        let mut lhs = next(self)?;
        'outer: loop {
            for (sym, op) in ops {
                if matches!(self.peek(), Some(Token::Sym(s)) if s == sym) {
                    self.pos += 1;
                    let rhs = next(self)?;
                    lhs = Expr::Binary(*op, Box::new(lhs), Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn logical_or(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(&[("||", BinOp::LogicalOr)], Self::logical_and)
    }

    fn logical_and(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(&[("&&", BinOp::LogicalAnd)], Self::bit_or)
    }

    fn bit_or(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(&[("|", BinOp::Or)], Self::bit_xor)
    }

    fn bit_xor(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(&[("^", BinOp::Xor)], Self::bit_and)
    }

    fn bit_and(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(&[("&", BinOp::And)], Self::equality)
    }

    fn equality(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(&[("==", BinOp::Eq), ("!=", BinOp::Ne)], Self::relational)
    }

    fn relational(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(
            &[
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            Self::shift,
        )
    }

    fn shift(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(
            &[(">>>", BinOp::AShr), ("<<", BinOp::Shl), (">>", BinOp::Shr)],
            Self::additive,
        )
    }

    fn additive(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(&[("+", BinOp::Add), ("-", BinOp::Sub)], Self::multiplicative)
    }

    fn multiplicative(&mut self) -> Result<Expr, VerilogError> {
        self.binary_level(
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Mod)],
            Self::unary,
        )
    }

    fn unary(&mut self) -> Result<Expr, VerilogError> {
        for (sym, op) in [
            ("~", UnOp::Not),
            ("!", UnOp::LogicalNot),
            ("-", UnOp::Neg),
            ("&", UnOp::RedAnd),
            ("|", UnOp::RedOr),
            ("^", UnOp::RedXor),
        ] {
            if matches!(self.peek(), Some(Token::Sym(s)) if *s == sym) {
                self.pos += 1;
                let e = self.unary()?;
                return Ok(Expr::Unary(op, Box::new(e)));
            }
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, VerilogError> {
        match self.next()? {
            Token::Number { width, value } => Ok(Expr::Literal { width, value }),
            Token::Ident(name) => {
                if let Some(&v) = self.params.get(&name) {
                    // Parameters behave like unsized decimal literals.
                    return Ok(Expr::Literal {
                        width: None,
                        value: BitVecValue::from_u64(v, 64),
                    });
                }
                if self.try_sym("[") {
                    // Could be name[expr] or name[hi:lo].
                    let first = self.expr()?;
                    if self.try_sym(":") {
                        let hi = self.const_eval(&first)? as u32;
                        let lo = self.const_u64()? as u32;
                        self.eat_sym("]")?;
                        if hi < lo {
                            return Err(self.err(format!("invalid part select [{hi}:{lo}]")));
                        }
                        Ok(Expr::Range(name, hi, lo))
                    } else {
                        self.eat_sym("]")?;
                        Ok(Expr::Index(name, Box::new(first)))
                    }
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            Token::Sym("(") => {
                let e = self.expr()?;
                self.eat_sym(")")?;
                Ok(e)
            }
            Token::Sym("{") => {
                // Concat {a, b, ...} or replication {n{e}}.
                let first = self.expr()?;
                if self.try_sym("{") {
                    let n = self.const_eval(&first)? as u32;
                    if n == 0 {
                        return Err(self.err("replication count must be positive"));
                    }
                    let inner = self.expr()?;
                    self.eat_sym("}")?;
                    self.eat_sym("}")?;
                    return Ok(Expr::Repeat(n, Box::new(inner)));
                }
                let mut items = vec![first];
                while self.try_sym(",") {
                    items.push(self.expr()?);
                }
                self.eat_sym("}")?;
                Ok(Expr::Concat(items))
            }
            other => Err(self.err(format!("unexpected token {other} in expression"))),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmt_block(&mut self) -> Result<Vec<Stmt>, VerilogError> {
        if self.try_kw("begin") {
            let mut stmts = Vec::new();
            while !self.try_kw("end") {
                stmts.push(self.stmt()?);
            }
            Ok(stmts)
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> Result<Stmt, VerilogError> {
        if self.try_kw("if") {
            self.eat_sym("(")?;
            let cond = self.expr()?;
            self.eat_sym(")")?;
            let then_stmts = self.stmt_block()?;
            let else_stmts = if self.try_kw("else") {
                self.stmt_block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If {
                cond,
                then_stmts,
                else_stmts,
            });
        }
        if self.try_kw("case") {
            self.eat_sym("(")?;
            let scrutinee = self.expr()?;
            self.eat_sym(")")?;
            let mut arms = Vec::new();
            let mut default = Vec::new();
            loop {
                if self.try_kw("endcase") {
                    break;
                }
                if self.try_kw("default") {
                    let _ = self.try_sym(":");
                    default = self.stmt_block()?;
                    continue;
                }
                let mut labels = vec![self.expr()?];
                while self.try_sym(",") {
                    labels.push(self.expr()?);
                }
                self.eat_sym(":")?;
                let body = self.stmt_block()?;
                arms.push((labels, body));
            }
            return Ok(Stmt::Case {
                scrutinee,
                arms,
                default,
            });
        }
        // Non-blocking assignment.
        let name = self.ident()?;
        let target = if self.try_sym("[") {
            let idx = self.expr()?;
            self.eat_sym("]")?;
            Target::MemWord(name, idx)
        } else {
            Target::Reg(name)
        };
        self.eat_sym("<=")?;
        let rhs = self.expr()?;
        self.eat_sym(";")?;
        Ok(Stmt::NonBlocking { target, rhs })
    }

    // ------------------------------------------------------------------
    // Module items
    // ------------------------------------------------------------------

    fn module(&mut self) -> Result<ModuleAst, VerilogError> {
        self.eat_kw("module")?;
        let name = self.ident()?;
        let mut ast = ModuleAst {
            name,
            ..Default::default()
        };
        if self.try_sym("(")
            && !self.try_sym(")") {
                loop {
                    ast.port_order.push(self.ident()?);
                    if self.try_sym(")") {
                        break;
                    }
                    self.eat_sym(",")?;
                }
            }
        self.eat_sym(";")?;
        loop {
            if self.try_kw("endmodule") {
                break;
            }
            if self.try_kw("input") {
                let width = self.width_spec()?;
                loop {
                    let name = self.ident()?;
                    ast.decls.push(Decl::Input { name, width });
                    if !self.try_sym(",") {
                        break;
                    }
                }
                self.eat_sym(";")?;
                continue;
            }
            if self.try_kw("output") {
                let is_reg = self.try_kw("reg");
                let width = self.width_spec()?;
                loop {
                    let name = self.ident()?;
                    ast.decls.push(if is_reg {
                        Decl::OutputReg { name, width }
                    } else {
                        Decl::Output { name, width }
                    });
                    if !self.try_sym(",") {
                        break;
                    }
                }
                self.eat_sym(";")?;
                continue;
            }
            if self.try_kw("wire") {
                let width = self.width_spec()?;
                loop {
                    let name = self.ident()?;
                    // `wire x = expr;` inline assign form.
                    if self.try_sym("=") {
                        let rhs = self.expr()?;
                        ast.decls.push(Decl::Wire {
                            name: name.clone(),
                            width,
                        });
                        ast.assigns.push((name, rhs));
                        break;
                    }
                    ast.decls.push(Decl::Wire { name, width });
                    if !self.try_sym(",") {
                        break;
                    }
                }
                self.eat_sym(";")?;
                continue;
            }
            if self.try_kw("reg") {
                let width = self.width_spec()?;
                loop {
                    let name = self.ident()?;
                    if self.try_sym("[") {
                        let lo = self.const_u64()?;
                        self.eat_sym(":")?;
                        let hi = self.const_u64()?;
                        self.eat_sym("]")?;
                        if lo != 0 {
                            return Err(self.err("memories must be declared [0:N]"));
                        }
                        let depth = hi + 1;
                        if !depth.is_power_of_two() {
                            return Err(self.err(format!(
                                "memory depth {depth} must be a power of two"
                            )));
                        }
                        ast.decls.push(Decl::Mem {
                            name,
                            data_width: width,
                            depth,
                        });
                    } else {
                        ast.decls.push(Decl::Reg { name, width });
                    }
                    if !self.try_sym(",") {
                        break;
                    }
                }
                self.eat_sym(";")?;
                continue;
            }
            if self.try_kw("parameter") || self.try_kw("localparam") {
                loop {
                    let name = self.ident()?;
                    self.eat_sym("=")?;
                    let e = self.expr()?;
                    let v = self.const_eval(&e)?;
                    self.params.insert(name, v);
                    if !self.try_sym(",") {
                        break;
                    }
                }
                self.eat_sym(";")?;
                continue;
            }
            if self.try_kw("assign") {
                let lhs = self.ident()?;
                self.eat_sym("=")?;
                let rhs = self.expr()?;
                self.eat_sym(";")?;
                ast.assigns.push((lhs, rhs));
                continue;
            }
            if self.try_kw("always") {
                self.eat_sym("@")?;
                self.eat_sym("(")?;
                self.eat_kw("posedge")?;
                let _clk = self.ident()?;
                self.eat_sym(")")?;
                let stmts = self.stmt_block()?;
                ast.always_blocks.push(stmts);
                continue;
            }
            if self.try_kw("initial") {
                // initial begin r = const; ... end
                let had_begin = self.try_kw("begin");
                loop {
                    if had_begin && self.try_kw("end") {
                        break;
                    }
                    let name = self.ident()?;
                    self.eat_sym("=")?;
                    let value = match self.next()? {
                        Token::Number { value, .. } => value,
                        other => {
                            return Err(
                                self.err(format!("initial values must be constants, found {other}"))
                            )
                        }
                    };
                    self.eat_sym(";")?;
                    ast.initials.push((name, value));
                    if !had_begin {
                        break;
                    }
                }
                continue;
            }
            // Submodule instantiation: `Module inst (.port(expr), ...);`
            let module = self.ident()?;
            let name = self.ident()?;
            self.eat_sym("(")?;
            let mut connections = Vec::new();
            if !self.try_sym(")") {
                loop {
                    self.eat_sym(".")?;
                    let port = self.ident()?;
                    self.eat_sym("(")?;
                    let expr = self.expr()?;
                    self.eat_sym(")")?;
                    connections.push((port, expr));
                    if self.try_sym(")") {
                        break;
                    }
                    self.eat_sym(",")?;
                }
            }
            self.eat_sym(";")?;
            ast.instances.push(Instance {
                module,
                name,
                connections,
            });
        }
        Ok(ast)
    }
}

/// Parses a standalone Verilog expression (used for refinement-map
/// condition strings).
///
/// # Errors
///
/// Returns a [`VerilogError`] on malformed input or trailing tokens.
pub fn parse_expr_ast(src: &str) -> Result<Expr, VerilogError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0, params: Default::default() };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after expression"));
    }
    Ok(e)
}

/// Parses every module in a source file, in order.
///
/// # Errors
///
/// Returns a [`VerilogError`] with the offending line for syntax outside
/// the supported subset.
pub fn parse_modules(src: &str) -> Result<Vec<ModuleAst>, VerilogError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0, params: Default::default() };
    let mut out = Vec::new();
    while p.pos != p.tokens.len() {
        p.params.clear();
        let mut ast = p.module()?;
        ast.source_lines = 0; // per-module counts are filled by callers
        out.push(ast);
    }
    for ast in &mut out {
        ast.source_lines = src.lines().filter(|l| !l.trim().is_empty()).count();
    }
    Ok(out)
}

/// Parses one Verilog module from source text.
///
/// # Errors
///
/// Returns a [`VerilogError`] with the offending line for syntax outside
/// the supported subset.
pub fn parse_module(src: &str) -> Result<ModuleAst, VerilogError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0, params: Default::default() };
    let mut ast = p.module()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing tokens after endmodule"));
    }
    ast.source_lines = src.lines().filter(|l| !l.trim().is_empty()).count();
    Ok(ast)
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = r#"
module counter(clk, en, q);
  input clk;
  input en;
  output [3:0] q;
  reg [3:0] cnt;
  assign q = cnt;
  always @(posedge clk) begin
    if (en) cnt <= cnt + 4'd1;
  end
endmodule
"#;

    #[test]
    fn parses_counter() {
        let ast = parse_module(COUNTER).unwrap();
        assert_eq!(ast.name, "counter");
        assert_eq!(ast.port_order, vec!["clk", "en", "q"]);
        assert_eq!(ast.decls.len(), 4);
        assert_eq!(ast.assigns.len(), 1);
        assert_eq!(ast.always_blocks.len(), 1);
    }

    #[test]
    fn parses_case_and_memory() {
        let src = r#"
module m(clk, sel, addr, din);
  input clk;
  input [1:0] sel;
  input [3:0] addr;
  input [7:0] din;
  reg [7:0] store [0:15];
  reg [7:0] acc;
  always @(posedge clk) begin
    case (sel)
      2'b00: acc <= din;
      2'b01, 2'b10: acc <= acc + din;
      default: begin
        store[addr] <= acc;
      end
    endcase
  end
endmodule
"#;
        let ast = parse_module(src).unwrap();
        let Stmt::Case { arms, default, .. } = &ast.always_blocks[0][0] else {
            panic!("expected case");
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[1].0.len(), 2);
        assert_eq!(default.len(), 1);
        assert!(matches!(
            &default[0],
            Stmt::NonBlocking {
                target: Target::MemWord(n, _),
                ..
            } if n == "store"
        ));
    }

    #[test]
    fn parses_expressions() {
        let src = r#"
module e(a, b, q);
  input [7:0] a;
  input [7:0] b;
  output [7:0] q;
  assign q = (a & 8'hF0) | {4'b0, b[7:4]} + (a[0] ? b : ~b) - {2{a[3:0]}};
endmodule
"#;
        parse_module(src).unwrap();
    }

    #[test]
    fn parses_initial_and_output_reg() {
        let src = r#"
module r(clk, q);
  input clk;
  output reg [3:0] q;
  initial begin
    q = 4'h7;
  end
  always @(posedge clk) q <= q + 4'd1;
endmodule
"#;
        let ast = parse_module(src).unwrap();
        assert_eq!(ast.initials, vec![("q".to_string(), BitVecValue::from_u64(7, 4))]);
        assert!(matches!(ast.decls[1], Decl::OutputReg { .. }));
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(parse_module("module m(; endmodule").is_err());
        assert!(parse_module("module m(); wire [3:1] w; endmodule").is_err());
        assert!(parse_module("module m(); always @(negedge clk) begin end endmodule").is_err());
        // non-power-of-two memory depth
        assert!(parse_module("module m(); reg [7:0] s [0:9]; endmodule").is_err());
        assert!(parse_module("module m(); endmodule extra").is_err());
    }

    #[test]
    fn parameters_fold_in_widths_and_expressions() {
        let src = r#"
module p(clk, a);
  parameter WIDTH = 8;
  localparam HALF = WIDTH / 2, LIMIT = (1 << HALF) - 1;
  input clk;
  input [WIDTH-1:0] a;
  reg [WIDTH-1:0] r;
  reg [HALF-1:0] h;
  always @(posedge clk) begin
    if (a < LIMIT) r <= a + WIDTH;
    h <= a[HALF-1:0];
  end
endmodule
"#;
        let ast = parse_module(src).unwrap();
        assert!(ast.decls.iter().any(|d| matches!(d, Decl::Input { name, width: 8 } if name == "a")));
        assert!(ast.decls.iter().any(|d| matches!(d, Decl::Reg { name, width: 4 } if name == "h")));
    }

    #[test]
    fn parameterized_memory_depth() {
        let src = r#"
module m(clk);
  parameter DEPTH = 16;
  input clk;
  reg [7:0] store [0:DEPTH-1];
endmodule
"#;
        let ast = parse_module(src).unwrap();
        assert!(ast
            .decls
            .iter()
            .any(|d| matches!(d, Decl::Mem { depth: 16, .. })));
    }

    #[test]
    fn unknown_identifier_in_constant_context_rejected() {
        assert!(parse_module("module m(); input [GHOST-1:0] a; endmodule").is_err());
    }

    #[test]
    fn if_else_chain() {
        let src = r#"
module c(clk, x);
  input clk;
  input [1:0] x;
  reg [1:0] s;
  always @(posedge clk) begin
    if (x == 2'd0) s <= 2'd3;
    else if (x == 2'd1) s <= 2'd2;
    else begin
      s <= x;
    end
  end
endmodule
"#;
        let ast = parse_module(src).unwrap();
        let Stmt::If { else_stmts, .. } = &ast.always_blocks[0][0] else {
            panic!()
        };
        assert!(matches!(&else_stmts[0], Stmt::If { .. }));
    }
}
