//! Cycle-accurate simulation of RTL modules.

use std::collections::BTreeMap;
use std::fmt;

use gila_expr::{eval, BitVecValue, Env, EvalError, MemValue, Value};

use crate::ir::RtlModule;

/// An error during RTL simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtlSimError {
    /// An input was not provided.
    MissingInput {
        /// The missing pin's name.
        input: String,
    },
    /// A provided value has the wrong width.
    WidthMismatch {
        /// The pin name.
        name: String,
        /// Expected width.
        expected: u32,
        /// Provided width.
        found: u32,
    },
    /// Evaluation failed (should not happen on validated modules).
    Eval(
        /// The underlying evaluation error.
        EvalError,
    ),
    /// The named signal does not exist.
    UnknownSignal {
        /// The requested name.
        name: String,
    },
}

impl fmt::Display for RtlSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlSimError::MissingInput { input } => write!(f, "missing input {input:?}"),
            RtlSimError::WidthMismatch {
                name,
                expected,
                found,
            } => write!(f, "input {name:?} has width {found}, expected {expected}"),
            RtlSimError::Eval(e) => write!(f, "evaluation failed: {e}"),
            RtlSimError::UnknownSignal { name } => write!(f, "unknown signal {name:?}"),
        }
    }
}

impl std::error::Error for RtlSimError {}

impl From<EvalError> for RtlSimError {
    fn from(e: EvalError) -> Self {
        RtlSimError::Eval(e)
    }
}

/// Input values for one clock cycle, by pin name.
pub type RtlInputMap = BTreeMap<String, BitVecValue>;

/// A cycle-accurate simulator for an [`RtlModule`].
///
/// Each [`RtlSimulator::step`] models one rising clock edge: all register
/// next-state expressions are evaluated against the pre-edge state and
/// committed simultaneously (non-blocking semantics).
///
/// # Examples
///
/// ```
/// use gila_rtl::{parse_verilog, RtlSimulator};
/// use gila_expr::BitVecValue;
///
/// let m = parse_verilog(r#"
/// module counter(clk, en, q);
///   input clk; input en;
///   output [3:0] q;
///   reg [3:0] cnt;
///   assign q = cnt;
///   always @(posedge clk) if (en) cnt <= cnt + 4'd1;
/// endmodule
/// "#)?;
/// let mut sim = RtlSimulator::new(&m);
/// let mut ins = std::collections::BTreeMap::new();
/// ins.insert("clk".to_string(), BitVecValue::from_u64(1, 1));
/// ins.insert("en".to_string(), BitVecValue::from_u64(1, 1));
/// sim.step(&ins)?;
/// sim.step(&ins)?;
/// assert_eq!(sim.signal("q", &ins)?.as_bv().to_u64(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct RtlSimulator<'a> {
    module: &'a RtlModule,
    state: BTreeMap<String, Value>,
}

impl<'a> RtlSimulator<'a> {
    /// Creates a simulator from the module's reset state (declared
    /// initial values, zero otherwise).
    pub fn new(module: &'a RtlModule) -> Self {
        let mut state = BTreeMap::new();
        for r in module.regs() {
            let v = r.init.clone().unwrap_or_else(|| BitVecValue::zero(r.width));
            state.insert(r.name.clone(), Value::Bv(v));
        }
        for mm in module.mems() {
            let v = mm
                .init
                .clone()
                .unwrap_or_else(|| MemValue::zeroed(mm.addr_width, mm.data_width));
            state.insert(mm.name.clone(), Value::Mem(v));
        }
        RtlSimulator { module, state }
    }

    /// The current register/memory state.
    pub fn state(&self) -> &BTreeMap<String, Value> {
        &self.state
    }

    /// Overwrites one state element (for directed tests).
    ///
    /// # Errors
    ///
    /// Returns [`RtlSimError::UnknownSignal`] for unknown state names.
    pub fn set_state(&mut self, name: &str, value: Value) -> Result<(), RtlSimError> {
        if self.state.contains_key(name) {
            self.state.insert(name.to_string(), value);
            Ok(())
        } else {
            Err(RtlSimError::UnknownSignal {
                name: name.to_string(),
            })
        }
    }

    fn env(&self, inputs: &RtlInputMap) -> Result<Env, RtlSimError> {
        let mut env = Env::new();
        for i in self.module.inputs() {
            let v = inputs.get(&i.name).ok_or_else(|| RtlSimError::MissingInput {
                input: i.name.clone(),
            })?;
            if v.width() != i.width {
                return Err(RtlSimError::WidthMismatch {
                    name: i.name.clone(),
                    expected: i.width,
                    found: v.width(),
                });
            }
            env.bind(i.var, v.clone());
        }
        for r in self.module.regs() {
            env.bind(r.var, self.state[&r.name].clone());
        }
        for m in self.module.mems() {
            env.bind(m.var, self.state[&m.name].clone());
        }
        Ok(env)
    }

    /// Advances one clock edge with the given input pin values.
    ///
    /// # Errors
    ///
    /// Returns input-related errors; evaluation errors indicate an
    /// invalid module (see [`RtlModule::validate`]).
    pub fn step(&mut self, inputs: &RtlInputMap) -> Result<(), RtlSimError> {
        let env = self.env(inputs)?;
        let ctx = self.module.ctx();
        let mut next = Vec::new();
        for r in self.module.regs() {
            next.push((r.name.clone(), eval(ctx, r.next, &env)?));
        }
        for m in self.module.mems() {
            next.push((m.name.clone(), eval(ctx, m.next, &env)?));
        }
        for (name, v) in next {
            self.state.insert(name, v);
        }
        Ok(())
    }

    /// Reads any named signal's *current-cycle* value (combinational
    /// signals need the current inputs).
    ///
    /// # Errors
    ///
    /// Returns [`RtlSimError::UnknownSignal`] if no such signal exists.
    pub fn signal(&self, name: &str, inputs: &RtlInputMap) -> Result<Value, RtlSimError> {
        let expr = self
            .module
            .signal_expr(name)
            .ok_or_else(|| RtlSimError::UnknownSignal {
                name: name.to_string(),
            })?;
        let env = self.env(inputs)?;
        Ok(eval(self.module.ctx(), expr, &env)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elab::parse_verilog;

    fn ins(pairs: &[(&str, u64, u32)]) -> RtlInputMap {
        pairs
            .iter()
            .map(|&(n, v, w)| (n.to_string(), BitVecValue::from_u64(v, w)))
            .collect()
    }

    #[test]
    fn counter_counts() {
        let m = parse_verilog(
            r#"
module counter(clk, en, q);
  input clk; input en;
  output [3:0] q;
  reg [3:0] cnt;
  assign q = cnt;
  always @(posedge clk) if (en) cnt <= cnt + 4'd1;
endmodule
"#,
        )
        .unwrap();
        let mut sim = RtlSimulator::new(&m);
        let go = ins(&[("clk", 1, 1), ("en", 1, 1)]);
        let stop = ins(&[("clk", 1, 1), ("en", 0, 1)]);
        for _ in 0..5 {
            sim.step(&go).unwrap();
        }
        sim.step(&stop).unwrap();
        assert_eq!(sim.signal("q", &stop).unwrap().as_bv().to_u64(), 5);
        // wraps at 16
        for _ in 0..11 {
            sim.step(&go).unwrap();
        }
        assert_eq!(sim.signal("q", &stop).unwrap().as_bv().to_u64(), 0);
    }

    #[test]
    fn memory_write_read() {
        let m = parse_verilog(
            r#"
module mem(clk, we, addr, din, dout);
  input clk; input we;
  input [3:0] addr;
  input [7:0] din;
  output [7:0] dout;
  reg [7:0] store [0:15];
  assign dout = store[addr];
  always @(posedge clk) if (we) store[addr] <= din;
endmodule
"#,
        )
        .unwrap();
        let mut sim = RtlSimulator::new(&m);
        let wr = ins(&[("clk", 1, 1), ("we", 1, 1), ("addr", 7, 4), ("din", 0xAB, 8)]);
        sim.step(&wr).unwrap();
        let rd = ins(&[("clk", 1, 1), ("we", 0, 1), ("addr", 7, 4), ("din", 0, 8)]);
        assert_eq!(sim.signal("dout", &rd).unwrap().as_bv().to_u64(), 0xAB);
        let rd2 = ins(&[("clk", 1, 1), ("we", 0, 1), ("addr", 8, 4), ("din", 0, 8)]);
        assert_eq!(sim.signal("dout", &rd2).unwrap().as_bv().to_u64(), 0);
    }

    #[test]
    fn nonblocking_swap() {
        let m = parse_verilog(
            r#"
module swap(clk, go);
  input clk; input go;
  reg [3:0] a;
  reg [3:0] b;
  initial begin a = 4'd3; b = 4'd9; end
  always @(posedge clk) begin
    if (go) begin
      a <= b;
      b <= a;
    end
  end
endmodule
"#,
        )
        .unwrap();
        let mut sim = RtlSimulator::new(&m);
        sim.step(&ins(&[("clk", 1, 1), ("go", 1, 1)])).unwrap();
        assert_eq!(sim.state()["a"].as_bv().to_u64(), 9);
        assert_eq!(sim.state()["b"].as_bv().to_u64(), 3);
    }

    #[test]
    fn last_nonblocking_write_wins() {
        let m = parse_verilog(
            r#"
module w(clk);
  input clk;
  reg [3:0] r;
  always @(posedge clk) begin
    r <= 4'd1;
    r <= 4'd2;
  end
endmodule
"#,
        )
        .unwrap();
        let mut sim = RtlSimulator::new(&m);
        sim.step(&ins(&[("clk", 1, 1)])).unwrap();
        assert_eq!(sim.state()["r"].as_bv().to_u64(), 2);
    }

    #[test]
    fn case_priority_and_default() {
        let m = parse_verilog(
            r#"
module c(clk, s);
  input clk;
  input [1:0] s;
  reg [3:0] r;
  always @(posedge clk) begin
    case (s)
      2'd0: r <= 4'd10;
      2'd1, 2'd2: r <= 4'd11;
      default: r <= 4'd15;
    endcase
  end
endmodule
"#,
        )
        .unwrap();
        let mut sim = RtlSimulator::new(&m);
        for (s, expect) in [(0u64, 10u64), (1, 11), (2, 11), (3, 15)] {
            sim.step(&ins(&[("clk", 1, 1), ("s", s, 2)])).unwrap();
            assert_eq!(sim.state()["r"].as_bv().to_u64(), expect, "s={s}");
        }
    }

    #[test]
    fn missing_and_wrong_inputs() {
        let m = parse_verilog(
            r#"
module x(clk, a);
  input clk;
  input [3:0] a;
  reg [3:0] r;
  always @(posedge clk) r <= a;
endmodule
"#,
        )
        .unwrap();
        let mut sim = RtlSimulator::new(&m);
        assert!(matches!(
            sim.step(&ins(&[("clk", 1, 1)])).unwrap_err(),
            RtlSimError::MissingInput { .. }
        ));
        assert!(matches!(
            sim.step(&ins(&[("clk", 1, 1), ("a", 1, 8)])).unwrap_err(),
            RtlSimError::WidthMismatch { .. }
        ));
        assert!(matches!(
            sim.signal("ghost", &ins(&[("clk", 1, 1), ("a", 1, 4)]))
                .unwrap_err(),
            RtlSimError::UnknownSignal { .. }
        ));
    }
}
