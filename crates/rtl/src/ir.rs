//! The synchronous RTL intermediate representation.
//!
//! A module is a set of input pins, registers (including memories), and
//! combinational logic, all in one clock domain. After elaboration every
//! register carries a single *next-state expression* over input and
//! register variables — wires are fully inlined — which is exactly the
//! form the refinement-check engine unrolls.

use std::collections::BTreeMap;
use std::fmt;

use gila_expr::{BitVecValue, ExprCtx, ExprRef, MemValue, Sort};

/// An input pin (group) of an RTL module.
#[derive(Clone, Debug)]
pub struct RtlInput {
    /// Pin name.
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// The expression variable standing for the pin's value this cycle.
    pub var: ExprRef,
}

/// A register (bit-vector state element).
#[derive(Clone, Debug)]
pub struct RtlReg {
    /// Register name.
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// The expression variable standing for the register's current value.
    pub var: ExprRef,
    /// Reset value, if declared.
    pub init: Option<BitVecValue>,
    /// Next-state expression (defaults to "hold" = the register itself).
    pub next: ExprRef,
}

/// A memory array state element.
#[derive(Clone, Debug)]
pub struct RtlMem {
    /// Memory name.
    pub name: String,
    /// Address width in bits.
    pub addr_width: u32,
    /// Data width in bits.
    pub data_width: u32,
    /// The expression variable standing for the memory's current value.
    pub var: ExprRef,
    /// Reset contents, if declared.
    pub init: Option<MemValue>,
    /// Next-state expression.
    pub next: ExprRef,
}

/// A named combinational signal: an output pin or a named internal wire.
#[derive(Clone, Debug)]
pub struct RtlSignal {
    /// Signal name.
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Defining expression over inputs and registers.
    pub expr: ExprRef,
    /// True if this signal is an output pin of the module.
    pub output: bool,
}

/// An error while constructing an RTL module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IrError {
    /// A name was declared twice.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// An expression has the wrong sort for its role.
    SortMismatch {
        /// Where the mismatch occurred.
        context: String,
        /// Expected sort.
        expected: Sort,
        /// Found sort.
        found: Sort,
    },
    /// An expression references a variable that is not an input or state.
    UnknownVar {
        /// Where the reference occurred.
        context: String,
        /// The unknown variable.
        var: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DuplicateName { name } => write!(f, "name {name:?} declared twice"),
            IrError::SortMismatch {
                context,
                expected,
                found,
            } => write!(f, "{context}: expected sort {expected}, found {found}"),
            IrError::UnknownVar { context, var } => {
                write!(f, "{context}: reference to undeclared variable {var:?}")
            }
        }
    }
}

impl std::error::Error for IrError {}

/// A synchronous, single-clock RTL module.
///
/// # Examples
///
/// Building a 4-bit up-counter directly in the IR:
///
/// ```
/// use gila_rtl::RtlModule;
/// use gila_expr::Sort;
///
/// let mut m = RtlModule::new("counter");
/// let en = m.input("en", 1);
/// let cnt = m.reg("cnt", 4, Some(0));
/// let one = m.ctx_mut().bv_u64(1, 4);
/// let inc = m.ctx_mut().bvadd(cnt, one);
/// let en_set = m.ctx_mut().eq_u64(en, 1);
/// let next = m.ctx_mut().ite(en_set, inc, cnt);
/// m.set_next("cnt", next)?;
/// m.signal("count_out", cnt, true)?;
/// assert_eq!(m.state_bits(), 4);
/// # Ok::<(), gila_rtl::IrError>(())
/// ```
#[derive(Clone, Debug)]
pub struct RtlModule {
    name: String,
    ctx: ExprCtx,
    inputs: Vec<RtlInput>,
    regs: Vec<RtlReg>,
    mems: Vec<RtlMem>,
    signals: Vec<RtlSignal>,
    /// Source line count, when elaborated from Verilog text.
    source_loc: Option<usize>,
}

impl RtlModule {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        RtlModule {
            name: name.into(),
            ctx: ExprCtx::new(),
            inputs: Vec::new(),
            regs: Vec::new(),
            mems: Vec::new(),
            signals: Vec::new(),
            source_loc: None,
        }
    }

    /// The module's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The expression context holding all of this module's expressions.
    pub fn ctx(&self) -> &ExprCtx {
        &self.ctx
    }

    /// Mutable access to the expression context.
    pub fn ctx_mut(&mut self) -> &mut ExprCtx {
        &mut self.ctx
    }

    fn has_name(&self, name: &str) -> bool {
        self.inputs.iter().any(|x| x.name == name)
            || self.regs.iter().any(|x| x.name == name)
            || self.mems.iter().any(|x| x.name == name)
            || self.signals.iter().any(|x| x.name == name)
    }

    /// Declares an input pin and returns its expression variable.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names (module construction is programmer- or
    /// parser-facing; the parser reports duplicates before reaching here).
    pub fn input(&mut self, name: impl Into<String>, width: u32) -> ExprRef {
        let name = name.into();
        assert!(!self.has_name(&name), "duplicate declaration {name:?}");
        let var = self.ctx.var(name.clone(), Sort::Bv(width));
        self.inputs.push(RtlInput { name, width, var });
        var
    }

    /// Declares a register with an optional reset value (low 64 bits).
    /// Its next-state defaults to holding its value; see
    /// [`RtlModule::set_next`].
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn reg(&mut self, name: impl Into<String>, width: u32, init: Option<u64>) -> ExprRef {
        let name = name.into();
        assert!(!self.has_name(&name), "duplicate declaration {name:?}");
        let var = self.ctx.var(name.clone(), Sort::Bv(width));
        self.regs.push(RtlReg {
            name,
            width,
            var,
            init: init.map(|x| BitVecValue::from_u64(x, width)),
            next: var,
        });
        var
    }

    /// Declares a memory array; next-state defaults to holding.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn mem(&mut self, name: impl Into<String>, addr_width: u32, data_width: u32) -> ExprRef {
        let name = name.into();
        assert!(!self.has_name(&name), "duplicate declaration {name:?}");
        let var = self.ctx.var(
            name.clone(),
            Sort::Mem {
                addr_width,
                data_width,
            },
        );
        self.mems.push(RtlMem {
            name,
            addr_width,
            data_width,
            var,
            init: None,
            next: var,
        });
        var
    }

    /// Sets the next-state expression of a register or memory.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownVar`] if no such state exists and
    /// [`IrError::SortMismatch`] if the expression's sort differs from
    /// the state's.
    pub fn set_next(&mut self, name: &str, next: ExprRef) -> Result<(), IrError> {
        let found = self.ctx.sort_of(next);
        if let Some(r) = self.regs.iter_mut().find(|r| r.name == name) {
            if found != Sort::Bv(r.width) {
                return Err(IrError::SortMismatch {
                    context: format!("next-state of register {name:?}"),
                    expected: Sort::Bv(r.width),
                    found,
                });
            }
            r.next = next;
            return Ok(());
        }
        if let Some(m) = self.mems.iter_mut().find(|m| m.name == name) {
            let expected = Sort::Mem {
                addr_width: m.addr_width,
                data_width: m.data_width,
            };
            if found != expected {
                return Err(IrError::SortMismatch {
                    context: format!("next-state of memory {name:?}"),
                    expected,
                    found,
                });
            }
            m.next = next;
            return Ok(());
        }
        Err(IrError::UnknownVar {
            context: "set_next".into(),
            var: name.to_string(),
        })
    }

    /// Sets a register's reset value.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownVar`] for unknown registers.
    pub fn set_init(&mut self, name: &str, value: BitVecValue) -> Result<(), IrError> {
        if let Some(r) = self.regs.iter_mut().find(|r| r.name == name) {
            if value.width() != r.width {
                return Err(IrError::SortMismatch {
                    context: format!("reset value of {name:?}"),
                    expected: Sort::Bv(r.width),
                    found: Sort::Bv(value.width()),
                });
            }
            r.init = Some(value);
            Ok(())
        } else {
            Err(IrError::UnknownVar {
                context: "set_init".into(),
                var: name.to_string(),
            })
        }
    }

    /// Declares a named combinational signal (`output: true` marks an
    /// output pin).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DuplicateName`] on clashes and
    /// [`IrError::SortMismatch`] if `expr` is not bit-vector sorted.
    pub fn signal(&mut self, name: impl Into<String>, expr: ExprRef, output: bool) -> Result<(), IrError> {
        let name = name.into();
        if self.has_name(&name) {
            return Err(IrError::DuplicateName { name });
        }
        let width = match self.ctx.sort_of(expr) {
            Sort::Bv(w) => w,
            other => {
                return Err(IrError::SortMismatch {
                    context: format!("signal {name:?}"),
                    expected: Sort::Bv(1),
                    found: other,
                })
            }
        };
        self.signals.push(RtlSignal {
            name,
            width,
            expr,
            output,
        });
        Ok(())
    }

    /// Records the Verilog source line count (set by the frontend).
    pub fn set_source_loc(&mut self, loc: usize) {
        self.source_loc = Some(loc);
    }

    /// The Verilog source line count ("RTL Size (LoC)"), if elaborated
    /// from text.
    pub fn source_loc(&self) -> Option<usize> {
        self.source_loc
    }

    /// Declared inputs, in order.
    pub fn inputs(&self) -> &[RtlInput] {
        &self.inputs
    }

    /// Declared registers, in order.
    pub fn regs(&self) -> &[RtlReg] {
        &self.regs
    }

    /// Declared memories, in order.
    pub fn mems(&self) -> &[RtlMem] {
        &self.mems
    }

    /// Declared named signals (outputs and named wires), in order.
    pub fn signals(&self) -> &[RtlSignal] {
        &self.signals
    }

    /// Looks up an input by name.
    pub fn find_input(&self, name: &str) -> Option<&RtlInput> {
        self.inputs.iter().find(|x| x.name == name)
    }

    /// Looks up a register by name.
    pub fn find_reg(&self, name: &str) -> Option<&RtlReg> {
        self.regs.iter().find(|x| x.name == name)
    }

    /// Looks up a memory by name.
    pub fn find_mem(&self, name: &str) -> Option<&RtlMem> {
        self.mems.iter().find(|x| x.name == name)
    }

    /// Looks up a named signal by name.
    pub fn find_signal(&self, name: &str) -> Option<&RtlSignal> {
        self.signals.iter().find(|x| x.name == name)
    }

    /// Resolves any named entity — input, register, memory, or signal —
    /// to the expression standing for its *current-cycle* value. This is
    /// what refinement maps reference on the RTL side.
    pub fn signal_expr(&self, name: &str) -> Option<ExprRef> {
        if let Some(i) = self.find_input(name) {
            return Some(i.var);
        }
        if let Some(r) = self.find_reg(name) {
            return Some(r.var);
        }
        if let Some(m) = self.find_mem(name) {
            return Some(m.var);
        }
        self.find_signal(name).map(|s| s.expr)
    }

    /// Total state bits (registers plus memories in full) — the "# of
    /// RTL State Bits" statistic of Table I.
    pub fn state_bits(&self) -> u64 {
        let reg_bits: u64 = self.regs.iter().map(|r| r.width as u64).sum();
        let mem_bits: u64 = self
            .mems
            .iter()
            .map(|m| (1u64 << m.addr_width) * m.data_width as u64)
            .sum();
        reg_bits + mem_bits
    }

    /// The next-state expressions of all state elements, by name.
    pub fn transition(&self) -> BTreeMap<&str, ExprRef> {
        let mut t: BTreeMap<&str, ExprRef> = BTreeMap::new();
        for r in &self.regs {
            t.insert(&r.name, r.next);
        }
        for m in &self.mems {
            t.insert(&m.name, m.next);
        }
        t
    }

    /// Validates that every next-state and signal expression only
    /// references declared inputs and state variables.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownVar`] naming the first stray variable.
    pub fn validate(&self) -> Result<(), IrError> {
        let mut roots: Vec<ExprRef> = Vec::new();
        roots.extend(self.regs.iter().map(|r| r.next));
        roots.extend(self.mems.iter().map(|m| m.next));
        roots.extend(self.signals.iter().map(|s| s.expr));
        for v in self.ctx.vars_of(&roots) {
            let name = self.ctx.var_name(v).expect("var node");
            let declared = self.inputs.iter().any(|x| x.name == name)
                || self.regs.iter().any(|x| x.name == name)
                || self.mems.iter().any(|x| x.name == name);
            if !declared {
                return Err(IrError::UnknownVar {
                    context: "validate".into(),
                    var: name.to_string(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> RtlModule {
        let mut m = RtlModule::new("counter");
        let en = m.input("en", 1);
        let cnt = m.reg("cnt", 4, Some(0));
        let one = m.ctx_mut().bv_u64(1, 4);
        let inc = m.ctx_mut().bvadd(cnt, one);
        let en1 = m.ctx_mut().eq_u64(en, 1);
        let next = m.ctx_mut().ite(en1, inc, cnt);
        m.set_next("cnt", next).unwrap();
        m.signal("count_out", cnt, true).unwrap();
        m
    }

    #[test]
    fn build_and_query() {
        let m = counter();
        assert_eq!(m.state_bits(), 4);
        assert!(m.find_reg("cnt").is_some());
        assert!(m.find_signal("count_out").unwrap().output);
        assert!(m.signal_expr("cnt").is_some());
        assert!(m.signal_expr("en").is_some());
        assert!(m.signal_expr("ghost").is_none());
        m.validate().unwrap();
    }

    #[test]
    fn mem_state_bits() {
        let mut m = RtlModule::new("memmod");
        m.mem("ram", 8, 8);
        assert_eq!(m.state_bits(), 2048);
    }

    #[test]
    fn set_next_sort_checked() {
        let mut m = counter();
        let bad = m.ctx_mut().bv_u64(0, 8);
        assert!(matches!(
            m.set_next("cnt", bad).unwrap_err(),
            IrError::SortMismatch { .. }
        ));
        assert!(matches!(
            m.set_next("ghost", bad).unwrap_err(),
            IrError::UnknownVar { .. }
        ));
    }

    #[test]
    fn validate_catches_stray_vars() {
        let mut m = counter();
        let stray = m.ctx_mut().var("stray", Sort::Bv(4));
        m.set_next("cnt", stray).unwrap();
        assert!(matches!(
            m.validate().unwrap_err(),
            IrError::UnknownVar { .. }
        ));
    }

    #[test]
    fn duplicate_signal_rejected() {
        let mut m = counter();
        let e = m.ctx().find_var("cnt").unwrap();
        assert!(matches!(
            m.signal("cnt", e, false).unwrap_err(),
            IrError::DuplicateName { .. }
        ));
    }
}
