//! Verilog emission: render an [`RtlModule`] back to Verilog source.
//!
//! Together with `gila-verify`'s ILA-to-RTL synthesis this closes the
//! loop specification -> RTL -> Verilog text, and the emitted text
//! round-trips through [`crate::parse_verilog`] (checked by tests for
//! every case-study design).

use std::collections::HashMap;
use std::fmt::Write as _;

use gila_expr::{ExprCtx, ExprNode, ExprRef, Op, Sort};

use crate::ir::RtlModule;

/// An error during emission: the module uses an expression form with no
/// Verilog rendering in the supported subset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EmitError {
    message: String,
}

impl std::fmt::Display for EmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot emit verilog: {}", self.message)
    }
}

impl std::error::Error for EmitError {}

fn err(message: impl Into<String>) -> EmitError {
    EmitError {
        message: message.into(),
    }
}

/// Tracks emitted helper wires for memory-write chains.
struct Emitter<'a> {
    ctx: &'a ExprCtx,
    /// Rendered text per node (bit-vector expressions only).
    memo: HashMap<ExprRef, String>,
}

impl Emitter<'_> {
    /// Renders a bit-vector expression as a Verilog expression string.
    fn bv(&mut self, e: ExprRef) -> Result<String, EmitError> {
        if let Some(s) = self.memo.get(&e) {
            return Ok(s.clone());
        }
        let text = match self.ctx.node(e) {
            ExprNode::BvConst(v) => format!("{}'h{:x}", v.width(), v),
            ExprNode::BoolConst(_) | ExprNode::MemConst(_) => {
                return Err(err("bare bool/memory constants have no bv rendering"))
            }
            ExprNode::Var { name, sort } => match sort {
                Sort::Bv(_) => name.clone(),
                _ => return Err(err(format!("variable {name:?} is not a bit-vector"))),
            },
            ExprNode::App { op, args, .. } => {
                let bin = |me: &mut Self, sym: &str, args: &[ExprRef]| -> Result<String, EmitError> {
                    let a = me.bv(args[0])?;
                    let b = me.bv(args[1])?;
                    Ok(format!("({a} {sym} {b})"))
                };
                match op {
                    Op::BvNot => format!("(~{})", self.bv(args[0])?),
                    Op::BvNeg => format!("(-{})", self.bv(args[0])?),
                    Op::BvAnd => bin(self, "&", args)?,
                    Op::BvOr => bin(self, "|", args)?,
                    Op::BvXor => bin(self, "^", args)?,
                    Op::BvAdd => bin(self, "+", args)?,
                    Op::BvSub => bin(self, "-", args)?,
                    Op::BvMul => bin(self, "*", args)?,
                    Op::BvUdiv => bin(self, "/", args)?,
                    Op::BvUrem => bin(self, "%", args)?,
                    Op::BvShl => bin(self, "<<", args)?,
                    Op::BvLshr => bin(self, ">>", args)?,
                    Op::BvAshr => bin(self, ">>>", args)?,
                    Op::BvConcat => {
                        let a = self.bv(args[0])?;
                        let b = self.bv(args[1])?;
                        format!("{{{a}, {b}}}")
                    }
                    Op::BvExtract { hi, lo } => {
                        // Part selects only apply to plain identifiers in
                        // the subset; wrap anything else via a bit trick:
                        // (expr >> lo) masked by width is wordy, so fall
                        // back to shifting when the operand is compound.
                        match self.ctx.node(args[0]) {
                            ExprNode::Var { name, .. } => {
                                if hi == lo {
                                    format!("{name}[{lo}]")
                                } else {
                                    format!("{name}[{hi}:{lo}]")
                                }
                            }
                            _ => {
                                let inner = self.bv(args[0])?;
                                let w = self
                                    .ctx
                                    .sort_of(args[0])
                                    .bv_width()
                                    .expect("bv operand");
                                let width = hi - lo + 1;
                                // ((inner >> lo) & mask) then truncation by
                                // the consumer; we emit an explicit mask so
                                // the value is exact at any use width.
                                let mask = gila_expr::BitVecValue::ones(width)
                                    .zext(w.max(width));
                                format!(
                                    "(({inner} >> {w}'d{lo}) & {ww}'h{mask:x})",
                                    ww = w.max(width)
                                )
                            }
                        }
                    }
                    Op::BvZext { .. } => {
                        // Widening is implicit in the subset's width rules.
                        let to = self.ctx.sort_of(e).bv_width().expect("bv");
                        let from = self.ctx.sort_of(args[0]).bv_width().expect("bv");
                        let inner = self.bv(args[0])?;
                        format!("{{{}'d0, {inner}}}", to - from)
                    }
                    Op::BvSext { .. } => {
                        let to = self.ctx.sort_of(e).bv_width().expect("bv");
                        let from = self.ctx.sort_of(args[0]).bv_width().expect("bv");
                        let inner = self.bv(args[0])?;
                        match self.ctx.node(args[0]) {
                            ExprNode::Var { name, .. } => format!(
                                "{{{{{n}{{{name}[{msb}]}}}}, {inner}}}",
                                n = to - from,
                                msb = from - 1
                            ),
                            _ => return Err(err("sign extension of compound expressions")),
                        }
                    }
                    Op::Ite => {
                        let c = self.cond(args[0])?;
                        let t = self.bv(args[1])?;
                        let f = self.bv(args[2])?;
                        format!("({c} ? {t} : {f})")
                    }
                    Op::MemRead => {
                        let a = self.bv(args[1])?;
                        match self.ctx.node(args[0]) {
                            ExprNode::Var { name, .. } => format!("{name}[{a}]"),
                            _ => return Err(err("reads of composite memory expressions")),
                        }
                    }
                    Op::BoolToBv => {
                        let c = self.cond(args[0])?;
                        format!("({c} ? 1'b1 : 1'b0)")
                    }
                    other => {
                        return Err(err(format!(
                            "{other:?} produces a non-bit-vector value"
                        )))
                    }
                }
            }
        };
        self.memo.insert(e, text.clone());
        Ok(text)
    }

    /// Renders a boolean expression as a Verilog condition string.
    fn cond(&mut self, e: ExprRef) -> Result<String, EmitError> {
        Ok(match self.ctx.node(e) {
            ExprNode::BoolConst(b) => if *b { "1'b1" } else { "1'b0" }.to_string(),
            ExprNode::Var { name, .. } => {
                return Err(err(format!("boolean variable {name:?} has no pin form")))
            }
            ExprNode::App { op, args, .. } => match op {
                Op::Not => format!("(!{})", self.cond(args[0])?),
                Op::And => format!("({} && {})", self.cond(args[0])?, self.cond(args[1])?),
                Op::Or => format!("({} || {})", self.cond(args[0])?, self.cond(args[1])?),
                Op::Xor | Op::Iff => {
                    let a = self.cond(args[0])?;
                    let b = self.cond(args[1])?;
                    let eq = format!("(({a} ? 1'b1 : 1'b0) == ({b} ? 1'b1 : 1'b0))");
                    if *op == Op::Iff {
                        eq
                    } else {
                        format!("(!{eq})")
                    }
                }
                Op::Implies => format!("((!{}) || {})", self.cond(args[0])?, self.cond(args[1])?),
                Op::Ite => format!(
                    "({} ? {} : {})",
                    self.cond(args[0])?,
                    self.cond(args[1])?,
                    self.cond(args[2])?
                ),
                Op::Eq => {
                    // bv or mem equality; only bv is emittable.
                    if !self.ctx.sort_of(args[0]).is_bv() {
                        return Err(err("memory equality has no Verilog form"));
                    }
                    format!("({} == {})", self.bv(args[0])?, self.bv(args[1])?)
                }
                Op::BvUlt => format!("({} < {})", self.bv(args[0])?, self.bv(args[1])?),
                Op::BvUle => format!("({} <= {})", self.bv(args[0])?, self.bv(args[1])?),
                Op::BvSlt | Op::BvSle => {
                    return Err(err("signed comparisons are outside the emitted subset"))
                }
                other => return Err(err(format!("{other:?} is not boolean"))),
            },
            _ => return Err(err("unexpected boolean leaf")),
        })
    }
}

/// Emits a memory next-state expression as a tree of `if`/`else` with
/// single-word non-blocking writes. Supported shapes: the memory's own
/// variable (hold), `MemWrite(base, addr, data)` with a supported
/// `base`, and `Ite(cond, t, f)` with supported branches — which covers
/// both frontend-compiled always blocks and synthesized ILA updates.
fn emit_mem_tree(
    em: &mut Emitter<'_>,
    mem_name: &str,
    mem_var: ExprRef,
    e: ExprRef,
    indent: usize,
) -> Result<String, EmitError> {
    let pad = "  ".repeat(indent);
    if e == mem_var {
        // Hold: contributes no statements.
        return Ok(String::new());
    }
    match em.ctx.node(e) {
        ExprNode::App { op: Op::Ite, args, .. } => {
            let (c, t, f) = (args[0], args[1], args[2]);
            let cond = em.cond(c)?;
            let then_body = emit_mem_tree(em, mem_name, mem_var, t, indent + 1)?;
            let else_body = emit_mem_tree(em, mem_name, mem_var, f, indent + 1)?;
            let mut out = String::new();
            match (then_body.is_empty(), else_body.is_empty()) {
                (true, true) => {}
                (false, true) => {
                    let _ = writeln!(out, "{pad}if ({cond}) begin");
                    out.push_str(&then_body);
                    let _ = writeln!(out, "{pad}end");
                }
                (true, false) => {
                    let _ = writeln!(out, "{pad}if (!({cond})) begin");
                    out.push_str(&else_body);
                    let _ = writeln!(out, "{pad}end");
                }
                (false, false) => {
                    let _ = writeln!(out, "{pad}if ({cond}) begin");
                    out.push_str(&then_body);
                    let _ = writeln!(out, "{pad}end");
                    let _ = writeln!(out, "{pad}else begin");
                    out.push_str(&else_body);
                    let _ = writeln!(out, "{pad}end");
                }
            }
            Ok(out)
        }
        ExprNode::App {
            op: Op::MemWrite,
            args,
            ..
        } => {
            let (base, addr, data) = (args[0], args[1], args[2]);
            // Inner writes first: the outer (later) non-blocking write
            // wins on address collisions, matching nested-write
            // semantics.
            let mut out = emit_mem_tree(em, mem_name, mem_var, base, indent)?;
            let a = em.bv(addr)?;
            let d = em.bv(data)?;
            let _ = writeln!(out, "{pad}{mem_name}[{a}] <= {d};");
            Ok(out)
        }
        _ => Err(err("unsupported memory update shape")),
    }
}

impl RtlModule {
    /// Emits the module as Verilog source in the supported subset.
    ///
    /// Every register becomes an unconditional non-blocking assignment
    /// of its next-state expression; memory next-states must be chains
    /// of conditional single-word writes (the shape the frontend and
    /// the ILA synthesizer produce).
    ///
    /// # Errors
    ///
    /// Returns an [`EmitError`] if an expression falls outside the
    /// emittable subset (e.g. equality over whole memories).
    pub fn to_verilog(&self) -> Result<String, EmitError> {
        let mut em = Emitter {
            ctx: self.ctx(),
            memo: HashMap::new(),
        };
        let mut out = String::new();
        // Synthesized modules have no explicit clock pin; emit one.
        let needs_clk = self.find_input("clk").is_none();
        let mut ports: Vec<String> = if needs_clk {
            vec!["clk".to_string()]
        } else {
            Vec::new()
        };
        ports.extend(self.inputs().iter().map(|i| i.name.clone()));
        let _ = writeln!(out, "module {}({});", self.name(), ports.join(", "));
        if needs_clk {
            let _ = writeln!(out, "  input clk;");
        }
        for i in self.inputs() {
            if i.width == 1 {
                let _ = writeln!(out, "  input {};", i.name);
            } else {
                let _ = writeln!(out, "  input [{}:0] {};", i.width - 1, i.name);
            }
        }
        for r in self.regs() {
            if r.width == 1 {
                let _ = writeln!(out, "  reg {};", r.name);
            } else {
                let _ = writeln!(out, "  reg [{}:0] {};", r.width - 1, r.name);
            }
        }
        for m in self.mems() {
            let _ = writeln!(
                out,
                "  reg [{}:0] {} [0:{}];",
                m.data_width - 1,
                m.name,
                (1u64 << m.addr_width) - 1
            );
        }
        // Initial values.
        let with_init: Vec<_> = self.regs().iter().filter(|r| r.init.is_some()).collect();
        if !with_init.is_empty() {
            let _ = writeln!(out, "  initial begin");
            for r in with_init {
                let v = r.init.as_ref().expect("filtered");
                let _ = writeln!(out, "    {} = {}'h{:x};", r.name, r.width, v);
            }
            let _ = writeln!(out, "  end");
        }
        let _ = writeln!(out, "  always @(posedge clk) begin");
        for r in self.regs() {
            let next = em.bv(r.next)?;
            let _ = writeln!(out, "    {} <= {};", r.name, next);
        }
        for m in self.mems() {
            let mem_var = self
                .ctx()
                .find_var(&m.name)
                .expect("memory declared");
            let body = emit_mem_tree(&mut em, &m.name, mem_var, m.next, 2)?;
            out.push_str(&body);
        }
        let _ = writeln!(out, "  end");
        let _ = writeln!(out, "endmodule");
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::elab::parse_verilog;
    use crate::sim::RtlSimulator;
    use gila_expr::BitVecValue;
    use rand::{Rng, SeedableRng};

    /// Parse -> emit -> reparse, then co-simulate original and round
    /// tripped modules under random inputs.
    fn roundtrip_and_cosim(src: &str, cycles: usize) {
        let original = parse_verilog(src).expect("valid source");
        let emitted = original.to_verilog().expect("emittable");
        let reparsed = parse_verilog(&emitted)
            .unwrap_or_else(|e| panic!("emitted verilog invalid: {e}\n{emitted}"));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xE317);
        let mut sim_a = RtlSimulator::new(&original);
        let mut sim_b = RtlSimulator::new(&reparsed);
        for cycle in 0..cycles {
            let mut ins = std::collections::BTreeMap::new();
            for i in original.inputs() {
                let bits: Vec<bool> = (0..i.width).map(|_| rng.gen()).collect();
                ins.insert(i.name.clone(), BitVecValue::from_bits(&bits));
            }
            ins.insert("clk".to_string(), BitVecValue::from_u64(1, 1));
            sim_a.step(&ins).expect("valid");
            sim_b.step(&ins).expect("valid");
            for (name, v) in sim_a.state() {
                assert_eq!(
                    v,
                    &sim_b.state()[name],
                    "{name} diverged at cycle {cycle}\n{emitted}"
                );
            }
        }
    }

    #[test]
    fn counter_roundtrips() {
        roundtrip_and_cosim(
            r#"
module counter(clk, en);
  input clk; input en;
  reg [3:0] cnt;
  initial begin cnt = 4'h5; end
  always @(posedge clk) if (en) cnt <= cnt + 4'd1;
endmodule
"#,
            50,
        );
    }

    #[test]
    fn memory_module_roundtrips() {
        roundtrip_and_cosim(
            r#"
module mem(clk, we, addr, din);
  input clk; input we;
  input [3:0] addr;
  input [7:0] din;
  reg [7:0] store [0:15];
  reg [7:0] last;
  always @(posedge clk) begin
    if (we) store[addr] <= din;
    else last <= store[addr];
  end
endmodule
"#,
            80,
        );
    }

    #[test]
    fn case_logic_roundtrips() {
        roundtrip_and_cosim(
            r#"
module c(clk, s, x);
  input clk;
  input [1:0] s;
  input [7:0] x;
  reg [7:0] r;
  always @(posedge clk) begin
    case (s)
      2'd0: r <= x;
      2'd1: r <= r + x;
      2'd2: r <= r - x;
      default: r <= 8'd0;
    endcase
  end
endmodule
"#,
            80,
        );
    }

    #[test]
    fn emitted_text_is_structured() {
        let m = parse_verilog(
            r#"
module t(clk, a);
  input clk;
  input [3:0] a;
  reg [3:0] r;
  always @(posedge clk) r <= a;
endmodule
"#,
        )
        .unwrap();
        let v = m.to_verilog().unwrap();
        assert!(v.starts_with("module t(clk, a);"));
        assert!(v.contains("input [3:0] a;"));
        assert!(v.contains("reg [3:0] r;"));
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.trim_end().ends_with("endmodule"));
    }
}
