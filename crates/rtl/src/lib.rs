//! # gila-rtl — RTL substrate: IR, Verilog frontend, simulator
//!
//! The implementation side of the gila verification flow. RTL designs are
//! represented as synchronous single-clock-domain modules
//! ([`RtlModule`]): input pins, registers and memories with *next-state
//! expressions* over the shared [`gila_expr`] language, and named
//! combinational signals.
//!
//! Designs can be built programmatically or parsed from a Verilog subset
//! ([`parse_verilog`]): `module`/`input`/`output [reg]`/`wire`/`reg`
//! (incl. memories), `assign`, `initial`, and `always @(posedge clk)`
//! with non-blocking assignments, `if`/`else`, and `case`. The
//! HDL-parsing ecosystem gap called out in the reproduction plan is
//! closed by this frontend.
//!
//! [`RtlSimulator`] executes modules cycle-accurately (used for RTL
//! sanity tests and ILA/RTL co-simulation); `gila-verify` consumes the
//! next-state expressions for refinement checking.
//!
//! # Examples
//!
//! ```
//! use gila_rtl::parse_verilog;
//!
//! let m = parse_verilog(r#"
//! module toggler(clk, t);
//!   input clk; input t;
//!   reg state;
//!   always @(posedge clk) if (t) state <= ~state;
//! endmodule
//! "#)?;
//! assert_eq!(m.regs().len(), 1);
//! # Ok::<(), gila_rtl::VerilogError>(())
//! ```

#![warn(missing_docs)]

mod elab;
mod emit;
mod hierarchy;
mod ir;
mod lexer;
mod parser;
mod sim;

pub use elab::{elaborate, parse_rtl_expr, parse_verilog};
pub use emit::EmitError;
pub use hierarchy::parse_verilog_hierarchy;
pub use ir::{IrError, RtlInput, RtlMem, RtlModule, RtlReg, RtlSignal};
pub use lexer::VerilogError;
pub use parser::{
    parse_expr_ast, parse_module, parse_modules, BinOp, Decl, Expr, Instance, ModuleAst, Stmt,
    Target, UnOp,
};
pub use sim::{RtlInputMap, RtlSimError, RtlSimulator};
