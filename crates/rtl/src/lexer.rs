//! Lexer for the supported Verilog subset.

use std::fmt;

use gila_expr::BitVecValue;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Sized literal like `8'hAB` (width, value) or unsized decimal.
    Number {
        /// Declared width; `None` for unsized decimals.
        width: Option<u32>,
        /// The value (width-normalized for sized literals).
        value: BitVecValue,
    },
    /// A punctuation or operator symbol.
    Sym(&'static str),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number { width, value } => match width {
                Some(w) => write!(f, "{w}'h{value:x}"),
                None => write!(f, "{}", value.to_u64()),
            },
            Token::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// A token with its source line (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Source line number.
    pub line: usize,
}

/// An error from lexing or parsing Verilog text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerilogError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl VerilogError {
    /// Creates an error at a line.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        VerilogError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verilog error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for VerilogError {}

const MULTI_SYMS: &[&str] = &[
    "<<<", ">>>", "===", "!==", "<=", ">=", "==", "!=", "&&", "||", "<<", ">>",
];

const SINGLE_SYMS: &[char] = &[
    '(', ')', '[', ']', '{', '}', ';', ',', ':', '?', '=', '<', '>', '+', '-', '*', '/', '%',
    '&', '|', '^', '~', '!', '@', '.', '#',
];

/// Tokenizes Verilog source text.
///
/// # Errors
///
/// Returns a [`VerilogError`] for malformed literals or unexpected
/// characters.
pub fn lex(src: &str) -> Result<Vec<SpannedToken>, VerilogError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if chars[i + 1] == '*' {
                i += 2;
                while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= chars.len() {
                    return Err(VerilogError::new(line, "unterminated block comment"));
                }
                i += 2;
                continue;
            }
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(SpannedToken {
                token: Token::Ident(chars[start..i].iter().collect()),
                line,
            });
            continue;
        }
        // Numbers (possibly sized: 8'hAB).
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
            let dec: String = chars[start..i].iter().filter(|c| **c != '_').collect();
            if i < chars.len() && chars[i] == '\'' {
                let width: u32 = dec
                    .parse()
                    .map_err(|_| VerilogError::new(line, format!("bad literal width {dec:?}")))?;
                if width == 0 || width > 4096 {
                    return Err(VerilogError::new(line, format!("unsupported width {width}")));
                }
                i += 1;
                let base = chars
                    .get(i)
                    .copied()
                    .ok_or_else(|| VerilogError::new(line, "missing literal base"))?;
                i += 1;
                let dstart = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_')
                {
                    i += 1;
                }
                let digits: String = chars[dstart..i].iter().filter(|c| **c != '_').collect();
                if digits.is_empty() {
                    return Err(VerilogError::new(line, "missing literal digits"));
                }
                let raw = match base.to_ascii_lowercase() {
                    'h' => BitVecValue::parse_hex(&digits)
                        .ok_or_else(|| VerilogError::new(line, format!("bad hex literal {digits:?}")))?,
                    'b' => BitVecValue::parse_binary(&digits)
                        .ok_or_else(|| VerilogError::new(line, format!("bad binary literal {digits:?}")))?,
                    'd' => {
                        let v: u64 = digits.parse().map_err(|_| {
                            VerilogError::new(line, format!("bad decimal literal {digits:?}"))
                        })?;
                        BitVecValue::from_u64(v, 64)
                    }
                    other => {
                        return Err(VerilogError::new(
                            line,
                            format!("unsupported literal base {other:?}"),
                        ))
                    }
                };
                // Normalize to the declared width (truncate or zero-extend).
                let value = if raw.width() >= width {
                    raw.extract(width - 1, 0)
                } else {
                    raw.zext(width)
                };
                out.push(SpannedToken {
                    token: Token::Number {
                        width: Some(width),
                        value,
                    },
                    line,
                });
            } else {
                let v: u64 = dec
                    .parse()
                    .map_err(|_| VerilogError::new(line, format!("bad number {dec:?}")))?;
                out.push(SpannedToken {
                    token: Token::Number {
                        width: None,
                        value: BitVecValue::from_u64(v, 64),
                    },
                    line,
                });
            }
            continue;
        }
        // Multi-char symbols first.
        let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
        if let Some(sym) = MULTI_SYMS.iter().find(|s| rest.starts_with(**s)) {
            out.push(SpannedToken {
                token: Token::Sym(sym),
                line,
            });
            i += sym.len();
            continue;
        }
        if SINGLE_SYMS.contains(&c) {
            let sym = SINGLE_SYMS.iter().find(|&&s| s == c).expect("checked");
            // Leak-free static lookup: map char to a static str.
            let s: &'static str = match *sym {
                '(' => "(",
                ')' => ")",
                '[' => "[",
                ']' => "]",
                '{' => "{",
                '}' => "}",
                ';' => ";",
                ',' => ",",
                ':' => ":",
                '?' => "?",
                '=' => "=",
                '<' => "<",
                '>' => ">",
                '+' => "+",
                '-' => "-",
                '*' => "*",
                '/' => "/",
                '%' => "%",
                '&' => "&",
                '|' => "|",
                '^' => "^",
                '~' => "~",
                '!' => "!",
                '@' => "@",
                '.' => ".",
                '#' => "#",
                _ => unreachable!(),
            };
            out.push(SpannedToken {
                token: Token::Sym(s),
                line,
            });
            i += 1;
            continue;
        }
        return Err(VerilogError::new(line, format!("unexpected character {c:?}")));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn idents_and_symbols() {
        assert_eq!(
            toks("assign q <= a + b;"),
            vec![
                Token::Ident("assign".into()),
                Token::Ident("q".into()),
                Token::Sym("<="),
                Token::Ident("a".into()),
                Token::Sym("+"),
                Token::Ident("b".into()),
                Token::Sym(";"),
            ]
        );
    }

    #[test]
    fn sized_literals() {
        let ts = toks("8'hAB 4'b1010 10'd999 42");
        match &ts[0] {
            Token::Number { width, value } => {
                assert_eq!(*width, Some(8));
                assert_eq!(value.to_u64(), 0xAB);
            }
            _ => panic!(),
        }
        match &ts[1] {
            Token::Number { width, value } => {
                assert_eq!(*width, Some(4));
                assert_eq!(value.to_u64(), 0b1010);
            }
            _ => panic!(),
        }
        match &ts[2] {
            Token::Number { width, value } => {
                assert_eq!(*width, Some(10));
                assert_eq!(value.to_u64(), 999);
            }
            _ => panic!(),
        }
        match &ts[3] {
            Token::Number { width, value } => {
                assert_eq!(*width, None);
                assert_eq!(value.to_u64(), 42);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn literal_truncation_and_extension() {
        match &toks("4'hFF")[0] {
            Token::Number { value, .. } => assert_eq!(value.to_u64(), 0xF),
            _ => panic!(),
        }
        match &toks("12'h5")[0] {
            Token::Number { value, .. } => {
                assert_eq!(value.width(), 12);
                assert_eq!(value.to_u64(), 5);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn comments_skipped_and_lines_tracked() {
        let ts = lex("a // comment\nb /* multi\nline */ c").unwrap();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn multi_symbols_greedy() {
        assert_eq!(
            toks("a <= b << c <<< d"),
            vec![
                Token::Ident("a".into()),
                Token::Sym("<="),
                Token::Ident("b".into()),
                Token::Sym("<<"),
                Token::Ident("c".into()),
                Token::Sym("<<<"),
                Token::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn errors_reported_with_line() {
        let err = lex("a\nb $").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(lex("8'q12").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}
