//! Elaboration: from the parsed AST to the [`RtlModule`] IR.
//!
//! Width semantics (a documented simplification of Verilog's rules):
//! arithmetic/bitwise binary operators zero-extend the narrower operand;
//! comparisons and logical operators yield one bit; shifts keep the left
//! operand's width; assignments zero-extend or truncate the right-hand
//! side to the target width. Conditions treat any nonzero value as true.

use std::collections::{BTreeMap, HashMap, HashSet};

use gila_expr::ExprRef;

use crate::ir::RtlModule;
use crate::lexer::VerilogError;
use crate::parser::{parse_module, BinOp, Decl, Expr, ModuleAst, Stmt, Target, UnOp};

/// Elaborates Verilog source text into an [`RtlModule`].
///
/// # Errors
///
/// Returns a [`VerilogError`] for syntax errors and a best-effort line 0
/// error for semantic problems (undeclared names, multiple drivers,
/// combinational cycles, width misuse).
///
/// # Examples
///
/// ```
/// use gila_rtl::parse_verilog;
///
/// let m = parse_verilog(r#"
/// module counter(clk, en, q);
///   input clk;
///   input en;
///   output [3:0] q;
///   reg [3:0] cnt;
///   assign q = cnt;
///   always @(posedge clk) if (en) cnt <= cnt + 4'd1;
/// endmodule
/// "#)?;
/// assert_eq!(m.state_bits(), 4);
/// # Ok::<(), gila_rtl::VerilogError>(())
/// ```
pub fn parse_verilog(src: &str) -> Result<RtlModule, VerilogError> {
    let ast = parse_module(src)?;
    elaborate(&ast)
}

fn sem_err(msg: impl Into<String>) -> VerilogError {
    VerilogError::new(0, msg)
}

/// Elaborates a parsed module AST.
///
/// # Errors
///
/// See [`parse_verilog`].
pub fn elaborate(ast: &ModuleAst) -> Result<RtlModule, VerilogError> {
    let mut m = RtlModule::new(ast.name.clone());
    m.set_source_loc(ast.source_lines);

    // Pass 1: declarations.
    let mut outputs: Vec<(String, u32)> = Vec::new();
    let mut wires: BTreeMap<String, u32> = BTreeMap::new();
    let mut declared: HashSet<String> = HashSet::new();
    for d in &ast.decls {
        let name = match d {
            Decl::Input { name, .. }
            | Decl::Output { name, .. }
            | Decl::OutputReg { name, .. }
            | Decl::Wire { name, .. }
            | Decl::Reg { name, .. }
            | Decl::Mem { name, .. } => name.clone(),
        };
        if !declared.insert(name.clone()) {
            return Err(sem_err(format!("{name:?} declared twice")));
        }
        match d {
            Decl::Input { name, width } => {
                m.input(name.clone(), *width);
            }
            Decl::Reg { name, width } | Decl::OutputReg { name, width } => {
                m.reg(name.clone(), *width, None);
            }
            Decl::Mem {
                name,
                data_width,
                depth,
            } => {
                let addr_width = depth.trailing_zeros();
                m.mem(name.clone(), addr_width, *data_width);
            }
            Decl::Output { name, width } => {
                outputs.push((name.clone(), *width));
                wires.insert(name.clone(), *width);
            }
            Decl::Wire { name, width } => {
                wires.insert(name.clone(), *width);
            }
        }
    }

    // Pass 2: continuous assignments, resolved on demand with cycle
    // detection so wire-to-wire references work in any order.
    let mut assign_map: BTreeMap<&str, &Expr> = BTreeMap::new();
    for (lhs, rhs) in &ast.assigns {
        if !wires.contains_key(lhs.as_str()) {
            return Err(sem_err(format!(
                "assign target {lhs:?} is not a declared wire or output"
            )));
        }
        if assign_map.insert(lhs.as_str(), rhs).is_some() {
            return Err(sem_err(format!("{lhs:?} has multiple continuous drivers")));
        }
    }

    let mut wire_exprs: Vec<(String, ExprRef, bool)> = Vec::new();
    {
        let mut elab = Elaborator {
            m: &mut m,
            wires: &wires,
            assign_map: &assign_map,
            wire_cache: HashMap::new(),
            resolving: HashSet::new(),
        };

        // Resolve every assigned wire.
        for (name, &width) in &wires {
            if assign_map.contains_key(name.as_str()) {
                let e = elab.wire(name, width)?;
                let is_out = outputs.iter().any(|(n, _)| n == name);
                wire_exprs.push((name.clone(), e, is_out));
            }
        }

        // Pass 3: always blocks -> next-state expressions.
        let mut driven: HashSet<String> = HashSet::new();
        for block in &ast.always_blocks {
            let mut acc: BTreeMap<String, ExprRef> = BTreeMap::new();
            let cond = elab.m.ctx_mut().tt();
            elab.compile_stmts(block, cond, &mut acc)?;
            for (state, next) in acc {
                if !driven.insert(state.clone()) {
                    return Err(sem_err(format!(
                        "{state:?} is driven from multiple always blocks"
                    )));
                }
                elab.m
                    .set_next(&state, next)
                    .map_err(|e| sem_err(e.to_string()))?;
            }
        }
    }

    // Pass 4: initial values.
    for (name, value) in &ast.initials {
        let reg = m
            .find_reg(name)
            .ok_or_else(|| sem_err(format!("initial value for non-register {name:?}")))?;
        let v = if value.width() >= reg.width {
            value.extract(reg.width - 1, 0)
        } else {
            value.zext(reg.width)
        };
        m.set_init(name, v).map_err(|e| sem_err(e.to_string()))?;
    }

    // Pass 5: register named signals.
    for (name, e, is_out) in wire_exprs {
        m.signal(name, e, is_out).map_err(|e| sem_err(e.to_string()))?;
    }

    m.validate().map_err(|e| sem_err(e.to_string()))?;
    Ok(m)
}

/// Parses and elaborates a standalone Verilog expression against an
/// already-elaborated module: identifiers resolve to the module's
/// inputs, registers, memories, and named signals.
///
/// Used for the condition strings of refinement maps (assumptions, start
/// and finish conditions).
///
/// # Errors
///
/// Returns a [`VerilogError`] for syntax errors or references to unknown
/// signals.
///
/// # Examples
///
/// ```
/// use gila_rtl::{parse_rtl_expr, parse_verilog};
///
/// let mut m = parse_verilog(r#"
/// module t(clk, a);
///   input clk;
///   input [3:0] a;
///   reg [3:0] r;
///   always @(posedge clk) r <= a;
/// endmodule
/// "#)?;
/// let cond = parse_rtl_expr(&mut m, "r == 4'd3 && a[0]")?;
/// assert!(m.ctx().sort_of(cond).is_bv());
/// # Ok::<(), gila_rtl::VerilogError>(())
/// ```
pub fn parse_rtl_expr(m: &mut RtlModule, src: &str) -> Result<ExprRef, VerilogError> {
    let ast = crate::parser::parse_expr_ast(src)?;
    let wires = BTreeMap::new();
    let assign_map = BTreeMap::new();
    let mut elab = Elaborator {
        m,
        wires: &wires,
        assign_map: &assign_map,
        wire_cache: HashMap::new(),
        resolving: HashSet::new(),
    };
    elab.expr(&ast)
}

struct Elaborator<'a> {
    m: &'a mut RtlModule,
    wires: &'a BTreeMap<String, u32>,
    assign_map: &'a BTreeMap<&'a str, &'a Expr>,
    wire_cache: HashMap<String, ExprRef>,
    resolving: HashSet<String>,
}

impl Elaborator<'_> {
    fn width_of(&self, e: ExprRef) -> u32 {
        self.m
            .ctx()
            .sort_of(e)
            .bv_width()
            .expect("elaborated expressions are bit-vectors")
    }

    /// Zero-extends or truncates to `width`.
    fn adapt(&mut self, e: ExprRef, width: u32) -> ExprRef {
        let w = self.width_of(e);
        if w == width {
            e
        } else if w < width {
            self.m.ctx_mut().zext(e, width)
        } else {
            self.m.ctx_mut().extract(e, width - 1, 0)
        }
    }

    fn truthy(&mut self, e: ExprRef) -> ExprRef {
        self.m.ctx_mut().bv_to_bool(e)
    }

    fn bit_of(&mut self, e: ExprRef) -> ExprRef {
        self.m.ctx_mut().bool_to_bv(e)
    }

    /// Resolves a wire to its defining expression (with cycle detection).
    fn wire(&mut self, name: &str, width: u32) -> Result<ExprRef, VerilogError> {
        if let Some(&e) = self.wire_cache.get(name) {
            return Ok(e);
        }
        if !self.resolving.insert(name.to_string()) {
            return Err(sem_err(format!(
                "combinational cycle through wire {name:?}"
            )));
        }
        let rhs = self
            .assign_map
            .get(name)
            .copied()
            .ok_or_else(|| sem_err(format!("wire {name:?} is never assigned")))?;
        let e = self.expr_with_width(rhs, Some(width))?;
        self.resolving.remove(name);
        self.wire_cache.insert(name.to_string(), e);
        Ok(e)
    }

    fn ident(&mut self, name: &str) -> Result<ExprRef, VerilogError> {
        if let Some(i) = self.m.find_input(name) {
            return Ok(i.var);
        }
        if let Some(r) = self.m.find_reg(name) {
            return Ok(r.var);
        }
        if let Some(&w) = self.wires.get(name) {
            return self.wire(name, w);
        }
        // Standalone-expression mode (post-elaboration): named signals are
        // already registered on the module.
        if let Some(sig) = self.m.find_signal(name) {
            return Ok(sig.expr);
        }
        Err(sem_err(format!("undeclared identifier {name:?}")))
    }

    fn expr_with_width(&mut self, e: &Expr, width: Option<u32>) -> Result<ExprRef, VerilogError> {
        let r = self.expr(e)?;
        Ok(match width {
            Some(w) => self.adapt(r, w),
            None => r,
        })
    }

    fn expr(&mut self, e: &Expr) -> Result<ExprRef, VerilogError> {
        match e {
            Expr::Ident(name) => self.ident(name),
            Expr::Literal { width, value } => {
                let v = match width {
                    Some(_) => value.clone(),
                    // Unsized decimals behave as 32-bit, like Verilog.
                    None => {
                        if value.width() >= 32 {
                            value.extract(31, 0)
                        } else {
                            value.zext(32)
                        }
                    }
                };
                Ok(self.m.ctx_mut().bv(v))
            }
            Expr::Unary(op, inner) => {
                let a = self.expr(inner)?;
                Ok(match op {
                    UnOp::Not => self.m.ctx_mut().bvnot(a),
                    UnOp::Neg => self.m.ctx_mut().bvneg(a),
                    UnOp::LogicalNot => {
                        let b = self.truthy(a);
                        let nb = self.m.ctx_mut().not(b);
                        self.bit_of(nb)
                    }
                    UnOp::RedAnd => {
                        let w = self.width_of(a);
                        let ones = self.m.ctx_mut().bv(gila_expr::BitVecValue::ones(w));
                        let eq = self.m.ctx_mut().eq(a, ones);
                        self.bit_of(eq)
                    }
                    UnOp::RedOr => {
                        let b = self.truthy(a);
                        self.bit_of(b)
                    }
                    UnOp::RedXor => {
                        let w = self.width_of(a);
                        let mut acc = self.m.ctx_mut().extract(a, 0, 0);
                        for i in 1..w {
                            let bit = self.m.ctx_mut().extract(a, i, i);
                            acc = self.m.ctx_mut().bvxor(acc, bit);
                        }
                        acc
                    }
                })
            }
            Expr::Binary(op, l, r) => {
                let a = self.expr(l)?;
                let b = self.expr(r)?;
                self.binary(*op, a, b)
            }
            Expr::Ternary(c, t, e2) => {
                let c = self.expr(c)?;
                let cb = self.truthy(c);
                let t = self.expr(t)?;
                let e2 = self.expr(e2)?;
                let w = self.width_of(t).max(self.width_of(e2));
                let t = self.adapt(t, w);
                let e2 = self.adapt(e2, w);
                Ok(self.m.ctx_mut().ite(cb, t, e2))
            }
            Expr::Index(name, idx) => {
                // Memory word read, or dynamic bit select on a vector.
                if let Some(mm) = self.m.find_mem(name) {
                    let (var, aw) = (mm.var, mm.addr_width);
                    let idx = self.expr(idx)?;
                    let idx = self.adapt(idx, aw);
                    return Ok(self.m.ctx_mut().mem_read(var, idx));
                }
                let base = self.ident(name)?;
                let w = self.width_of(base);
                if let Expr::Literal { value, .. } = idx.as_ref() {
                    let i = value.to_u64() as u32;
                    if i >= w {
                        return Err(sem_err(format!("bit index {i} out of range for {name:?}")));
                    }
                    return Ok(self.m.ctx_mut().extract(base, i, i));
                }
                let idx = self.expr(idx)?;
                let idx = self.adapt(idx, w);
                let shifted = self.m.ctx_mut().bvlshr(base, idx);
                Ok(self.m.ctx_mut().extract(shifted, 0, 0))
            }
            Expr::Range(name, hi, lo) => {
                let base = self.ident(name)?;
                let w = self.width_of(base);
                if *hi >= w {
                    return Err(sem_err(format!(
                        "part select [{hi}:{lo}] out of range for {name:?} (width {w})"
                    )));
                }
                Ok(self.m.ctx_mut().extract(base, *hi, *lo))
            }
            Expr::Concat(items) => {
                let mut acc: Option<ExprRef> = None;
                for item in items {
                    let e = self.expr(item)?;
                    acc = Some(match acc {
                        None => e,
                        Some(a) => self.m.ctx_mut().concat(a, e),
                    });
                }
                acc.ok_or_else(|| sem_err("empty concatenation"))
            }
            Expr::Repeat(n, inner) => {
                let e = self.expr(inner)?;
                let mut acc = e;
                for _ in 1..*n {
                    acc = self.m.ctx_mut().concat(acc, e);
                }
                Ok(acc)
            }
        }
    }

    fn binary(&mut self, op: BinOp, a: ExprRef, b: ExprRef) -> Result<ExprRef, VerilogError> {
        use BinOp::*;
        let (wa, wb) = (self.width_of(a), self.width_of(b));
        let w = wa.max(wb);
        match op {
            Add | Sub | Mul | Div | Mod | And | Or | Xor => {
                let a = self.adapt(a, w);
                let b = self.adapt(b, w);
                let ctx = self.m.ctx_mut();
                Ok(match op {
                    Add => ctx.bvadd(a, b),
                    Sub => ctx.bvsub(a, b),
                    Mul => ctx.bvmul(a, b),
                    Div => ctx.bvudiv(a, b),
                    Mod => ctx.bvurem(a, b),
                    And => ctx.bvand(a, b),
                    Or => ctx.bvor(a, b),
                    Xor => ctx.bvxor(a, b),
                    _ => unreachable!(),
                })
            }
            Eq | Ne | Lt | Le | Gt | Ge => {
                let a = self.adapt(a, w);
                let b = self.adapt(b, w);
                let ctx = self.m.ctx_mut();
                let cond = match op {
                    Eq => ctx.eq(a, b),
                    Ne => ctx.ne(a, b),
                    Lt => ctx.ult(a, b),
                    Le => ctx.ule(a, b),
                    Gt => ctx.ugt(a, b),
                    Ge => ctx.uge(a, b),
                    _ => unreachable!(),
                };
                Ok(self.bit_of(cond))
            }
            LogicalAnd | LogicalOr => {
                let ab = self.truthy(a);
                let bb = self.truthy(b);
                let ctx = self.m.ctx_mut();
                let cond = match op {
                    LogicalAnd => ctx.and(ab, bb),
                    LogicalOr => ctx.or(ab, bb),
                    _ => unreachable!(),
                };
                Ok(self.bit_of(cond))
            }
            Shl | Shr | AShr => {
                // Result has the left operand's width; the amount is
                // adapted to it.
                let amount = self.adapt(b, wa);
                let ctx = self.m.ctx_mut();
                Ok(match op {
                    Shl => ctx.bvshl(a, amount),
                    Shr => ctx.bvlshr(a, amount),
                    AShr => ctx.bvashr(a, amount),
                    _ => unreachable!(),
                })
            }
        }
    }

    fn compile_stmts(
        &mut self,
        stmts: &[Stmt],
        cond: ExprRef,
        acc: &mut BTreeMap<String, ExprRef>,
    ) -> Result<(), VerilogError> {
        for s in stmts {
            match s {
                Stmt::NonBlocking { target, rhs } => match target {
                    Target::Reg(name) => {
                        let reg = self
                            .m
                            .find_reg(name)
                            .ok_or_else(|| {
                                sem_err(format!("non-blocking assign to non-register {name:?}"))
                            })?;
                        let (var, width) = (reg.var, reg.width);
                        let rhs = self.expr_with_width(rhs, Some(width))?;
                        let cur = *acc.get(name).unwrap_or(&var);
                        let next = self.m.ctx_mut().ite(cond, rhs, cur);
                        acc.insert(name.clone(), next);
                    }
                    Target::MemWord(name, addr) => {
                        let mm = self.m.find_mem(name).ok_or_else(|| {
                            sem_err(format!("indexed assign to non-memory {name:?}"))
                        })?;
                        let (var, aw, dw) = (mm.var, mm.addr_width, mm.data_width);
                        let addr = self.expr_with_width(addr, Some(aw))?;
                        let rhs = self.expr_with_width(rhs, Some(dw))?;
                        let cur = *acc.get(name).unwrap_or(&var);
                        let written = self.m.ctx_mut().mem_write(cur, addr, rhs);
                        let next = self.m.ctx_mut().ite(cond, written, cur);
                        acc.insert(name.clone(), next);
                    }
                },
                Stmt::If {
                    cond: c,
                    then_stmts,
                    else_stmts,
                } => {
                    let c = self.expr(c)?;
                    let cb = self.truthy(c);
                    let then_cond = self.m.ctx_mut().and(cond, cb);
                    self.compile_stmts(then_stmts, then_cond, acc)?;
                    let ncb = self.m.ctx_mut().not(cb);
                    let else_cond = self.m.ctx_mut().and(cond, ncb);
                    self.compile_stmts(else_stmts, else_cond, acc)?;
                }
                Stmt::Case {
                    scrutinee,
                    arms,
                    default,
                } => {
                    let scrut = self.expr(scrutinee)?;
                    let sw = self.width_of(scrut);
                    let mut no_match = self.m.ctx_mut().tt();
                    for (labels, body) in arms {
                        let mut matched = self.m.ctx_mut().ff();
                        for l in labels {
                            let lv = self.expr_with_width(l, Some(sw))?;
                            let eq = self.m.ctx_mut().eq(scrut, lv);
                            matched = self.m.ctx_mut().or(matched, eq);
                        }
                        // Priority: this arm fires only when no earlier arm did.
                        let arm_cond = {
                            let ctx = self.m.ctx_mut();
                            let both = ctx.and(no_match, matched);
                            ctx.and(cond, both)
                        };
                        self.compile_stmts(body, arm_cond, acc)?;
                        let nm = self.m.ctx_mut().not(matched);
                        no_match = self.m.ctx_mut().and(no_match, nm);
                    }
                    let def_cond = self.m.ctx_mut().and(cond, no_match);
                    self.compile_stmts(default, def_cond, acc)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elaborates_counter() {
        let m = parse_verilog(
            r#"
module counter(clk, en, q);
  input clk;
  input en;
  output [3:0] q;
  reg [3:0] cnt;
  assign q = cnt;
  always @(posedge clk) if (en) cnt <= cnt + 4'd1;
endmodule
"#,
        )
        .unwrap();
        assert_eq!(m.name(), "counter");
        assert_eq!(m.state_bits(), 4);
        assert!(m.find_signal("q").unwrap().output);
        assert!(m.source_loc().unwrap() >= 8);
    }

    #[test]
    fn wire_chains_resolve_in_any_order() {
        let m = parse_verilog(
            r#"
module w(a, q);
  input [3:0] a;
  output [3:0] q;
  wire [3:0] w2;
  wire [3:0] w1;
  assign q = w2;
  assign w2 = w1 + 4'd1;
  assign w1 = a ^ 4'hF;
endmodule
"#,
        )
        .unwrap();
        assert!(m.find_signal("q").is_some());
        assert!(m.find_signal("w1").is_some());
    }

    #[test]
    fn combinational_cycle_rejected() {
        let err = parse_verilog(
            r#"
module c(q);
  output [3:0] q;
  wire [3:0] w;
  assign w = q;
  assign q = w;
endmodule
"#,
        )
        .unwrap_err();
        assert!(err.message.contains("cycle"));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let err = parse_verilog(
            r#"
module d(clk);
  input clk;
  reg r;
  always @(posedge clk) r <= 1'b0;
  always @(posedge clk) r <= 1'b1;
endmodule
"#,
        )
        .unwrap_err();
        assert!(err.message.contains("multiple always blocks"));
    }

    #[test]
    fn undeclared_identifier_rejected() {
        let err = parse_verilog(
            r#"
module u(q);
  output [3:0] q;
  assign q = ghost;
endmodule
"#,
        )
        .unwrap_err();
        assert!(err.message.contains("undeclared"));
    }

    #[test]
    fn memory_elaborates() {
        let m = parse_verilog(
            r#"
module mem(clk, we, addr, din, dout);
  input clk;
  input we;
  input [3:0] addr;
  input [7:0] din;
  output [7:0] dout;
  reg [7:0] store [0:15];
  assign dout = store[addr];
  always @(posedge clk) if (we) store[addr] <= din;
endmodule
"#,
        )
        .unwrap();
        assert_eq!(m.state_bits(), 128);
        assert_eq!(m.mems().len(), 1);
        assert_eq!(m.mems()[0].addr_width, 4);
    }

    #[test]
    fn reduction_and_dynamic_select_semantics() {
        use crate::sim::RtlSimulator;
        use gila_expr::BitVecValue;
        let m = parse_verilog(
            r#"
module ops(clk, a, i);
  input clk;
  input [7:0] a;
  input [7:0] i;
  reg rand_r;
  reg ror_r;
  reg rxor_r;
  reg bit_r;
  reg [15:0] rep_r;
  always @(posedge clk) begin
    rand_r <= &a;
    ror_r <= |a;
    rxor_r <= ^a;
    bit_r <= a[i];
    rep_r <= {2{a}};
  end
endmodule
"#,
        )
        .unwrap();
        let mut sim = RtlSimulator::new(&m);
        let cases = [
            (0xFFu64, 3u64, (1u64, 1u64, 0u64, 1u64)),
            (0x00, 0, (0, 0, 0, 0)),
            (0xA5, 2, (0, 1, 0, 1)), // 0xA5 = 1010_0101: parity 4 ones -> 0; bit2 = 1
            (0x01, 7, (0, 1, 1, 0)),
        ];
        for (a, i, (rand, ror, rxor, bit)) in cases {
            let mut ins = std::collections::BTreeMap::new();
            ins.insert("clk".to_string(), BitVecValue::from_u64(1, 1));
            ins.insert("a".to_string(), BitVecValue::from_u64(a, 8));
            ins.insert("i".to_string(), BitVecValue::from_u64(i, 8));
            sim.step(&ins).unwrap();
            assert_eq!(sim.state()["rand_r"].as_bv().to_u64(), rand, "&{a:#x}");
            assert_eq!(sim.state()["ror_r"].as_bv().to_u64(), ror, "|{a:#x}");
            assert_eq!(sim.state()["rxor_r"].as_bv().to_u64(), rxor, "^{a:#x}");
            assert_eq!(sim.state()["bit_r"].as_bv().to_u64(), bit, "{a:#x}[{i}]");
            assert_eq!(
                sim.state()["rep_r"].as_bv().to_u64(),
                (a << 8) | a,
                "{{2{{{a:#x}}}}}"
            );
        }
    }

    #[test]
    fn logical_vs_bitwise_operators() {
        use crate::sim::RtlSimulator;
        use gila_expr::BitVecValue;
        let m = parse_verilog(
            r#"
module lg(clk, a, b);
  input clk;
  input [3:0] a;
  input [3:0] b;
  reg land_r;
  reg lor_r;
  reg lnot_r;
  always @(posedge clk) begin
    land_r <= a && b;
    lor_r <= a || b;
    lnot_r <= !a;
  end
endmodule
"#,
        )
        .unwrap();
        let mut sim = RtlSimulator::new(&m);
        let mut ins = std::collections::BTreeMap::new();
        ins.insert("clk".to_string(), BitVecValue::from_u64(1, 1));
        ins.insert("a".to_string(), BitVecValue::from_u64(0b0100, 4));
        ins.insert("b".to_string(), BitVecValue::from_u64(0b0010, 4));
        sim.step(&ins).unwrap();
        // bitwise & of 4 and 2 is 0, but logical && is 1.
        assert_eq!(sim.state()["land_r"].as_bv().to_u64(), 1);
        assert_eq!(sim.state()["lor_r"].as_bv().to_u64(), 1);
        assert_eq!(sim.state()["lnot_r"].as_bv().to_u64(), 0);
    }

    #[test]
    fn parameterized_module_elaborates() {
        let m = parse_verilog(
            r#"
module p(clk, a);
  parameter WIDTH = 12;
  input clk;
  input [WIDTH-1:0] a;
  reg [WIDTH-1:0] r;
  always @(posedge clk) r <= a ^ r;
endmodule
"#,
        )
        .unwrap();
        assert_eq!(m.find_reg("r").unwrap().width, 12);
        assert_eq!(m.find_input("a").unwrap().width, 12);
    }

    #[test]
    fn initial_sets_reset_value() {
        let m = parse_verilog(
            r#"
module i(clk);
  input clk;
  reg [7:0] r;
  initial begin r = 8'h42; end
  always @(posedge clk) r <= r;
endmodule
"#,
        )
        .unwrap();
        assert_eq!(
            m.find_reg("r").unwrap().init,
            Some(gila_expr::BitVecValue::from_u64(0x42, 8))
        );
    }
}
