//! Hierarchical elaboration: flattening module instantiations.
//!
//! A file may define several modules; instances are inlined bottom-up
//! into the chosen top module. An instance `Sub u0 (.a(x + 1), .q(y));`
//! of
//!
//! ```text
//! module Sub(a, q);
//!   input [3:0] a;
//!   output [3:0] q;
//!   ...
//! endmodule
//! ```
//!
//! becomes, inside the parent: a wire `u0__a` assigned `x + 1`, all of
//! `Sub`'s internals renamed with the `u0__` prefix, and an assignment
//! `y = u0__q` (so `y` must be a declared wire/output of the parent).
//! Parameter overrides (`#(...)`) and positional connections are outside
//! the subset.

use std::collections::{BTreeMap, HashSet};

use crate::elab::elaborate;
use crate::ir::RtlModule;
use crate::lexer::VerilogError;
use crate::parser::{parse_modules, Decl, Expr, Instance, ModuleAst, Stmt, Target};

fn err(msg: impl Into<String>) -> VerilogError {
    VerilogError::new(0, msg)
}

fn rename_expr(e: &Expr, map: &dyn Fn(&str) -> String) -> Expr {
    match e {
        Expr::Ident(n) => Expr::Ident(map(n)),
        Expr::Literal { .. } => e.clone(),
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(rename_expr(inner, map))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(rename_expr(a, map)),
            Box::new(rename_expr(b, map)),
        ),
        Expr::Ternary(c, t, f) => Expr::Ternary(
            Box::new(rename_expr(c, map)),
            Box::new(rename_expr(t, map)),
            Box::new(rename_expr(f, map)),
        ),
        Expr::Index(n, idx) => Expr::Index(map(n), Box::new(rename_expr(idx, map))),
        Expr::Range(n, hi, lo) => Expr::Range(map(n), *hi, *lo),
        Expr::Concat(items) => {
            Expr::Concat(items.iter().map(|i| rename_expr(i, map)).collect())
        }
        Expr::Repeat(n, inner) => Expr::Repeat(*n, Box::new(rename_expr(inner, map))),
    }
}

fn rename_stmt(s: &Stmt, map: &dyn Fn(&str) -> String) -> Stmt {
    match s {
        Stmt::NonBlocking { target, rhs } => Stmt::NonBlocking {
            target: match target {
                Target::Reg(n) => Target::Reg(map(n)),
                Target::MemWord(n, a) => Target::MemWord(map(n), rename_expr(a, map)),
            },
            rhs: rename_expr(rhs, map),
        },
        Stmt::If {
            cond,
            then_stmts,
            else_stmts,
        } => Stmt::If {
            cond: rename_expr(cond, map),
            then_stmts: then_stmts.iter().map(|s| rename_stmt(s, map)).collect(),
            else_stmts: else_stmts.iter().map(|s| rename_stmt(s, map)).collect(),
        },
        Stmt::Case {
            scrutinee,
            arms,
            default,
        } => Stmt::Case {
            scrutinee: rename_expr(scrutinee, map),
            arms: arms
                .iter()
                .map(|(labels, body)| {
                    (
                        labels.iter().map(|l| rename_expr(l, map)).collect(),
                        body.iter().map(|s| rename_stmt(s, map)).collect(),
                    )
                })
                .collect(),
            default: default.iter().map(|s| rename_stmt(s, map)).collect(),
        },
    }
}

/// Inlines `sub` (already fully flattened) into `parent` under `inst`.
fn inline(parent: &mut ModuleAst, sub: &ModuleAst, inst: &Instance) -> Result<(), VerilogError> {
    let prefix = format!("{}__", inst.name);
    // Port direction tables.
    let mut input_widths: BTreeMap<&str, u32> = BTreeMap::new();
    let mut output_names: HashSet<&str> = HashSet::new();
    for d in &sub.decls {
        match d {
            Decl::Input { name, width } => {
                input_widths.insert(name, *width);
            }
            Decl::Output { name, .. } | Decl::OutputReg { name, .. } => {
                output_names.insert(name);
            }
            _ => {}
        }
    }
    // Connection sanity.
    for (port, _) in &inst.connections {
        if !input_widths.contains_key(port.as_str()) && !output_names.contains(port.as_str()) {
            return Err(err(format!(
                "instance {:?}: {:?} has no port {port:?}",
                inst.name, inst.module
            )));
        }
    }
    let rename = |n: &str| format!("{prefix}{n}");

    // Inputs become wires in the parent, assigned the connection (the
    // implicit clock needs no connection: all always blocks share the
    // single clock domain).
    for (name, width) in &input_widths {
        let connected = inst.connections.iter().find(|(p, _)| p == name);
        let is_clock = connected.is_none() && *width == 1;
        if connected.is_none() && !is_clock {
            return Err(err(format!(
                "instance {:?}: input port {name:?} is unconnected",
                inst.name
            )));
        }
        parent.decls.push(Decl::Wire {
            name: rename(name),
            width: *width,
        });
        if let Some((_, expr)) = connected {
            parent.assigns.push((rename(name), expr.clone()));
        } else {
            // Tie the unconnected clock pin high (posedge always fires in
            // the shared clock domain model).
            parent.assigns.push((
                rename(name),
                Expr::Literal {
                    width: Some(1),
                    value: gila_expr::BitVecValue::from_u64(1, 1),
                },
            ));
        }
    }
    // Internals: renamed declarations.
    for d in &sub.decls {
        match d {
            Decl::Input { .. } => {}
            Decl::Output { name, width } | Decl::Wire { name, width } => {
                parent.decls.push(Decl::Wire {
                    name: rename(name),
                    width: *width,
                });
            }
            Decl::OutputReg { name, width } | Decl::Reg { name, width } => {
                parent.decls.push(Decl::Reg {
                    name: rename(name),
                    width: *width,
                });
            }
            Decl::Mem {
                name,
                data_width,
                depth,
            } => {
                parent.decls.push(Decl::Mem {
                    name: rename(name),
                    data_width: *data_width,
                    depth: *depth,
                });
            }
        }
    }
    // Renamed logic.
    for (lhs, rhs) in &sub.assigns {
        parent
            .assigns
            .push((rename(lhs), rename_expr(rhs, &rename)));
    }
    for block in &sub.always_blocks {
        parent
            .always_blocks
            .push(block.iter().map(|s| rename_stmt(s, &rename)).collect());
    }
    for (name, value) in &sub.initials {
        parent.initials.push((rename(name), value.clone()));
    }
    // Output connections: parent wire := renamed output.
    for (port, expr) in &inst.connections {
        if output_names.contains(port.as_str()) {
            let Expr::Ident(target) = expr else {
                return Err(err(format!(
                    "instance {:?}: output port {port:?} must connect to a plain identifier",
                    inst.name
                )));
            };
            parent
                .assigns
                .push((target.clone(), Expr::Ident(rename(port))));
        }
    }
    Ok(())
}

/// Returns a copy of the module named `name` with every instance inlined
/// (recursively).
fn flatten(
    modules: &BTreeMap<String, ModuleAst>,
    name: &str,
    stack: &mut Vec<String>,
) -> Result<ModuleAst, VerilogError> {
    let Some(ast) = modules.get(name) else {
        return Err(err(format!("unknown module {name:?}")));
    };
    if stack.iter().any(|s| s == name) {
        return Err(err(format!("recursive instantiation of {name:?}")));
    }
    stack.push(name.to_string());
    let mut flat = ast.clone();
    let instances = std::mem::take(&mut flat.instances);
    for inst in &instances {
        let sub = flatten(modules, &inst.module, stack)?;
        inline(&mut flat, &sub, inst)?;
    }
    stack.pop();
    Ok(flat)
}

/// Parses a multi-module source file and elaborates the module named
/// `top` with all instances flattened.
///
/// # Errors
///
/// Returns a [`VerilogError`] for syntax errors, unknown modules or
/// ports, unconnected non-clock inputs, and recursive instantiation.
///
/// # Examples
///
/// ```
/// use gila_rtl::parse_verilog_hierarchy;
///
/// let m = parse_verilog_hierarchy(r#"
/// module inc(clk, x, y);
///   input clk;
///   input [3:0] x;
///   output [3:0] y;
///   assign y = x + 4'd1;
/// endmodule
///
/// module top(clk, a);
///   input clk;
///   input [3:0] a;
///   wire [3:0] plus_one;
///   reg [3:0] r;
///   inc u0 (.x(a), .y(plus_one));
///   always @(posedge clk) r <= plus_one;
/// endmodule
/// "#, "top")?;
/// assert!(m.find_signal("u0__y").is_some());
/// # Ok::<(), gila_rtl::VerilogError>(())
/// ```
pub fn parse_verilog_hierarchy(src: &str, top: &str) -> Result<RtlModule, VerilogError> {
    let asts = parse_modules(src)?;
    let mut map = BTreeMap::new();
    for ast in asts {
        if map.insert(ast.name.clone(), ast).is_some() {
            return Err(err("duplicate module definition"));
        }
    }
    let mut stack = Vec::new();
    let flat = flatten(&map, top, &mut stack)?;
    elaborate(&flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::RtlSimulator;
    use gila_expr::BitVecValue;

    #[test]
    fn two_level_hierarchy_flattens_and_simulates() {
        let m = parse_verilog_hierarchy(
            r#"
module adder(clk, a, b, s);
  input clk;
  input [7:0] a;
  input [7:0] b;
  output [7:0] s;
  assign s = a + b;
endmodule

module acc(clk, x);
  input clk;
  input [7:0] x;
  wire [7:0] next;
  reg [7:0] total;
  adder u_add (.a(total), .b(x), .s(next));
  always @(posedge clk) total <= next;
endmodule
"#,
            "acc",
        )
        .unwrap();
        let mut sim = RtlSimulator::new(&m);
        let mut ins = std::collections::BTreeMap::new();
        ins.insert("clk".to_string(), BitVecValue::from_u64(1, 1));
        ins.insert("x".to_string(), BitVecValue::from_u64(5, 8));
        for _ in 0..4 {
            sim.step(&ins).unwrap();
        }
        assert_eq!(sim.state()["total"].as_bv().to_u64(), 20);
    }

    #[test]
    fn stateful_submodules_keep_their_registers() {
        let m = parse_verilog_hierarchy(
            r#"
module counter(clk, en, q);
  input clk;
  input en;
  output [3:0] q;
  reg [3:0] c;
  assign q = c;
  always @(posedge clk) if (en) c <= c + 4'd1;
endmodule

module pair(clk, en_a, en_b);
  input clk;
  input en_a;
  input en_b;
  wire [3:0] qa;
  wire [3:0] qb;
  counter ca (.en(en_a), .q(qa));
  counter cb (.en(en_b), .q(qb));
  reg [4:0] sum;
  always @(posedge clk) sum <= {1'b0, qa} + {1'b0, qb};
endmodule
"#,
            "pair",
        )
        .unwrap();
        assert!(m.find_reg("ca__c").is_some());
        assert!(m.find_reg("cb__c").is_some());
        let mut sim = RtlSimulator::new(&m);
        let mut ins = std::collections::BTreeMap::new();
        ins.insert("clk".to_string(), BitVecValue::from_u64(1, 1));
        ins.insert("en_a".to_string(), BitVecValue::from_u64(1, 1));
        ins.insert("en_b".to_string(), BitVecValue::from_u64(0, 1));
        for _ in 0..3 {
            sim.step(&ins).unwrap();
        }
        assert_eq!(sim.state()["ca__c"].as_bv().to_u64(), 3);
        assert_eq!(sim.state()["cb__c"].as_bv().to_u64(), 0);
        // sum lags one cycle: counts qa after 2 increments.
        assert_eq!(sim.state()["sum"].as_bv().to_u64(), 2);
    }

    #[test]
    fn nested_hierarchy() {
        let m = parse_verilog_hierarchy(
            r#"
module leaf(clk, i, o);
  input clk;
  input [3:0] i;
  output [3:0] o;
  assign o = ~i;
endmodule

module mid(clk, i, o);
  input clk;
  input [3:0] i;
  output [3:0] o;
  wire [3:0] t;
  leaf l (.i(i), .o(t));
  assign o = t ^ 4'hA;
endmodule

module top(clk, x);
  input clk;
  input [3:0] x;
  wire [3:0] y;
  reg [3:0] r;
  mid m (.i(x), .o(y));
  always @(posedge clk) r <= y;
endmodule
"#,
            "top",
        )
        .unwrap();
        let mut sim = RtlSimulator::new(&m);
        let mut ins = std::collections::BTreeMap::new();
        ins.insert("clk".to_string(), BitVecValue::from_u64(1, 1));
        ins.insert("x".to_string(), BitVecValue::from_u64(0b0011, 4));
        sim.step(&ins).unwrap();
        // r = (~x) ^ 0xA = 1100 ^ 1010 = 0110
        assert_eq!(sim.state()["r"].as_bv().to_u64(), 0b0110);
    }

    #[test]
    fn hierarchy_errors() {
        // Unknown module.
        assert!(parse_verilog_hierarchy(
            "module t(clk); input clk; ghost g (.a(clk)); endmodule",
            "t"
        )
        .is_err());
        // Unknown port.
        assert!(parse_verilog_hierarchy(
            r#"
module s(clk, a); input clk; input a; endmodule
module t(clk); input clk; s u (.nope(clk)); endmodule
"#,
            "t"
        )
        .is_err());
        // Unconnected non-clock input.
        assert!(parse_verilog_hierarchy(
            r#"
module s(clk, a); input clk; input [3:0] a; endmodule
module t(clk); input clk; s u (); endmodule
"#,
            "t"
        )
        .is_err());
        // Recursion.
        assert!(parse_verilog_hierarchy(
            r#"
module a(clk); input clk; b u (); endmodule
module b(clk); input clk; a u (); endmodule
"#,
            "a"
        )
        .is_err());
        // Output to a non-identifier.
        assert!(parse_verilog_hierarchy(
            r#"
module s(clk, q); input clk; output q; assign q = 1'b0; endmodule
module t(clk); input clk; wire w; s u (.q(w ^ w)); endmodule
"#,
            "t"
        )
        .is_err());
    }

    #[test]
    fn flattened_hierarchy_verifies_like_flat_rtl() {
        // The hierarchical accumulator refines a one-instruction ILA.
        use gila_expr::Sort;
        let m = parse_verilog_hierarchy(
            r#"
module adder(clk, a, b, s);
  input clk;
  input [7:0] a;
  input [7:0] b;
  output [7:0] s;
  assign s = a + b;
endmodule

module acc(clk, x);
  input clk;
  input [7:0] x;
  wire [7:0] next;
  reg [7:0] total;
  adder u_add (.a(total), .b(x), .s(next));
  always @(posedge clk) total <= next;
endmodule
"#,
            "acc",
        )
        .unwrap();
        let _ = (&m, Sort::Bv(8));
        // The refinement check itself lives in gila-verify; here we just
        // confirm the flattened module is a valid single RtlModule.
        m.validate().unwrap();
        assert_eq!(m.regs().len(), 1);
        assert!(m.find_signal("u_add__s").is_some());
    }
}
