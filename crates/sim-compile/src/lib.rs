//! # gila-sim-compile — compiled simulation backend
//!
//! The interpreting simulators ([`gila_core::PortSimulator`],
//! [`gila_rtl::RtlSimulator`]) re-walk the expression DAG with a fresh
//! post-order vector and `HashMap` memo on every evaluation — fine for a
//! few hundred cycles, hopeless for mass randomized bug hunting. This
//! crate compiles a model's next-state functions *once* into a
//! [`TapeProgram`] (a levelized, bit-packed straight-line tape over a
//! dense register file, see `gila_expr::lower`) and then steps it in a
//! tight loop: no per-cycle DAG walks, no hashing, no allocation on the
//! word path.
//!
//! Both simulator families lower to the *same* tape format:
//!
//! - [`CompiledPortSim`] — an ILA port: all decode conditions and all
//!   next-state functions of every instruction become tape roots; a step
//!   is one tape run plus a handful of register copies.
//! - [`CompiledRtlSim`] — an RTL module: all register/memory next-state
//!   expressions plus any requested output signals become tape roots; a
//!   step is one tape run plus a non-blocking commit.
//!
//! Because the two sides share the format, ILA-vs-RTL co-simulation
//! (`gila_verify::cosimulate_compiled`) becomes lockstep tape execution.
//!
//! The compiled simulators mirror the interpreters' observable semantics
//! exactly — same fired instructions, same committed states, same error
//! cases — and are differentially tested against them on every bundled
//! case study (`tests/compiled_sim.rs`).

#![warn(missing_docs)]

use std::collections::BTreeMap;

use gila_core::{PortIla, SimError, StateMap};
use gila_expr::{BitVecValue, MemValue, Slot, Sort, TapeProgram, TapeState, Value};
use gila_rtl::{RtlInputMap, RtlModule, RtlSimError};

/// The outcome of resolving which instruction fired in a tape run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fired {
    /// Exactly one instruction decoded: its index in
    /// [`PortIla::instructions`] order.
    One(usize),
    /// No decode condition held.
    None,
    /// More than one decode condition held.
    Multiple,
}

fn default_value(sort: Sort) -> Value {
    match sort {
        Sort::Bool => Value::Bool(false),
        Sort::Bv(w) => Value::Bv(BitVecValue::zero(w)),
        Sort::Mem {
            addr_width,
            data_width,
        } => Value::Mem(MemValue::zeroed(addr_width, data_width)),
    }
}

/// Decides per commit root whether its value may be *moved* into the
/// state register instead of cloned: the root must be a computed memory
/// slot (re-written by every covering run before any read), must appear
/// only once among this commit's roots, and must not be a slot read
/// outside the commit (`excluded`, e.g. compiled output signals).
fn movable_roots(prog: &TapeProgram, roots: &[Slot], excluded: &[Slot]) -> Vec<bool> {
    roots
        .iter()
        .map(|&r| {
            matches!(prog.slot_sort(r), Sort::Mem { .. })
                && prog.slot_is_computed(r)
                && roots.iter().filter(|&&x| x == r).count() == 1
                && !excluded.contains(&r)
        })
        .collect()
}

/// A commit sorted by register bank, so the hot path (word registers)
/// is one two-phase bulk copy and memory registers swap when liveness
/// allows. All pairs are `(update root, state register)`.
#[derive(Clone, Debug, Default)]
struct CommitPlan {
    words: Vec<(Slot, Slot)>,
    wides: Vec<(Slot, Slot)>,
    /// `(root, state, movable)` — movable roots swap instead of clone.
    mems: Vec<(Slot, Slot, bool)>,
}

/// Reusable scratch for [`CommitPlan::run`] — kept across commits so the
/// steady state allocates nothing.
#[derive(Clone, Debug, Default)]
struct CommitBufs {
    words: Vec<u64>,
    wides: Vec<BitVecValue>,
    mems: Vec<MemValue>,
}

impl CommitPlan {
    /// Sorts `(root, state)` pairs by bank. `excluded` slots are never
    /// moved (they are read outside the commit, e.g. output signals).
    fn new(prog: &TapeProgram, pairs: &[(Slot, Slot)], excluded: &[Slot]) -> Self {
        let roots: Vec<Slot> = pairs.iter().map(|&(r, _)| r).collect();
        let movable = movable_roots(prog, &roots, excluded);
        let mut plan = CommitPlan::default();
        for (&(root, state), &mv) in pairs.iter().zip(&movable) {
            if root.is_word() {
                plan.words.push((root, state));
            } else {
                match prog.slot_sort(root) {
                    Sort::Bv(_) => plan.wides.push((root, state)),
                    _ => plan.mems.push((root, state, mv)),
                }
            }
        }
        plan
    }

    /// Executes the commit: every root read against the pre-state, then
    /// all writes, then the movable swaps (whose roots no write phase
    /// touches — writes hit state registers, roots are computed slots).
    fn run(&self, prog: &TapeProgram, st: &mut TapeState, bufs: &mut CommitBufs) {
        prog.copy_words(st, &self.words, &mut bufs.words);
        bufs.wides.clear();
        for &(root, _) in &self.wides {
            bufs.wides.push(prog.read_wide(st, root).clone());
        }
        bufs.mems.clear();
        for &(root, _, mv) in &self.mems {
            if !mv {
                bufs.mems.push(prog.read_mem(st, root).clone());
            }
        }
        for (&(_, state), v) in self.wides.iter().zip(bufs.wides.drain(..)) {
            prog.put_wide(st, state, v);
        }
        let mut clones = bufs.mems.drain(..);
        for &(root, state, mv) in &self.mems {
            if mv {
                prog.swap_mems(st, root, state);
            } else {
                prog.put_mem(st, state, clones.next().expect("one clone per copy"));
            }
        }
    }
}

/// A compiled simulator for one port-ILA.
///
/// Drop-in faster counterpart of [`gila_core::PortSimulator`]: the
/// high-level [`CompiledPortSim::step`] mirrors its contract (including
/// error cases) exactly, while the `set_input_*` / [`CompiledPortSim::step_fast`]
/// API exposes the allocation-free path used by co-simulation.
///
/// # Examples
///
/// ```
/// use gila_core::{PortIla, StateKind};
/// use gila_expr::{BitVecValue, Sort, Value};
/// use gila_sim_compile::CompiledPortSim;
///
/// let mut p = PortIla::new("counter");
/// let en = p.input("en", Sort::Bv(1));
/// let cnt = p.state("cnt", Sort::Bv(8), StateKind::Output);
/// let d = p.ctx_mut().eq_u64(en, 1);
/// let one = p.ctx_mut().bv_u64(1, 8);
/// let nx = p.ctx_mut().bvadd(cnt, one);
/// p.instr("inc").decode(d).update("cnt", nx).add()?;
/// let d = p.ctx_mut().eq_u64(en, 0);
/// p.instr("hold").decode(d).add()?;
///
/// let mut sim = CompiledPortSim::new(&p);
/// let mut inputs = std::collections::BTreeMap::new();
/// inputs.insert("en".to_string(), Value::Bv(BitVecValue::from_u64(1, 1)));
/// assert_eq!(sim.step(&inputs)?, "inc");
/// assert_eq!(sim.state()["cnt"].as_bv().to_u64(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct CompiledPortSim<'a> {
    port: &'a PortIla,
    prog: TapeProgram,
    st: TapeState,
    /// Parallel to `port.states()`.
    state_slots: Vec<Slot>,
    /// Parallel to `port.inputs()`.
    input_slots: Vec<Slot>,
    /// Parallel to `port.instructions()`: the decode root of each.
    decode_slots: Vec<Slot>,
    /// Parallel to `port.instructions()`: that instruction's commit.
    plans: Vec<CommitPlan>,
    bufs: CommitBufs,
    /// Tape offset ending the decode segment: `0..decode_end` computes
    /// every decode condition, `decode_end..` the update cones.
    decode_end: usize,
    /// Parallel to `port.instructions()`: the tape offset ending that
    /// instruction's update segment. A commit runs
    /// `decode_end..update_ends[idx]` — a sound prefix, since every
    /// computed slot a segment reads is written earlier in the same run
    /// (or in the decode segment evaluated under the same inputs).
    update_ends: Vec<usize>,
}

impl<'a> CompiledPortSim<'a> {
    /// Compiles `port` and starts from its reset state (declared inits,
    /// all-zero otherwise).
    pub fn new(port: &'a PortIla) -> Self {
        let mut sim = Self::compile(port);
        for (i, s) in port.states().iter().enumerate() {
            let v = s.init.clone().unwrap_or_else(|| default_value(s.sort));
            sim.prog.write(&mut sim.st, sim.state_slots[i], &v);
        }
        sim
    }

    /// Compiles `port` and starts from an explicit state.
    ///
    /// # Errors
    ///
    /// Mirrors [`gila_core::PortSimulator::with_state`]: a missing state
    /// is a [`SimError::MissingInput`], a wrongly-sorted one a
    /// [`SimError::SortMismatch`].
    pub fn with_state(port: &'a PortIla, state: StateMap) -> Result<Self, SimError> {
        let mut sim = Self::compile(port);
        for (i, s) in port.states().iter().enumerate() {
            match state.get(&s.name) {
                None => {
                    return Err(SimError::MissingInput {
                        input: s.name.clone(),
                    })
                }
                Some(v) if v.sort() != s.sort => {
                    return Err(SimError::SortMismatch {
                        name: s.name.clone(),
                        expected: s.sort,
                        found: v.sort(),
                    })
                }
                Some(v) => sim.prog.write(&mut sim.st, sim.state_slots[i], v),
            }
        }
        Ok(sim)
    }

    fn compile(port: &'a PortIla) -> Self {
        // Roots: every decode, every update expression, and every state
        // and input variable (so even states no expression reads get a
        // slot to hold their value). The decode conditions form their
        // own leading tape segment so stimulus search re-runs only
        // them; each instruction's update cone then gets its own
        // segment, so a commit runs only the tape prefix ending at the
        // fired instruction's cone instead of every cone. (Variable
        // roots emit no tape instructions, so their trailing group only
        // reserves slots.)
        let mut decode_roots = Vec::new();
        let mut update_groups = Vec::new();
        for instr in port.instructions() {
            decode_roots.push(instr.decode);
            update_groups.push(instr.updates.values().copied().collect::<Vec<_>>());
        }
        let mut var_roots = Vec::new();
        var_roots.extend(port.states().iter().map(|s| s.var));
        var_roots.extend(port.inputs().iter().map(|i| i.var));
        let mut groups: Vec<&[_]> = Vec::with_capacity(update_groups.len() + 2);
        groups.push(&decode_roots);
        for g in &update_groups {
            groups.push(g);
        }
        groups.push(&var_roots);
        let (prog, boundaries) = TapeProgram::compile_segmented(port.ctx(), &groups);
        let decode_end = boundaries[0];
        let update_ends = boundaries[1..boundaries.len() - 1].to_vec();
        let slot = |e| prog.slot_of(e).expect("root compiled");
        let state_index: BTreeMap<&str, usize> = port
            .states()
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.as_str(), i))
            .collect();
        let decode_slots = port.instructions().iter().map(|i| slot(i.decode)).collect();
        let state_slots: Vec<Slot> = port.states().iter().map(|s| slot(s.var)).collect();
        let input_slots = port.inputs().iter().map(|i| slot(i.var)).collect();
        let plans = port
            .instructions()
            .iter()
            .map(|i| {
                let pairs: Vec<(Slot, Slot)> = i
                    .updates
                    .iter()
                    .map(|(name, &e)| (slot(e), state_slots[state_index[name.as_str()]]))
                    .collect();
                CommitPlan::new(&prog, &pairs, &[])
            })
            .collect();
        let st = prog.new_state();
        CompiledPortSim {
            port,
            prog,
            st,
            state_slots,
            input_slots,
            decode_slots,
            plans,
            bufs: CommitBufs::default(),
            decode_end,
            update_ends,
        }
    }

    /// The port being simulated.
    pub fn port(&self) -> &'a PortIla {
        self.port
    }

    /// The compiled tape (for statistics and cross-program reads).
    pub fn program(&self) -> &TapeProgram {
        &self.prog
    }

    /// The live register file (for cross-program reads).
    pub fn tape(&self) -> &TapeState {
        &self.st
    }

    /// The slot holding state `idx` (in [`PortIla::states`] order).
    pub fn state_slot(&self, idx: usize) -> Slot {
        self.state_slots[idx]
    }

    /// The current architectural state, materialized by name.
    pub fn state(&self) -> StateMap {
        self.port
            .states()
            .iter()
            .zip(&self.state_slots)
            .map(|(s, &slot)| (s.name.clone(), self.prog.read(&self.st, slot)))
            .collect()
    }

    /// Overwrites state `idx` with a materialized value.
    pub fn set_state_value(&mut self, idx: usize, v: &Value) {
        self.prog.write(&mut self.st, self.state_slots[idx], v);
    }

    /// Overwrites state `idx` from raw bits (word-bank states only);
    /// the value is masked to the state's width.
    pub fn set_state_word(&mut self, idx: usize, bits: u64) {
        self.prog.write_word(&mut self.st, self.state_slots[idx], bits);
    }

    /// True if state `idx` lives in the word bank (bool or width `<= 64`).
    pub fn state_is_word(&self, idx: usize) -> bool {
        self.state_slots[idx].is_word()
    }

    /// Overwrites memory-typed state `idx` in place from `src`, reusing
    /// the destination map's allocations (the hot path of co-simulation
    /// re-anchoring, where an unchecked memory is re-seeded every cycle).
    pub fn copy_mem_state_from(&mut self, idx: usize, src: &MemValue) {
        self.prog
            .mem_mut(&mut self.st, self.state_slots[idx])
            .copy_from(src);
    }

    /// The names of every instruction whose decode condition held in the
    /// latest tape run (for [`gila_core::SimError::MultipleInstructions`]
    /// payloads).
    pub fn fired_names(&self) -> Vec<String> {
        self.decode_slots
            .iter()
            .zip(self.port.instructions())
            .filter(|(&d, _)| self.prog.read_word(&self.st, d) != 0)
            .map(|(_, i)| i.name.clone())
            .collect()
    }

    /// Sets input `idx` (in [`PortIla::inputs`] order) from raw bits;
    /// the value is masked to the input's width.
    pub fn set_input_word(&mut self, idx: usize, bits: u64) {
        self.prog.write_word(&mut self.st, self.input_slots[idx], bits);
    }

    /// Sets input `idx` from a materialized value.
    pub fn set_input_value(&mut self, idx: usize, v: &Value) {
        self.prog.write(&mut self.st, self.input_slots[idx], v);
    }

    /// True if input `idx` lives in the word bank (width `<= 64`).
    pub fn input_is_word(&self, idx: usize) -> bool {
        self.input_slots[idx].is_word()
    }

    /// Runs the decode segment of the tape over the current inputs and
    /// state and resolves the decode conditions — without evaluating
    /// the update cones or committing anything. The update cones run on
    /// [`CompiledPortSim::commit`], so a rejected stimulus attempt costs
    /// only the decode work.
    pub fn decode_only(&mut self) -> Fired {
        self.prog.run_range(&mut self.st, 0..self.decode_end);
        let mut fired = Fired::None;
        for (idx, &d) in self.decode_slots.iter().enumerate() {
            if self.prog.read_word(&self.st, d) != 0 {
                fired = match fired {
                    Fired::None => Fired::One(idx),
                    _ => return Fired::Multiple,
                };
            }
        }
        fired
    }

    /// Evaluates the update cones over the inputs of the latest
    /// [`CompiledPortSim::decode_only`] and commits the updates of
    /// instruction `idx` (two-phase, so simultaneous swaps read the
    /// pre-state). Call after `decode_only` returned `Fired::One(idx)`.
    ///
    /// Only the tape prefix through instruction `idx`'s own update
    /// segment is evaluated — later instructions' cones are skipped.
    ///
    /// Committed memory update values are *swapped* into their state
    /// registers where liveness allows; the consumed update-root slots
    /// hold the displaced maps until the next run covering them.
    pub fn commit(&mut self, idx: usize) {
        self.prog
            .run_range(&mut self.st, self.decode_end..self.update_ends[idx]);
        self.plans[idx].run(&self.prog, &mut self.st, &mut self.bufs);
    }

    /// One allocation-free step over already-set inputs: runs the tape,
    /// and on a unique decode commits that instruction's updates.
    pub fn step_fast(&mut self) -> Fired {
        let fired = self.decode_only();
        if let Fired::One(idx) = fired {
            self.commit(idx);
        }
        fired
    }

    /// Executes one step from a named input map, mirroring
    /// [`gila_core::PortSimulator::step`] exactly (same fired
    /// instruction, same state commits, same errors).
    ///
    /// # Errors
    ///
    /// [`SimError::MissingInput`] / [`SimError::SortMismatch`] for bad
    /// inputs, [`SimError::NoInstruction`] /
    /// [`SimError::MultipleInstructions`] from decode resolution.
    pub fn step(&mut self, inputs: &BTreeMap<String, Value>) -> Result<String, SimError> {
        for (idx, i) in self.port.inputs().iter().enumerate() {
            let v = inputs.get(&i.name).ok_or_else(|| SimError::MissingInput {
                input: i.name.clone(),
            })?;
            if v.sort() != i.sort {
                return Err(SimError::SortMismatch {
                    name: i.name.clone(),
                    expected: i.sort,
                    found: v.sort(),
                });
            }
            self.set_input_value(idx, v);
        }
        match self.step_fast() {
            Fired::One(idx) => Ok(self.port.instructions()[idx].name.clone()),
            Fired::None => Err(SimError::NoInstruction {
                port: self.port.name().to_string(),
            }),
            Fired::Multiple => {
                // Re-derive the full fired list for the error payload.
                let fired: Vec<String> = self
                    .decode_slots
                    .iter()
                    .zip(self.port.instructions())
                    .filter(|(&d, _)| self.prog.read_word(&self.st, d) != 0)
                    .map(|(_, i)| i.name.clone())
                    .collect();
                Err(SimError::MultipleInstructions {
                    port: self.port.name().to_string(),
                    instructions: fired,
                })
            }
        }
    }
}

/// A compiled, cycle-accurate simulator for an [`RtlModule`].
///
/// Mirrors [`gila_rtl::RtlSimulator`]'s non-blocking semantics: a step
/// evaluates every register and memory next-state expression against the
/// pre-edge state and commits them simultaneously. Output signals named
/// at compile time are evaluated in the same tape run and can be read
/// back without a DAG walk.
#[derive(Clone, Debug)]
pub struct CompiledRtlSim<'a> {
    module: &'a RtlModule,
    prog: TapeProgram,
    st: TapeState,
    /// Parallel to `module.inputs()`.
    input_slots: Vec<Slot>,
    /// Regs then mems, in declaration order: `(name index, state slot)`.
    state_slots: Vec<Slot>,
    state_names: Vec<String>,
    /// `(state slot, next-value root)` pairs for the non-blocking commit.
    next_pairs: Vec<(Slot, Slot)>,
    /// The bank-sorted commit built from `next_pairs`.
    plan: CommitPlan,
    bufs: CommitBufs,
    /// Parallel to the `signals` passed to [`CompiledRtlSim::new`].
    signal_slots: Vec<Slot>,
    /// Tape offset ending the signal segment: `0..signal_end` computes
    /// every compiled output signal, `signal_end..` the next-state cones.
    signal_end: usize,
}

impl<'a> CompiledRtlSim<'a> {
    /// Compiles `module` (and the named output signals) and starts from
    /// the module's reset state.
    ///
    /// # Errors
    ///
    /// [`RtlSimError::UnknownSignal`] if a requested signal does not
    /// exist.
    pub fn new(module: &'a RtlModule, signals: &[String]) -> Result<Self, RtlSimError> {
        // The compiled signals form their own leading tape segment, so
        // observation-only evaluations (co-simulation re-anchoring) can
        // skip the next-state cones via `eval_signals`.
        let mut signal_exprs = Vec::new();
        for name in signals {
            let e = module
                .signal_expr(name)
                .ok_or_else(|| RtlSimError::UnknownSignal { name: name.clone() })?;
            signal_exprs.push(e);
        }
        let mut rest_roots = Vec::new();
        for r in module.regs() {
            rest_roots.push(r.next);
        }
        for m in module.mems() {
            rest_roots.push(m.next);
        }
        for r in module.regs() {
            rest_roots.push(r.var);
        }
        for m in module.mems() {
            rest_roots.push(m.var);
        }
        for i in module.inputs() {
            rest_roots.push(i.var);
        }
        let (prog, boundaries) =
            TapeProgram::compile_segmented(module.ctx(), &[&signal_exprs, &rest_roots]);
        let signal_end = boundaries[0];
        let slot = |e| prog.slot_of(e).expect("root compiled");
        let mut st = prog.new_state();
        let mut state_slots = Vec::new();
        let mut state_names = Vec::new();
        let mut next_pairs = Vec::new();
        for r in module.regs() {
            let s = slot(r.var);
            let v = r.init.clone().unwrap_or_else(|| BitVecValue::zero(r.width));
            prog.write(&mut st, s, &Value::Bv(v));
            next_pairs.push((s, slot(r.next)));
            state_slots.push(s);
            state_names.push(r.name.clone());
        }
        for m in module.mems() {
            let s = slot(m.var);
            let v = m
                .init
                .clone()
                .unwrap_or_else(|| MemValue::zeroed(m.addr_width, m.data_width));
            prog.write(&mut st, s, &Value::Mem(v));
            next_pairs.push((s, slot(m.next)));
            state_slots.push(s);
            state_names.push(m.name.clone());
        }
        let input_slots = module.inputs().iter().map(|i| slot(i.var)).collect();
        let signal_slots: Vec<Slot> = signal_exprs.into_iter().map(slot).collect();
        let pairs: Vec<(Slot, Slot)> = next_pairs.iter().map(|&(s, r)| (r, s)).collect();
        let plan = CommitPlan::new(&prog, &pairs, &signal_slots);
        Ok(CompiledRtlSim {
            module,
            prog,
            st,
            input_slots,
            state_slots,
            state_names,
            next_pairs,
            plan,
            bufs: CommitBufs::default(),
            signal_slots,
            signal_end,
        })
    }

    /// The module being simulated.
    pub fn module(&self) -> &'a RtlModule {
        self.module
    }

    /// Opts in to *state moves*: a memory state register whose reads all
    /// sit in the next-state segment is stolen (swapped, not cloned) by
    /// its final reader during [`CompiledRtlSim::eval`], and written
    /// back by [`CompiledRtlSim::commit`] — which covers every state
    /// element, making the steal invisible across full eval/commit
    /// steps. This removes the last per-cycle `O(entries)` map copy for
    /// store-shaped next-state functions.
    ///
    /// After enabling, memory-typed state and signal values are
    /// unspecified *between* an `eval` and its `commit`; callers must
    /// pair every `eval` with a `commit` before reading them.
    /// Signal-only evaluations ([`CompiledRtlSim::eval_signals`]) never
    /// steal and stay safe at any point.
    pub fn enable_state_moves(&mut self) {
        // Pass-through next roots (`m' = m`) are read by the commit's
        // snapshot phase itself, so those variables must stay put.
        let roots: Vec<Slot> = self.next_pairs.iter().map(|&(_, r)| r).collect();
        self.prog.enable_var_moves(self.signal_end, &roots);
    }

    /// The compiled tape (for statistics and cross-program reads).
    pub fn program(&self) -> &TapeProgram {
        &self.prog
    }

    /// The live register file (for cross-program reads).
    pub fn tape(&self) -> &TapeState {
        &self.st
    }

    /// State element names, regs then mems, in declaration order.
    pub fn state_names(&self) -> &[String] {
        &self.state_names
    }

    /// The current register/memory state, materialized by name.
    pub fn state(&self) -> BTreeMap<String, Value> {
        self.state_names
            .iter()
            .zip(&self.state_slots)
            .map(|(n, &s)| (n.clone(), self.prog.read(&self.st, s)))
            .collect()
    }

    /// Overwrites one state element (for directed tests and random start
    /// states).
    ///
    /// # Errors
    ///
    /// [`RtlSimError::UnknownSignal`] for unknown state names.
    pub fn set_state(&mut self, name: &str, value: Value) -> Result<(), RtlSimError> {
        let idx = self
            .state_names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| RtlSimError::UnknownSignal {
                name: name.to_string(),
            })?;
        self.prog.write(&mut self.st, self.state_slots[idx], &value);
        Ok(())
    }

    /// Sets input `idx` (in [`RtlModule::inputs`] order) from raw bits;
    /// the value is masked to the pin's width.
    pub fn set_input_word(&mut self, idx: usize, bits: u64) {
        self.prog.write_word(&mut self.st, self.input_slots[idx], bits);
    }

    /// Sets input `idx` from a bit-vector value of the pin's width.
    pub fn set_input_bits(&mut self, idx: usize, v: &BitVecValue) {
        let slot = self.input_slots[idx];
        if slot.is_word() {
            self.prog.write_word(&mut self.st, slot, v.to_u64());
        } else {
            self.prog.write(&mut self.st, slot, &Value::Bv(v.clone()));
        }
    }

    /// True if input `idx` lives in the word bank (width `<= 64`).
    pub fn input_is_word(&self, idx: usize) -> bool {
        self.input_slots[idx].is_word()
    }

    /// Evaluates the tape (all next-state expressions and compiled
    /// signals) over the current state and inputs, committing nothing.
    pub fn eval(&mut self) {
        self.prog.run(&mut self.st);
    }

    /// Evaluates only the compiled signals over the current state and
    /// inputs — the cheap path when the next-state cones are not needed
    /// (e.g. observing mapped states under quiescent inputs).
    pub fn eval_signals(&mut self) {
        self.prog.run_range(&mut self.st, 0..self.signal_end);
    }

    /// Commits the next-state roots of the latest [`CompiledRtlSim::eval`]
    /// into the state slots (two-phase non-blocking semantics).
    ///
    /// Committed memory values are *swapped* into their state registers
    /// where liveness allows; the consumed next-root slots hold the
    /// displaced maps until the next [`CompiledRtlSim::eval`].
    pub fn commit(&mut self) {
        self.plan.run(&self.prog, &mut self.st, &mut self.bufs);
    }

    /// The slot holding compiled signal `idx` after an eval.
    pub fn signal_slot(&self, idx: usize) -> Slot {
        self.signal_slots[idx]
    }

    /// Materializes compiled signal `idx` (valid after an eval).
    pub fn signal_value(&self, idx: usize) -> Value {
        self.prog.read(&self.st, self.signal_slots[idx])
    }

    /// Advances one clock edge from a named input map, mirroring
    /// [`gila_rtl::RtlSimulator::step`] exactly.
    ///
    /// # Errors
    ///
    /// [`RtlSimError::MissingInput`] / [`RtlSimError::WidthMismatch`]
    /// for bad inputs.
    pub fn step(&mut self, inputs: &RtlInputMap) -> Result<(), RtlSimError> {
        self.bind_inputs(inputs)?;
        self.eval();
        self.commit();
        Ok(())
    }

    /// Binds a named input map without evaluating, with the
    /// interpreter's validation.
    ///
    /// # Errors
    ///
    /// [`RtlSimError::MissingInput`] / [`RtlSimError::WidthMismatch`].
    pub fn bind_inputs(&mut self, inputs: &RtlInputMap) -> Result<(), RtlSimError> {
        for (idx, i) in self.module.inputs().iter().enumerate() {
            let v = inputs.get(&i.name).ok_or_else(|| RtlSimError::MissingInput {
                input: i.name.clone(),
            })?;
            if v.width() != i.width {
                return Err(RtlSimError::WidthMismatch {
                    name: i.name.clone(),
                    expected: i.width,
                    found: v.width(),
                });
            }
            self.set_input_bits(idx, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gila_core::{PortSimulator, StateKind};
    use gila_rtl::{parse_verilog, RtlSimulator};
    use rand::{Rng, SeedableRng};

    fn bv(x: u64, w: u32) -> Value {
        Value::Bv(BitVecValue::from_u64(x, w))
    }

    fn counter() -> PortIla {
        let mut p = PortIla::new("counter");
        let en = p.input("en", Sort::Bv(1));
        let cnt = p.state("cnt", Sort::Bv(8), StateKind::Output);
        let d = p.ctx_mut().eq_u64(en, 1);
        let one = p.ctx_mut().bv_u64(1, 8);
        let nx = p.ctx_mut().bvadd(cnt, one);
        p.instr("inc").decode(d).update("cnt", nx).add().unwrap();
        let d = p.ctx_mut().eq_u64(en, 0);
        p.instr("hold").decode(d).add().unwrap();
        p
    }

    #[test]
    fn port_sim_mirrors_interpreter() {
        let p = counter();
        let mut fast = CompiledPortSim::new(&p);
        let mut slow = PortSimulator::new(&p);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let mut inputs = BTreeMap::new();
            inputs.insert("en".to_string(), bv(rng.gen::<u64>() & 1, 1));
            let a = fast.step(&inputs).unwrap();
            let b = slow.step(&inputs).unwrap();
            assert_eq!(a, b);
            assert_eq!(fast.state(), *slow.state());
        }
    }

    #[test]
    fn swap_commits_against_pre_state() {
        let mut p = PortIla::new("swap");
        let go = p.input("go", Sort::Bv(1));
        let a = p.state("a", Sort::Bv(4), StateKind::Output);
        let b = p.state("b", Sort::Bv(4), StateKind::Output);
        let d = p.ctx_mut().eq_u64(go, 1);
        p.instr("swap")
            .decode(d)
            .update("a", b)
            .update("b", a)
            .add()
            .unwrap();
        let d0 = p.ctx_mut().eq_u64(go, 0);
        p.instr("nop").decode(d0).add().unwrap();
        p.set_init("a", BitVecValue::from_u64(3, 4)).unwrap();
        p.set_init("b", BitVecValue::from_u64(9, 4)).unwrap();
        let mut sim = CompiledPortSim::new(&p);
        let mut inputs = BTreeMap::new();
        inputs.insert("go".to_string(), bv(1, 1));
        sim.step(&inputs).unwrap();
        assert_eq!(sim.state()["a"].as_bv().to_u64(), 9);
        assert_eq!(sim.state()["b"].as_bv().to_u64(), 3);
    }

    #[test]
    fn step_errors_mirror_interpreter() {
        let p = counter();
        let mut fast = CompiledPortSim::new(&p);
        let mut slow = PortSimulator::new(&p);
        assert_eq!(
            fast.step(&BTreeMap::new()).unwrap_err(),
            slow.step(&BTreeMap::new()).unwrap_err()
        );
        let mut inputs = BTreeMap::new();
        inputs.insert("en".to_string(), bv(1, 2));
        assert_eq!(
            fast.step(&inputs).unwrap_err(),
            slow.step(&inputs).unwrap_err()
        );
        // incomplete decode space
        let mut q = PortIla::new("partial");
        let x = q.input("x", Sort::Bv(2));
        q.state("s", Sort::Bv(2), StateKind::Output);
        let d = q.ctx_mut().eq_u64(x, 0);
        q.instr("only_zero").decode(d).add().unwrap();
        let mut fast = CompiledPortSim::new(&q);
        let mut slow = PortSimulator::new(&q);
        let mut inputs = BTreeMap::new();
        inputs.insert("x".to_string(), bv(3, 2));
        assert_eq!(
            fast.step(&inputs).unwrap_err(),
            slow.step(&inputs).unwrap_err()
        );
    }

    #[test]
    fn rtl_sim_mirrors_interpreter_with_memory() {
        let m = parse_verilog(
            r#"
module mem(clk, we, addr, din, dout);
  input clk; input we;
  input [3:0] addr;
  input [7:0] din;
  output [7:0] dout;
  reg [7:0] store [0:15];
  reg [7:0] last;
  assign dout = store[addr];
  always @(posedge clk) begin
    if (we) store[addr] <= din;
    last <= dout;
  end
endmodule
"#,
        )
        .unwrap();
        let mut fast = CompiledRtlSim::new(&m, &["dout".to_string()]).unwrap();
        let mut slow = RtlSimulator::new(&m);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..300 {
            let mut ins = RtlInputMap::new();
            ins.insert("clk".to_string(), BitVecValue::from_u64(1, 1));
            ins.insert("we".to_string(), BitVecValue::from_u64(rng.gen::<u64>() & 1, 1));
            ins.insert("addr".to_string(), BitVecValue::from_u64(rng.gen(), 4));
            ins.insert("din".to_string(), BitVecValue::from_u64(rng.gen(), 8));
            fast.bind_inputs(&ins).unwrap();
            fast.eval();
            let dout = fast.signal_value(0);
            assert_eq!(dout, slow.signal("dout", &ins).unwrap());
            fast.commit();
            slow.step(&ins).unwrap();
            assert_eq!(fast.state(), *slow.state());
        }
    }

    #[test]
    fn unknown_signal_is_reported() {
        let m = parse_verilog(
            r#"
module x(clk, a);
  input clk; input [3:0] a;
  reg [3:0] r;
  always @(posedge clk) r <= a;
endmodule
"#,
        )
        .unwrap();
        assert!(matches!(
            CompiledRtlSim::new(&m, &["ghost".to_string()]),
            Err(RtlSimError::UnknownSignal { .. })
        ));
    }
}
