//! End-to-end integration tests: every case study of Table I, through
//! the full pipeline (model -> RTL -> refinement map -> SAT).

use gila::designs::all_case_studies;
use gila::verify::{verify_module, VerifyOptions};

/// Every fixed design verifies completely; every documented bug is found.
#[test]
fn all_eight_case_studies_reproduce() {
    let expected_instructions = [
        ("Decoder", 5usize),
        ("AXI Slave", 9),
        ("AXI Master", 11),
        ("Datapath", 20),
        ("L2 Cache", 8),
        ("Mem. Interface", 12),
        ("Store Buffer", 6),
        ("NoC Router", 64),
    ];
    let studies = all_case_studies();
    assert_eq!(studies.len(), 8);
    for cs in &studies {
        let expected = expected_instructions
            .iter()
            .find(|(n, _)| *n == cs.name)
            .unwrap_or_else(|| panic!("unknown design {}", cs.name))
            .1;
        assert_eq!(
            cs.ila.stats().instructions,
            expected,
            "{}: instruction count drifted from Table I",
            cs.name
        );
        // Skip the slowest full-memory run here (covered by the benches
        // and the dedicated ablation test below).
        if cs.name == "Datapath" {
            continue;
        }
        let report = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &VerifyOptions::default())
            .unwrap_or_else(|e| panic!("{}: setup error {e}", cs.name));
        assert!(report.all_hold(), "{}: {report:#?}", cs.name);

        if let Some(buggy) = &cs.buggy_rtl {
            let opts = VerifyOptions {
                stop_at_first_cex: true,
                ..Default::default()
            };
            let report = verify_module(&cs.ila, buggy, &cs.refmaps, &opts)
                .unwrap_or_else(|e| panic!("{}: setup error {e}", cs.name));
            assert!(
                report.time_to_first_counterexample().is_some(),
                "{}: injected bug not found",
                cs.name
            );
        }
    }
}

/// The three documented bugs are found at the documented locations.
#[test]
fn bugs_are_found_where_the_paper_reports_them() {
    let expectations = [
        ("AXI Slave", "RD_DATA_PREPARE"),
        ("L2 Cache", "LOAD_MISS"),
        ("Store Buffer", "IN_PUSH & OUT_POP"),
    ];
    for cs in all_case_studies() {
        let Some(buggy) = &cs.buggy_rtl else { continue };
        let (_, instr) = expectations
            .iter()
            .find(|(n, _)| *n == cs.name)
            .unwrap_or_else(|| panic!("unexpected buggy design {}", cs.name));
        let opts = VerifyOptions {
            stop_at_first_cex: true,
            ..Default::default()
        };
        let report = verify_module(&cs.ila, buggy, &cs.refmaps, &opts).expect("well-formed");
        let v = report
            .ports
            .iter()
            .find_map(|p| p.first_counterexample())
            .expect("bug found");
        // LOAD_MISS or STORE_MISS are both valid witnesses for the L2
        // flag typo; the engine checks in declaration order, so the
        // first is deterministic.
        assert_eq!(v.instruction, *instr, "{}", cs.name);
    }
}

/// The datapath ablation: both sizes verify and the abstraction shrinks
/// the CNF dramatically (the paper's 176 s -> 9.5 s effect).
#[test]
fn datapath_memory_abstraction_preserves_verdict_and_shrinks_cnf() {
    use gila::designs::i8051::datapath;
    let maps = datapath::refinement_maps();
    let opts = VerifyOptions::default();
    let full = verify_module(&datapath::ila(), &datapath::rtl(), &maps, &opts).expect("setup");
    assert!(full.all_hold());
    let abst = verify_module(
        &datapath::ila_abstracted(),
        &datapath::rtl_abstracted(),
        &maps,
        &opts,
    )
    .expect("setup");
    assert!(abst.all_hold());
    assert!(
        abst.peak_stats().clauses * 4 < full.peak_stats().clauses,
        "abstraction should shrink the encoding at least 4x: {} vs {}",
        abst.peak_stats().clauses,
        full.peak_stats().clauses
    );
    assert!(abst.total_time() < full.total_time());
}

/// Refinement maps survive a JSON round trip and drive verification
/// identically afterwards (the paper stores them as JSON artifacts).
#[test]
fn refinement_maps_round_trip_through_json() {
    use gila::verify::RefinementMap;
    for cs in all_case_studies() {
        for map in &cs.refmaps {
            let json = map.to_json();
            let back = RefinementMap::from_json(&json).expect("valid JSON");
            assert_eq!(*map, back, "{}: {} JSON round trip", cs.name, map.name);
            assert!(map.size_loc() >= 10, "{}: suspiciously small map", cs.name);
        }
    }
    // Verification from the JSON-round-tripped map gives the same result.
    let cs = all_case_studies().remove(0); // decoder
    let maps: Vec<RefinementMap> = cs
        .refmaps
        .iter()
        .map(|m| RefinementMap::from_json(&m.to_json()).expect("valid"))
        .collect();
    let report = verify_module(&cs.ila, &cs.rtl, &maps, &VerifyOptions::default()).expect("setup");
    assert!(report.all_hold());
}

/// The figures pipeline: model descriptions mention every instruction.
#[test]
fn model_descriptions_cover_all_instructions() {
    for cs in all_case_studies() {
        let text = cs.ila.describe();
        for port in cs.ila.ports() {
            for i in port.instructions() {
                assert!(
                    text.contains(&i.name),
                    "{}: describe() misses {}",
                    cs.name,
                    i.name
                );
            }
        }
    }
}

/// Registry invariants: unique names, one refinement map per port with
/// matching names, and consistent before/after port counts.
#[test]
fn case_study_registry_is_consistent() {
    let studies = all_case_studies();
    let mut names = std::collections::HashSet::new();
    for cs in &studies {
        assert!(names.insert(cs.name), "duplicate design {}", cs.name);
        assert_eq!(
            cs.ila.ports().len(),
            cs.refmaps.len(),
            "{}: one refinement map per port",
            cs.name
        );
        for (port, map) in cs.ila.ports().iter().zip(&cs.refmaps) {
            assert_eq!(port.name(), map.name, "{}: map order", cs.name);
            // Every ILA state and input that instructions reference has
            // a map entry (the engine would reject otherwise; check here
            // for a clearer failure).
            for s in port.states() {
                assert!(
                    map.state_map.contains_key(&s.name),
                    "{}/{}: state {} unmapped",
                    cs.name,
                    port.name(),
                    s.name
                );
            }
            for i in port.inputs() {
                assert!(
                    map.interface_map.contains_key(&i.name),
                    "{}/{}: input {} unmapped",
                    cs.name,
                    port.name(),
                    i.name
                );
            }
        }
        assert_eq!(
            cs.ports_after_integration,
            cs.ila.ports().len(),
            "{}",
            cs.name
        );
        assert!(cs.ports_before_integration >= cs.ports_after_integration);
    }
}

/// BTOR2 export works for every case-study RTL.
#[test]
fn every_design_exports_btor2() {
    use gila::mc::to_btor2;
    use gila::verify::rtl_to_ts;
    for cs in all_case_studies() {
        let (mut ts, _signals) = rtl_to_ts(&cs.rtl).expect("case-study RTL is well-formed");
        let prop = ts.ctx_mut().tt();
        let doc = to_btor2(&ts, prop)
            .unwrap_or_else(|e| panic!("{}: btor2 export failed: {e}", cs.name));
        assert!(doc.contains(" next "), "{}", cs.name);
        assert!(doc.contains(" bad "), "{}", cs.name);
        // Every state appears.
        for r in cs.rtl.regs() {
            assert!(doc.contains(&r.name), "{}: missing {}", cs.name, r.name);
        }
    }
}
