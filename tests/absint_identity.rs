//! The absint A/B contract: the abstract-interpretation layer is a
//! pure accelerator. With it on or off, `gila lint` reports the exact
//! same diagnostics (byte-for-byte, human and JSON renderings) and
//! `gila verify` reaches the exact same verdicts — on every bundled
//! case study and the broken fixture, at any job count. The fast path
//! may only ever *skip* SAT calls whose outcome it proved; the moment
//! it changes an answer, these tests name the design and the diff.

use gila::designs::all_case_studies;
use gila::lang::parse_spec;
use gila::lint::{lint_module, lint_rtl, lint_spec, LintOptions};
use gila::trace::Tracer;
use gila::verify::{verify_module, ModuleReport, VerifyOptions};

const BROKEN: &str = include_str!("../specs/broken.ila");

/// Human + JSON lint renderings for one module at the given options.
fn lint_renderings(name: &str, opts: &LintOptions) -> (String, String) {
    let cs = all_case_studies()
        .into_iter()
        .find(|cs| cs.name == name)
        .expect("registry design");
    let mut report = lint_module(cs.name, &cs.ila, opts, &Tracer::disabled());
    report
        .diagnostics
        .extend(lint_rtl(cs.name, &cs.rtl, &Tracer::disabled()));
    (report.render_human(), report.to_json().pretty())
}

/// Every registry design and the broken fixture lint identically with
/// the fast path on and off, sequentially and sharded.
#[test]
fn lint_diagnostics_identical_with_and_without_absint() {
    for jobs in [1usize, 4] {
        let on = LintOptions { jobs, absint: true };
        let off = LintOptions { jobs, absint: false };
        for cs in all_case_studies() {
            let (human_on, json_on) = lint_renderings(cs.name, &on);
            let (human_off, json_off) = lint_renderings(cs.name, &off);
            assert_eq!(
                human_on, human_off,
                "{} (jobs={jobs}): absint changed the human rendering",
                cs.name
            );
            assert_eq!(
                json_on, json_off,
                "{} (jobs={jobs}): absint changed the JSON rendering",
                cs.name
            );
        }
        let spec = parse_spec(BROKEN).expect("lenient parse");
        let report_on = lint_spec("specs/broken.ila", &spec, &on, &Tracer::disabled());
        let report_off = lint_spec("specs/broken.ila", &spec, &off, &Tracer::disabled());
        assert_eq!(
            report_on.render_human(),
            report_off.render_human(),
            "broken.ila (jobs={jobs}): absint changed the human rendering"
        );
        assert_eq!(
            report_on.to_json().pretty(),
            report_off.to_json().pretty(),
            "broken.ila (jobs={jobs}): absint changed the JSON rendering"
        );
    }
}

/// With the fast path on, the discharge counters must actually move on
/// at least one registry design — otherwise the identity above is
/// vacuously comparing two identical slow paths.
#[test]
fn absint_fast_path_is_live_on_the_registry() {
    let opts = LintOptions { jobs: 1, absint: true };
    let mut discharged = 0u64;
    let mut avoided = 0u64;
    for cs in all_case_studies() {
        let report = lint_module(cs.name, &cs.ila, &opts, &Tracer::disabled());
        discharged += report.stats.lints_discharged_static;
        avoided += report.stats.sat_calls_avoided;
    }
    assert!(discharged >= 1, "no whole lint verdict discharged statically");
    assert!(avoided >= 1, "no SAT call avoided across the whole registry");
    // And with the flag off, the counters must stay at zero.
    let off = LintOptions { jobs: 1, absint: false };
    for cs in all_case_studies() {
        let report = lint_module(cs.name, &cs.ila, &off, &Tracer::disabled());
        assert_eq!(report.stats.sat_calls_avoided, 0, "{}", cs.name);
        assert_eq!(report.stats.lints_discharged_static, 0, "{}", cs.name);
    }
}

/// `(port, instruction, verdict-tag)` triples in report order. Witness
/// *contents* are deliberately not compared: asserting redundant lemmas
/// may steer the solver to a different (equally valid) model, but it
/// must never flip a verdict.
fn verdict_shape(report: &ModuleReport) -> Vec<(String, String, &'static str)> {
    report
        .ports
        .iter()
        .flat_map(|p| {
            p.verdicts
                .iter()
                .map(|v| (p.port.clone(), v.instruction.clone(), v.result.tag()))
        })
        .collect()
}

fn verify_with(name: &str, absint: bool, jobs: usize, buggy: bool) -> ModuleReport {
    let cs = all_case_studies()
        .into_iter()
        .find(|cs| cs.name == name)
        .expect("registry design");
    let rtl = if buggy {
        cs.buggy_rtl.clone().expect("design has a buggy variant")
    } else {
        cs.rtl.clone()
    };
    let opts = VerifyOptions {
        jobs: Some(jobs),
        absint,
        ..VerifyOptions::default()
    };
    verify_module(&cs.ila, &rtl, &cs.refmaps, &opts).expect("well-formed")
}

/// Verification verdicts are identical with and without the invariant
/// lemmas, sequentially and pooled — on fixed RTL (everything holds)
/// and on the bug-injected variants (the same instructions fail).
#[test]
fn verify_verdicts_identical_with_and_without_absint() {
    for cs in all_case_studies() {
        // The full-memory Datapath run is covered by the sequential
        // pass below; its pooled run is skipped here for the same cost
        // reason the end-to-end suite skips it.
        if cs.name == "Datapath" {
            continue;
        }
        for jobs in [1usize, 4] {
            let on = verify_with(cs.name, true, jobs, false);
            let off = verify_with(cs.name, false, jobs, false);
            assert!(on.all_hold(), "{}: {on:#?}", cs.name);
            assert_eq!(
                verdict_shape(&on),
                verdict_shape(&off),
                "{} (jobs={jobs}): absint changed a verdict",
                cs.name
            );
        }
        if cs.buggy_rtl.is_some() {
            let on = verify_with(cs.name, true, 1, true);
            let off = verify_with(cs.name, false, 1, true);
            assert_eq!(
                verdict_shape(&on),
                verdict_shape(&off),
                "{} (buggy): absint changed a verdict",
                cs.name
            );
        }
    }
}

/// The sequential Datapath pass: one on/off pair at `jobs = 1` keeps
/// the full-memory design covered without paying for a pooled rerun.
#[test]
fn verify_verdicts_identical_on_datapath_sequential() {
    let on = verify_with("Datapath", true, 1, false);
    let off = verify_with("Datapath", false, 1, false);
    assert!(on.all_hold(), "Datapath: {on:#?}");
    assert_eq!(
        verdict_shape(&on),
        verdict_shape(&off),
        "Datapath: absint changed a verdict"
    );
}
