//! Fault-injection integration tests: the acceptance criteria of the
//! robustness layer. An injected panic or an exhausted budget must never
//! abort a module run — every other instruction still gets the verdict
//! it would get in a clean run — and `resume` must re-verify only the
//! jobs a previous run left undecided. Everything is exercised at both
//! `jobs = 1` (sequential engine) and `jobs = 4` (work-stealing pool).

use std::sync::Arc;

use gila::core::ModuleIla;
use gila::designs::all_case_studies;
use gila::rtl::RtlModule;
use gila::verify::{
    identity_refmaps, synthesize_module, verify_module, CheckResult, FaultAction, FaultPlan,
    ModuleReport, RefinementMap, ResourceOut, SolveBudget, VerifyOptions,
};
use proptest::prelude::*;

fn decoder() -> (ModuleIla, RtlModule, Vec<RefinementMap>) {
    let cs = all_case_studies()
        .into_iter()
        .find(|c| c.name == "Decoder")
        .unwrap();
    (cs.ila, cs.rtl, cs.refmaps)
}

fn counter() -> (ModuleIla, RtlModule, Vec<RefinementMap>) {
    let ila = gila::lang::parse_ila(include_str!("../specs/counter.ila")).unwrap();
    let rtl = synthesize_module(&ila).unwrap();
    let maps = identity_refmaps(&ila);
    (ila, rtl, maps)
}

/// `(port, instruction, verdict tag)` triples in declaration order.
fn shape(report: &ModuleReport) -> Vec<(String, String, &'static str)> {
    report
        .ports
        .iter()
        .flat_map(|p| {
            p.verdicts
                .iter()
                .map(|v| (p.port.clone(), v.instruction.clone(), v.result.tag()))
        })
        .collect()
}

fn with_jobs(jobs: usize) -> VerifyOptions {
    VerifyOptions {
        jobs: Some(jobs),
        ..Default::default()
    }
}

#[test]
fn injected_panic_never_aborts_and_other_verdicts_match() {
    let (ila, rtl, maps) = decoder();
    let port = ila.ports()[0].name().to_string();
    let instr = ila.ports()[0].instructions()[0].name.clone();
    for jobs in [1usize, 4] {
        let clean = verify_module(&ila, &rtl, &maps, &with_jobs(jobs)).unwrap();
        assert!(clean.all_hold());
        let fault = FaultPlan::new().inject(
            &port,
            &instr,
            FaultAction::Panic("isolation test".into()),
            None,
        );
        let faulted = verify_module(
            &ila,
            &rtl,
            &maps,
            &VerifyOptions {
                fault_plan: Some(Arc::new(fault)),
                ..with_jobs(jobs)
            },
        )
        .unwrap();
        // The run completed: one verdict per instruction, exactly one of
        // them the isolated panic, all others identical to the clean run.
        assert_eq!(
            clean.instructions_checked(),
            faulted.instructions_checked(),
            "jobs={jobs}"
        );
        assert_eq!(faulted.counts().panicked, 1, "jobs={jobs}");
        assert_eq!(faulted.telemetry.panicked, 1, "jobs={jobs}");
        for (c, f) in shape(&clean).iter().zip(shape(&faulted).iter()) {
            if f.0 == port && f.1 == instr {
                assert_eq!(f.2, "panicked", "jobs={jobs}");
            } else {
                assert_eq!(c, f, "jobs={jobs}: unfaulted verdict drifted");
            }
        }
    }
}

#[test]
fn wildcard_panic_on_every_job_still_drains_the_run() {
    // The pathological case: every single job dies. The module run must
    // still return a full report, not abort or hang.
    let (ila, rtl, maps) = decoder();
    for jobs in [1usize, 4] {
        let fault = FaultPlan::new().inject("*", "*", FaultAction::Panic("total loss".into()), None);
        let report = verify_module(
            &ila,
            &rtl,
            &maps,
            &VerifyOptions {
                fault_plan: Some(Arc::new(fault)),
                ..with_jobs(jobs)
            },
        )
        .unwrap();
        let counts = report.counts();
        assert_eq!(
            counts.panicked,
            report.instructions_checked(),
            "jobs={jobs}: {counts:?}"
        );
    }
}

#[test]
fn resume_reverifies_only_undecided_jobs() {
    let (ila, rtl, maps) = decoder();
    let port = ila.ports()[0].name().to_string();
    let instr = ila.ports()[0].instructions()[0].name.clone();
    let dir = std::env::temp_dir().join(format!("gila_fault_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for jobs in [1usize, 4] {
        let ckpt = dir.join(format!("jobs{jobs}.jsonl"));
        // First run: the target instruction is forced Unknown (once),
        // every verdict streams to the checkpoint.
        let fault = FaultPlan::new().inject(&port, &instr, FaultAction::ForceUnknown, Some(1));
        let first = verify_module(
            &ila,
            &rtl,
            &maps,
            &VerifyOptions {
                fault_plan: Some(Arc::new(fault)),
                checkpoint: Some(ckpt.clone()),
                ..with_jobs(jobs)
            },
        )
        .unwrap();
        assert_eq!(first.counts().unknown, 1, "jobs={jobs}");
        // Resumed run: decided verdicts replay with zero solver work,
        // only the undecided instruction is re-verified.
        let second = verify_module(
            &ila,
            &rtl,
            &maps,
            &VerifyOptions {
                resume: Some(ckpt.clone()),
                ..with_jobs(jobs)
            },
        )
        .unwrap();
        assert!(second.all_hold(), "jobs={jobs}: {:#?}", second.counts());
        for p in &second.ports {
            for v in &p.verdicts {
                if p.port == port && v.instruction == instr {
                    assert!(v.solves > 0, "jobs={jobs}: undecided job must re-solve");
                } else {
                    assert_eq!(
                        v.solves, 0,
                        "jobs={jobs}: {}/{} was decided and must replay",
                        p.port, v.instruction
                    );
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn delay_faults_only_slow_the_run_down() {
    let (ila, rtl, maps) = counter();
    let fault = FaultPlan::new().inject(
        "*",
        "*",
        FaultAction::Delay(std::time::Duration::from_millis(5)),
        None,
    );
    let report = verify_module(
        &ila,
        &rtl,
        &maps,
        &VerifyOptions {
            fault_plan: Some(Arc::new(fault)),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(report.all_hold());
    assert!(report.total_time() >= std::time::Duration::from_millis(10));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Budget semantics, property-style: Unknown can only appear when a
    /// conflict limit was configured, and then only with more conflicts
    /// spent than the limit allowed; an unbounded budget always decides.
    #[test]
    fn unknown_only_when_a_limit_was_hit(raw in 0u64..60, retries in 0u32..3) {
        let (ila, rtl, maps) = counter();
        let conflicts = (raw < 50).then_some(raw);
        let opts = VerifyOptions {
            budget: SolveBudget { conflicts, timeout: None },
            retries,
            ..Default::default()
        };
        let report = verify_module(&ila, &rtl, &maps, &opts).unwrap();
        for p in &report.ports {
            for v in &p.verdicts {
                if let CheckResult::Unknown { reason, budget_spent } = &v.result {
                    prop_assert!(conflicts.is_some(), "Unknown without a limit");
                    prop_assert_eq!(*reason, ResourceOut::Conflicts);
                    // Escalation quadruples per retry; the final
                    // attempt still overshot its (largest) budget.
                    prop_assert!(budget_spent.conflicts > conflicts.unwrap());
                }
            }
        }
        if conflicts.is_none() {
            prop_assert!(report.all_hold());
            prop_assert_eq!(report.telemetry.unknown, 0);
        }
    }
}
