//! Exhaustive operator coverage: every [`gila::expr::Op`] round-trips
//! through every backend — the evaluator, the bit-blaster, the
//! S-expression display, and the SMT-LIB printer — with consistent
//! semantics. Guards against a new operator landing in one backend and
//! not the others.

use gila::expr::{
    eval, to_smtlib_term, BitVecValue, Env, ExprCtx, ExprRef, MemValue, Op, Sort, Value,
};
use gila::smt::SmtSolver;

/// Builds one representative application for each operator over fixed
/// variables, returning `(label, expr)` pairs.
fn one_of_each(ctx: &mut ExprCtx) -> Vec<(&'static str, ExprRef)> {
    let p = ctx.var("p", Sort::Bool);
    let q = ctx.var("q", Sort::Bool);
    let x = ctx.var("x", Sort::Bv(8));
    let y = ctx.var("y", Sort::Bv(8));
    let m = ctx.var(
        "m",
        Sort::Mem {
            addr_width: 3,
            data_width: 8,
        },
    );
    let a = ctx.var("a", Sort::Bv(3));
    let mut out = Vec::new();
    macro_rules! one {
        ($label:expr, $e:expr) => {
            out.push(($label, $e));
        };
    }
    one!("Not", ctx.not(p));
    one!("And", ctx.and(p, q));
    one!("Or", ctx.or(p, q));
    one!("Xor", ctx.xor(p, q));
    one!("Implies", ctx.implies(p, q));
    one!("Iff", ctx.iff(p, q));
    one!("IteBool", ctx.ite(p, q, p));
    one!("IteBv", ctx.ite(p, x, y));
    one!("EqBool", ctx.eq(p, q));
    one!("EqBv", ctx.eq(x, y));
    one!("BvNot", ctx.bvnot(x));
    one!("BvNeg", ctx.bvneg(x));
    one!("BvAnd", ctx.bvand(x, y));
    one!("BvOr", ctx.bvor(x, y));
    one!("BvXor", ctx.bvxor(x, y));
    one!("BvAdd", ctx.bvadd(x, y));
    one!("BvSub", ctx.bvsub(x, y));
    one!("BvMul", ctx.bvmul(x, y));
    one!("BvUdiv", ctx.bvudiv(x, y));
    one!("BvUrem", ctx.bvurem(x, y));
    one!("BvShl", ctx.bvshl(x, y));
    one!("BvLshr", ctx.bvlshr(x, y));
    one!("BvAshr", ctx.bvashr(x, y));
    one!("BvConcat", ctx.concat(x, y));
    one!("BvExtract", ctx.extract(x, 5, 2));
    one!("BvZext", ctx.zext(x, 12));
    one!("BvSext", ctx.sext(x, 12));
    one!("BvUlt", ctx.ult(x, y));
    one!("BvUle", ctx.ule(x, y));
    one!("BvSlt", ctx.slt(x, y));
    one!("BvSle", ctx.sle(x, y));
    one!("MemRead", ctx.mem_read(m, a));
    one!("MemWrite", {
        let w = ctx.mem_write(m, a, x);
        ctx.mem_read(w, a)
    });
    one!("BoolToBv", ctx.bool_to_bv(p));
    out
}

fn env_for(ctx: &ExprCtx, seed: u64) -> Env {
    let mut env = Env::new();
    env.bind_bool(ctx, "p", seed & 1 == 1);
    env.bind_bool(ctx, "q", seed & 2 == 2);
    env.bind_u64(ctx, "x", seed.wrapping_mul(0x9E37_79B9) & 0xFF);
    env.bind_u64(ctx, "y", seed.wrapping_mul(0x85EB_CA6B) & 0xFF);
    env.bind_u64(ctx, "a", seed & 0x7);
    let mut m = MemValue::zeroed(3, 8);
    for i in 0..8 {
        m = m.write(
            &BitVecValue::from_u64(i, 3),
            &BitVecValue::from_u64(seed.wrapping_mul(i + 3) & 0xFF, 8),
        );
    }
    env.bind(ctx.find_var("m").expect("declared"), m);
    env
}

#[test]
fn every_operator_evaluates_displays_and_prints_smtlib() {
    let mut ctx = ExprCtx::new();
    for (label, e) in one_of_each(&mut ctx) {
        let env = env_for(&ctx, 0xDADA);
        let v = eval(&ctx, e, &env).unwrap_or_else(|err| panic!("{label}: eval failed: {err}"));
        let _ = v;
        let disp = ctx.display(e).to_string();
        assert!(!disp.is_empty(), "{label}: empty display");
        let smt2 = to_smtlib_term(&ctx, e);
        assert!(!smt2.is_empty(), "{label}: empty smtlib");
    }
}

#[test]
fn every_operator_blasts_consistently_with_eval() {
    // Pin all variables to concrete values via assertions; the blasted
    // expression must equal the evaluator's verdict (asserting the
    // negation is UNSAT).
    for seed in [1u64, 7, 42, 255, 0xBEEF] {
        let mut ctx = ExprCtx::new();
        let items = one_of_each(&mut ctx);
        let env = env_for(&ctx, seed);
        // Build the pinning constraints.
        let mut pins: Vec<ExprRef> = Vec::new();
        for (var, value) in env.iter() {
            let c = match value {
                Value::Bool(b) => {
                    let bc = ctx.bool_const(*b);
                    ctx.eq(var, bc)
                }
                Value::Bv(v) => {
                    let vc = ctx.bv(v.clone());
                    ctx.eq(var, vc)
                }
                Value::Mem(m) => {
                    let mc = ctx.mem_const(m.clone());
                    ctx.eq(var, mc)
                }
            };
            pins.push(c);
        }
        for (label, e) in items {
            let expected = eval(&ctx, e, &env).expect("bound");
            let expected_expr = match &expected {
                Value::Bool(b) => ctx.bool_const(*b),
                Value::Bv(v) => ctx.bv(v.clone()),
                Value::Mem(m) => ctx.mem_const(m.clone()),
            };
            let ne = ctx.ne(e, expected_expr);
            let mut smt = SmtSolver::new();
            for &p in &pins {
                smt.assert(&ctx, p);
            }
            smt.assert(&ctx, ne);
            assert!(
                !smt.check().is_sat(),
                "{label} (seed {seed}): blaster disagrees with evaluator"
            );
        }
    }
}

#[test]
fn op_debug_strings_are_unique() {
    // The Op enum drives matchers in four backends; a renamed or merged
    // variant would silently alias — catch it via Debug uniqueness.
    let ops = [
        Op::Not,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Implies,
        Op::Iff,
        Op::Ite,
        Op::Eq,
        Op::BvNot,
        Op::BvNeg,
        Op::BvAnd,
        Op::BvOr,
        Op::BvXor,
        Op::BvAdd,
        Op::BvSub,
        Op::BvMul,
        Op::BvUdiv,
        Op::BvUrem,
        Op::BvShl,
        Op::BvLshr,
        Op::BvAshr,
        Op::BvConcat,
        Op::BvExtract { hi: 1, lo: 0 },
        Op::BvZext { to: 2 },
        Op::BvSext { to: 2 },
        Op::BvUlt,
        Op::BvUle,
        Op::BvSlt,
        Op::BvSle,
        Op::MemRead,
        Op::MemWrite,
        Op::BoolToBv,
    ];
    let mut seen = std::collections::HashSet::new();
    for op in ops {
        assert!(seen.insert(format!("{op:?}")), "duplicate debug for {op:?}");
    }
}
