//! The soundness property the whole abstract-interpretation stack
//! rests on: abstract evaluation **over-approximates** concrete
//! evaluation. For any expression `e` and any abstract environment `A`
//! that contains a concrete environment `env`,
//!
//! ```text
//! eval(e, env) ∈ γ(abs_eval(e, abs(env)))
//! ```
//!
//! Tested on random expression DAGs at three abstraction levels:
//! exact point abstractions (`α(env)`), joined two-point environments
//! (exercising all three reduced-product domains at once), and widened
//! environments (the values a fixpoint passes through after
//! `PRECISE_ITERS`, where intervals jump to extremes and known-bits
//! masks drop). A hole in any transfer function shows up here as a
//! concrete result falling outside its abstract value.

use gila::expr::{
    abs_eval, eval, AbsEnv, AbsValue, Env, ExprCtx, ExprRef, Sort,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::SeedableRng;

#[derive(Clone, Debug)]
enum RandomOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Lshr,
    Ashr,
    Ite,
    Not,
    Neg,
    Udiv,
    Urem,
    Concat,
    Extract,
    Zext,
    Sext,
    Cmp,
}

fn random_op() -> impl Strategy<Value = RandomOp> {
    prop_oneof![
        Just(RandomOp::Add),
        Just(RandomOp::Sub),
        Just(RandomOp::Mul),
        Just(RandomOp::And),
        Just(RandomOp::Or),
        Just(RandomOp::Xor),
        Just(RandomOp::Shl),
        Just(RandomOp::Lshr),
        Just(RandomOp::Ashr),
        Just(RandomOp::Ite),
        Just(RandomOp::Not),
        Just(RandomOp::Neg),
        Just(RandomOp::Udiv),
        Just(RandomOp::Urem),
        Just(RandomOp::Concat),
        Just(RandomOp::Extract),
        Just(RandomOp::Zext),
        Just(RandomOp::Sext),
        Just(RandomOp::Cmp),
    ]
}

const W: u32 = 7;

/// Same expression factory as `tests/properties.rs`: every node is
/// kept at width `W` so any pool element can feed any operator, and
/// the comparison arm folds boolean nodes back into the bit-vector
/// world so `AbsBool` transfer functions are exercised too.
fn build_expr(ctx: &mut ExprCtx, ops: &[(RandomOp, u8, u8)], consts: &[u64]) -> ExprRef {
    let x = ctx.var("x", Sort::Bv(W));
    let y = ctx.var("y", Sort::Bv(W));
    let mut pool = vec![x, y];
    for &c in consts {
        pool.push(ctx.bv_u64(c & 0x7F, W));
    }
    for (op, ia, ib) in ops {
        let a = pool[*ia as usize % pool.len()];
        let b = pool[*ib as usize % pool.len()];
        let e = match op {
            RandomOp::Add => ctx.bvadd(a, b),
            RandomOp::Sub => ctx.bvsub(a, b),
            RandomOp::Mul => ctx.bvmul(a, b),
            RandomOp::And => ctx.bvand(a, b),
            RandomOp::Or => ctx.bvor(a, b),
            RandomOp::Xor => ctx.bvxor(a, b),
            RandomOp::Shl => ctx.bvshl(a, b),
            RandomOp::Lshr => ctx.bvlshr(a, b),
            RandomOp::Ashr => ctx.bvashr(a, b),
            RandomOp::Ite => {
                let c = ctx.ult(a, b);
                ctx.ite(c, a, b)
            }
            RandomOp::Not => ctx.bvnot(a),
            RandomOp::Neg => ctx.bvneg(a),
            RandomOp::Udiv => ctx.bvudiv(a, b),
            RandomOp::Urem => ctx.bvurem(a, b),
            RandomOp::Concat => {
                let wide = ctx.concat(a, b);
                ctx.extract(wide, W - 1, 0)
            }
            RandomOp::Extract => {
                let hi = *ia as u32 % W;
                let lo = *ib as u32 % (hi + 1);
                let cut = ctx.extract(a, hi, lo);
                ctx.zext(cut, W)
            }
            RandomOp::Zext => {
                let cut = ctx.extract(a, W / 2, 0);
                ctx.zext(cut, W)
            }
            RandomOp::Sext => {
                let cut = ctx.extract(a, W / 2, 0);
                ctx.sext(cut, W)
            }
            RandomOp::Cmp => {
                let lt = ctx.ult(a, b);
                let eq = ctx.eq(a, b);
                let ne = ctx.not(eq);
                let both = ctx.and(lt, ne);
                let bit = ctx.bool_to_bv(both);
                ctx.zext(bit, W)
            }
        };
        pool.push(e);
    }
    *pool.last().expect("non-empty")
}

/// One random concrete environment over `x` and `y`.
fn random_env(ctx: &ExprCtx, rng: &mut rand::rngs::StdRng) -> Env {
    let x = ctx.find_var("x").expect("declared");
    let y = ctx.find_var("y").expect("declared");
    let mut env = Env::new();
    env.bind(x, gila::verify::random_value(rng, Sort::Bv(W)));
    env.bind(y, gila::verify::random_value(rng, Sort::Bv(W)));
    env
}

/// `eval(e, env) ∈ γ(abs_eval(e, A))` — the membership the docstring
/// promises, with a readable failure message.
fn assert_member(
    ctx: &ExprCtx,
    root: ExprRef,
    env: &Env,
    abs_env: &AbsEnv,
) -> Result<(), TestCaseError> {
    let concrete = eval(ctx, root, env).expect("bound");
    let abstracted = abs_eval(ctx, root, abs_env);
    prop_assert!(
        abstracted.contains(&concrete),
        "concrete {concrete:?} escaped abstract {abstracted:?}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Point abstraction: `A = α(env)` binds every variable exactly, so
    /// the abstract result must contain the (single) concrete result.
    /// All three domains are at their most precise here — any transfer
    /// function that drops a case fails loudly.
    #[test]
    fn abs_eval_over_approximates_eval_at_points(
        ops in proptest::collection::vec((random_op(), any::<u8>(), any::<u8>()), 1..12),
        consts in proptest::collection::vec(any::<u64>(), 1..4),
        seed in any::<u64>(),
    ) {
        let mut ctx = ExprCtx::new();
        let root = build_expr(&mut ctx, &ops, &consts);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let env = random_env(&ctx, &mut rng);
            let abs_env = AbsEnv::from_env(&env);
            assert_member(&ctx, root, &env, &abs_env)?;
        }
    }

    /// Joined two-point abstraction: `A(v) = α(env₁(v)) ⊔ α(env₂(v))`
    /// contains both environments, so both concrete results must fall
    /// inside the abstract one. The join of two constants exercises
    /// the reduced product non-trivially: known-bits keeps the agreeing
    /// bits, the interval spans the pair, and the congruence domain
    /// drops to top.
    #[test]
    fn abs_eval_over_approximates_eval_under_joins(
        ops in proptest::collection::vec((random_op(), any::<u8>(), any::<u8>()), 1..12),
        consts in proptest::collection::vec(any::<u64>(), 1..4),
        seed in any::<u64>(),
    ) {
        let mut ctx = ExprCtx::new();
        let root = build_expr(&mut ctx, &ops, &consts);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..4 {
            let env1 = random_env(&ctx, &mut rng);
            let env2 = random_env(&ctx, &mut rng);
            let (a1, a2) = (AbsEnv::from_env(&env1), AbsEnv::from_env(&env2));
            let mut joined = AbsEnv::new();
            for (var, v) in a1.iter() {
                joined.bind(var, v.join(a2.get(var).expect("same vars")));
            }
            assert_member(&ctx, root, &env1, &joined)?;
            assert_member(&ctx, root, &env2, &joined)?;
        }
    }

    /// Widening points: `A(v) = α(env₁(v)) ∇ (α(env₁(v)) ⊔ α(env₂(v)))`
    /// is exactly the value a fixpoint iteration holds after
    /// `PRECISE_ITERS` — unstable interval bounds jump to the extremes
    /// and unstable known bits drop. Widening only ever loses
    /// precision, so membership must still hold for both environments.
    #[test]
    fn abs_eval_over_approximates_eval_at_widening_points(
        ops in proptest::collection::vec((random_op(), any::<u8>(), any::<u8>()), 1..12),
        consts in proptest::collection::vec(any::<u64>(), 1..4),
        seed in any::<u64>(),
    ) {
        let mut ctx = ExprCtx::new();
        let root = build_expr(&mut ctx, &ops, &consts);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..4 {
            let env1 = random_env(&ctx, &mut rng);
            let env2 = random_env(&ctx, &mut rng);
            let (a1, a2) = (AbsEnv::from_env(&env1), AbsEnv::from_env(&env2));
            let mut widened = AbsEnv::new();
            for (var, v) in a1.iter() {
                let joined = v.join(a2.get(var).expect("same vars"));
                let wide = v.widen(&joined);
                // The widening invariant the fixpoint relies on:
                // ∇ covers everything the join covered.
                prop_assert!(wide.includes(&joined), "{wide:?} lost {joined:?}");
                widened.bind(var, wide);
            }
            assert_member(&ctx, root, &env1, &widened)?;
            assert_member(&ctx, root, &env2, &widened)?;
        }
    }

    /// Exactness round-trip: when every input is an exact abstraction
    /// and the abstract result claims exactness (`as_exact`), it must
    /// equal the concrete result — over-approximation may lose
    /// precision, never invent it.
    #[test]
    fn abs_eval_exact_claims_match_eval(
        ops in proptest::collection::vec((random_op(), any::<u8>(), any::<u8>()), 1..10),
        consts in proptest::collection::vec(any::<u64>(), 1..3),
        seed in any::<u64>(),
    ) {
        let mut ctx = ExprCtx::new();
        let root = build_expr(&mut ctx, &ops, &consts);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let env = random_env(&ctx, &mut rng);
            let abs_env = AbsEnv::from_env(&env);
            if let Some(claimed) = abs_eval(&ctx, root, &abs_env).as_exact() {
                let concrete = eval(&ctx, root, &env).expect("bound");
                prop_assert_eq!(claimed, concrete);
            }
        }
    }
}

/// The membership property, pinned at the widening extremes: an
/// environment widened to full top must still contain every result
/// (top transfer functions cannot produce bottom).
#[test]
fn abs_eval_under_top_env_never_goes_bottom() {
    let mut ctx = ExprCtx::new();
    let ops = [
        (RandomOp::Add, 0u8, 1u8),
        (RandomOp::Mul, 2, 0),
        (RandomOp::Cmp, 3, 1),
        (RandomOp::Ite, 4, 2),
    ];
    let root = build_expr(&mut ctx, &ops, &[0x55]);
    let x = ctx.find_var("x").expect("declared");
    let y = ctx.find_var("y").expect("declared");
    let mut top_env = AbsEnv::new();
    top_env.bind(x, AbsValue::top_of(&Sort::Bv(W)));
    top_env.bind(y, AbsValue::top_of(&Sort::Bv(W)));
    let result = abs_eval(&ctx, root, &top_env);
    assert!(!result.is_bottom(), "top inputs produced bottom: {result:?}");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2822);
    for _ in 0..16 {
        let env = random_env(&ctx, &mut rng);
        let concrete = eval(&ctx, root, &env).expect("bound");
        assert!(result.contains(&concrete), "{concrete:?} escaped top-env result {result:?}");
    }
}
