//! Mutation coverage: for every case study, corrupt each register's
//! next-state function (three mutation kinds) and confirm the
//! auto-generated per-instruction property set kills the mutant — the
//! standard empirical probe of the paper's completeness claim.

use gila::designs::{all_case_studies, i8051::datapath, riscv::store_buffer};
use gila::verify::{
    mutate_register, verify_module, Mutation, MutationReport, VerifyOptions,
};

#[test]
fn the_property_set_kills_every_register_mutant() {
    let opts = VerifyOptions {
        stop_at_first_cex: true,
        ..Default::default()
    };
    let mut grand_total = 0usize;
    for cs in all_case_studies() {
        // Use the abstracted variants of the memory-heavy designs so the
        // campaign stays fast; register structure is identical.
        let (ila, rtl) = match cs.name {
            "Datapath" => (datapath::ila_abstracted(), datapath::rtl_abstracted()),
            "Store Buffer" => (store_buffer::ila_abstracted(), store_buffer::rtl_abstracted()),
            _ => (cs.ila.clone(), cs.rtl.clone()),
        };
        let mut report = MutationReport::default();
        for reg in rtl.regs() {
            for mutation in Mutation::all() {
                let mutant = mutate_register(&rtl, &reg.name, mutation).expect("known reg");
                let result = verify_module(&ila, &mutant, &cs.refmaps, &opts)
                    .unwrap_or_else(|e| panic!("{}: setup error {e}", cs.name));
                if result.all_hold() {
                    report.survived.push((reg.name.clone(), mutation));
                } else {
                    report.killed.push((reg.name.clone(), mutation));
                }
            }
        }
        grand_total += report.killed.len() + report.survived.len();
        assert!(
            report.survived.is_empty(),
            "{}: surviving mutants (property-set hole or equivalent mutant): {:?}",
            cs.name,
            report.survived
        );
        assert_eq!(report.kill_ratio(), 1.0, "{}", cs.name);
    }
    // 3 mutants per register across all eight designs.
    assert!(grand_total >= 150, "campaign too small: {grand_total}");
}
