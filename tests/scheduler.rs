//! Integration tests of the work-stealing verification scheduler on the
//! paper's case studies: a pooled run must report exactly what a
//! sequential run reports, for any worker count, and `stop_at_first_cex`
//! must still surface the documented bugs when workers race.

use gila::designs::all_case_studies;
use gila::verify::{verify_module, CheckResult, VerifyOptions};

fn with_jobs(jobs: usize) -> VerifyOptions {
    VerifyOptions {
        jobs: Some(jobs),
        ..Default::default()
    }
}

/// `(port, instruction, holds)` triples — everything that must be
/// identical between scheduling modes.
fn verdict_shape(report: &gila::verify::ModuleReport) -> Vec<(String, String, bool)> {
    report
        .ports
        .iter()
        .flat_map(|p| {
            p.verdicts
                .iter()
                .map(|v| (p.port.clone(), v.instruction.clone(), v.result.holds()))
        })
        .collect()
}

#[test]
fn pooled_module_verification_matches_sequential() {
    for cs in all_case_studies() {
        // One i8051 and one AXI design keep the test fast while still
        // covering multi-port scheduling.
        if !matches!(cs.name, "Decoder" | "AXI Slave") {
            continue;
        }
        let seq = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &with_jobs(1)).unwrap();
        assert!(seq.all_hold(), "{}: {seq:#?}", cs.name);
        for jobs in [2, 8] {
            let pooled =
                verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &with_jobs(jobs)).unwrap();
            assert_eq!(
                verdict_shape(&seq),
                verdict_shape(&pooled),
                "{} with jobs={jobs}",
                cs.name
            );
        }
    }
}

#[test]
fn auto_sized_pool_runs_to_completion() {
    let cs = all_case_studies()
        .into_iter()
        .find(|c| c.name == "Decoder")
        .unwrap();
    // jobs = Some(0): one worker per available CPU.
    let report = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &with_jobs(0)).unwrap();
    assert!(report.all_hold(), "{report:#?}");
    assert_eq!(
        report.instructions_checked(),
        verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &with_jobs(1))
            .unwrap()
            .instructions_checked()
    );
}

#[test]
fn pooled_stop_at_first_cex_finds_the_documented_bug() {
    let cs = all_case_studies()
        .into_iter()
        .find(|c| c.name == "AXI Slave")
        .unwrap();
    let buggy = cs.buggy_rtl.expect("AXI Slave has a documented bug");
    let opts = VerifyOptions {
        jobs: Some(2),
        stop_at_first_cex: true,
        ..Default::default()
    };
    let report = verify_module(&cs.ila, &buggy, &cs.refmaps, &opts).unwrap();
    assert!(!report.all_hold());
    let cex: Vec<&str> = report
        .ports
        .iter()
        .flat_map(|p| &p.verdicts)
        .filter(|v| matches!(v.result, CheckResult::CounterExample(_)))
        .map(|v| v.instruction.as_str())
        .collect();
    assert!(
        cex.contains(&"RD_DATA_PREPARE"),
        "documented bug not among counterexamples: {cex:?}"
    );
}

#[test]
fn pooled_runs_reuse_worker_cnf() {
    // With one worker the pool degenerates to a single persistent
    // incremental engine: every instruction after the first must add
    // far less CNF than the first (the transition relation is cached).
    let cs = all_case_studies()
        .into_iter()
        .find(|c| c.name == "Decoder")
        .unwrap();
    let opts = VerifyOptions {
        jobs: Some(1),
        incremental: true,
        ..Default::default()
    };
    let report = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &opts).unwrap();
    let growth: Vec<u64> = report
        .ports
        .iter()
        .flat_map(|p| &p.verdicts)
        .map(|v| v.cnf_growth.clauses)
        .collect();
    assert!(growth.len() > 1, "need several instructions: {growth:?}");
    // The first instruction pays for the blasted transition relation;
    // every later one only adds its own decode/post-state logic, so its
    // growth is strictly smaller — and once instructions share circuitry
    // the increment collapses to almost nothing.
    let first = growth[0];
    assert!(
        growth[1..].iter().all(|&g| g < first),
        "expected every later instruction to grow the CNF less than the \
         first on a persistent engine: {growth:?}"
    );
    let later_min = *growth[1..].iter().min().unwrap();
    assert!(
        later_min * 4 < first,
        "expected near-total CNF reuse for at least one instruction: {growth:?}"
    );
}
