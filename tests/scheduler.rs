//! Integration tests of the work-stealing verification scheduler on the
//! paper's case studies: a pooled run must report exactly what a
//! sequential run reports, for any worker count, and `stop_at_first_cex`
//! must still surface the documented bugs when workers race.

use std::sync::Arc;

use gila::designs::all_case_studies;
use gila::verify::{
    verify_module, CheckResult, FaultAction, FaultPlan, SolveBudget, VerifyOptions,
};

fn with_jobs(jobs: usize) -> VerifyOptions {
    VerifyOptions {
        jobs: Some(jobs),
        ..Default::default()
    }
}

/// `(port, instruction, holds)` triples — everything that must be
/// identical between scheduling modes.
fn verdict_shape(report: &gila::verify::ModuleReport) -> Vec<(String, String, bool)> {
    report
        .ports
        .iter()
        .flat_map(|p| {
            p.verdicts
                .iter()
                .map(|v| (p.port.clone(), v.instruction.clone(), v.result.holds()))
        })
        .collect()
}

#[test]
fn pooled_module_verification_matches_sequential() {
    for cs in all_case_studies() {
        // One i8051 and one AXI design keep the test fast while still
        // covering multi-port scheduling.
        if !matches!(cs.name, "Decoder" | "AXI Slave") {
            continue;
        }
        let seq = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &with_jobs(1)).unwrap();
        assert!(seq.all_hold(), "{}: {seq:#?}", cs.name);
        for jobs in [2, 8] {
            let pooled =
                verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &with_jobs(jobs)).unwrap();
            assert_eq!(
                verdict_shape(&seq),
                verdict_shape(&pooled),
                "{} with jobs={jobs}",
                cs.name
            );
        }
    }
}

#[test]
fn auto_sized_pool_runs_to_completion() {
    let cs = all_case_studies()
        .into_iter()
        .find(|c| c.name == "Decoder")
        .unwrap();
    // jobs = Some(0): one worker per available CPU.
    let report = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &with_jobs(0)).unwrap();
    assert!(report.all_hold(), "{report:#?}");
    assert_eq!(
        report.instructions_checked(),
        verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &with_jobs(1))
            .unwrap()
            .instructions_checked()
    );
}

#[test]
fn pooled_stop_at_first_cex_finds_the_documented_bug() {
    let cs = all_case_studies()
        .into_iter()
        .find(|c| c.name == "AXI Slave")
        .unwrap();
    let buggy = cs.buggy_rtl.expect("AXI Slave has a documented bug");
    let opts = VerifyOptions {
        jobs: Some(2),
        stop_at_first_cex: true,
        ..Default::default()
    };
    let report = verify_module(&cs.ila, &buggy, &cs.refmaps, &opts).unwrap();
    assert!(!report.all_hold());
    let cex: Vec<&str> = report
        .ports
        .iter()
        .flat_map(|p| &p.verdicts)
        .filter(|v| matches!(v.result, CheckResult::CounterExample(_)))
        .map(|v| v.instruction.as_str())
        .collect();
    assert!(
        cex.contains(&"RD_DATA_PREPARE"),
        "documented bug not among counterexamples: {cex:?}"
    );
}

#[test]
fn pooled_verdicts_match_sequential_under_fault_injection() {
    // Panic isolation and forced Unknowns must not depend on the
    // scheduling mode: a faulted pooled run reports the same per-
    // instruction outcome tags as a faulted sequential run.
    let cs = all_case_studies()
        .into_iter()
        .find(|c| c.name == "Decoder")
        .unwrap();
    let target = cs.ila.ports()[0].instructions()[0].name.clone();
    let tags = |jobs: usize| {
        let opts = VerifyOptions {
            jobs: Some(jobs),
            fault_plan: Some(Arc::new(FaultPlan::new().inject(
                "*",
                &target,
                FaultAction::Panic("parity".into()),
                None,
            ))),
            ..Default::default()
        };
        let report = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &opts).unwrap();
        report
            .ports
            .iter()
            .flat_map(|p| {
                p.verdicts
                    .iter()
                    .map(|v| (p.port.clone(), v.instruction.clone(), v.result.tag()))
            })
            .collect::<Vec<_>>()
    };
    let seq = tags(1);
    assert!(seq.iter().any(|(_, _, t)| *t == "panicked"));
    for jobs in [2, 8] {
        assert_eq!(seq, tags(jobs), "jobs={jobs}");
    }
}

#[test]
fn budgets_disabled_pool_matches_pr2_behavior() {
    // The default (unbounded) budget takes the exact pre-budget code
    // path: no Unknown verdicts, no retries, zero budget telemetry.
    let cs = all_case_studies()
        .into_iter()
        .find(|c| c.name == "Decoder")
        .unwrap();
    let opts = VerifyOptions {
        jobs: Some(4),
        ..Default::default()
    };
    assert!(opts.budget.is_unbounded());
    let report = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &opts).unwrap();
    assert!(report.all_hold());
    let c = report.counts();
    assert_eq!((c.unknown, c.panicked), (0, 0));
    assert_eq!(report.telemetry.retries, 0);
    assert_eq!(report.telemetry.budget_spent_conflicts, 0);
    assert!(report.ports.iter().flat_map(|p| &p.verdicts).all(|v| v.retries == 0));
}

#[test]
fn pooled_budget_exhaustion_is_reported_not_fatal() {
    // A zero deadline exhausts every job in the pool; the run still
    // completes with a full set of Unknown verdicts.
    let cs = all_case_studies()
        .into_iter()
        .find(|c| c.name == "Decoder")
        .unwrap();
    let opts = VerifyOptions {
        jobs: Some(4),
        budget: SolveBudget {
            conflicts: None,
            timeout: Some(std::time::Duration::ZERO),
        },
        ..Default::default()
    };
    let report = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &opts).unwrap();
    assert_eq!(
        report.counts().unknown,
        report.instructions_checked(),
        "{:?}",
        report.counts()
    );
}

#[test]
fn pooled_runs_reuse_worker_cnf() {
    // With one worker the pool degenerates to a single persistent
    // incremental engine: every instruction after the first must add
    // far less CNF than the first (the transition relation is cached).
    let cs = all_case_studies()
        .into_iter()
        .find(|c| c.name == "Decoder")
        .unwrap();
    let opts = VerifyOptions {
        jobs: Some(1),
        incremental: true,
        ..Default::default()
    };
    let report = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &opts).unwrap();
    let growth: Vec<u64> = report
        .ports
        .iter()
        .flat_map(|p| &p.verdicts)
        .map(|v| v.cnf_growth.clauses)
        .collect();
    assert!(growth.len() > 1, "need several instructions: {growth:?}");
    // The first instruction pays for the blasted transition relation;
    // every later one only adds its own decode/post-state logic, so its
    // growth is strictly smaller — and once instructions share circuitry
    // the increment collapses to almost nothing.
    let first = growth[0];
    assert!(
        growth[1..].iter().all(|&g| g < first),
        "expected every later instruction to grow the CNF less than the \
         first on a persistent engine: {growth:?}"
    );
    let later_min = *growth[1..].iter().min().unwrap();
    assert!(
        later_min * 4 < first,
        "expected near-total CNF reuse for at least one instruction: {growth:?}"
    );
}
