//! The bundled `.ila` specification files: they parse, are well-formed,
//! and — for the decoder — verify against the same hand-written RTL as
//! the Rust-built model, proving the DSL and the builder API describe
//! the same specification.

use gila::core::{decode_gap, decode_overlaps};
use gila::lang::parse_ila;
use gila::verify::{verify_module, VerifyOptions};

const COUNTER: &str = include_str!("../specs/counter.ila");
const DECODER: &str = include_str!("../specs/decoder.ila");
const MEM_IFACE: &str = include_str!("../specs/mem_iface.ila");

#[test]
fn bundled_specs_parse_and_are_well_formed() {
    for (name, src) in [("counter", COUNTER), ("decoder", DECODER), ("mem_iface", MEM_IFACE)] {
        let m = parse_ila(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        for port in m.ports() {
            assert!(
                decode_gap(port, None).is_none(),
                "{name}/{}: incomplete decode",
                port.name()
            );
            assert!(
                decode_overlaps(port, None).is_empty(),
                "{name}/{}: nondeterministic decode",
                port.name()
            );
        }
    }
}

#[test]
fn dsl_decoder_verifies_against_the_handwritten_rtl() {
    use gila::designs::i8051::decoder;
    let m = parse_ila(DECODER).expect("valid spec");
    assert_eq!(m.stats().instructions, 5);
    let report = verify_module(
        &m,
        &decoder::rtl(),
        &decoder::refinement_maps(),
        &VerifyOptions::default(),
    )
    .expect("well-formed");
    assert!(report.all_hold(), "{report:#?}");
}

#[test]
fn dsl_mem_iface_matches_the_rust_model() {
    use gila::designs::i8051::mem_iface;
    let from_dsl = parse_ila(MEM_IFACE).expect("valid spec");
    let from_rust = mem_iface::ila();
    assert_eq!(
        from_dsl.stats().instructions,
        from_rust.stats().instructions
    );
    // The DSL model drives the same verification to the same verdict.
    let mut maps = mem_iface::refinement_maps();
    // The DSL integration names the merged port ROM_RAM_PORT.
    maps[0].name = "ROM_RAM_PORT".into();
    maps[1].name = "PC_PORT".into();
    let report = verify_module(
        &from_dsl,
        &mem_iface::rtl(),
        &maps,
        &VerifyOptions::default(),
    )
    .expect("well-formed");
    assert!(report.all_hold(), "{report:#?}");
}

#[test]
fn dsl_decoder_synthesizes_and_roundtrips() {
    use gila::verify::{identity_refmaps, synthesize_module};
    let m = parse_ila(DECODER).expect("valid spec");
    let rtl = synthesize_module(&m).expect("synthesizable");
    let maps = identity_refmaps(&m);
    let report = verify_module(&m, &rtl, &maps, &VerifyOptions::default()).expect("well-formed");
    assert!(report.all_hold(), "{report:#?}");
    // And the synthesized module emits valid Verilog.
    let text = rtl.to_verilog().expect("emittable");
    gila::rtl::parse_verilog(&text).expect("valid emitted Verilog");
}

#[test]
fn dsl_axi_slave_verifies_and_finds_the_bug() {
    use gila::designs::axi::slave;
    const AXI: &str = include_str!("../specs/axi_slave.ila");
    let m = parse_ila(AXI).expect("valid spec");
    assert_eq!(m.stats().instructions, 9);
    // Rename the maps to the DSL's port identifiers.
    let mut maps = slave::refinement_maps();
    maps[0].name = "READ_PORT".into();
    maps[1].name = "WRITE_PORT".into();
    let report =
        verify_module(&m, &slave::rtl(), &maps, &VerifyOptions::default()).expect("well-formed");
    assert!(report.all_hold(), "{report:#?}");
    // The DSL spec finds the same injected bug at the same instruction.
    let report = verify_module(&m, &slave::buggy_rtl(), &maps, &VerifyOptions::default())
        .expect("well-formed");
    let v = report.ports[0].first_counterexample().expect("bug found");
    assert_eq!(v.instruction, "RD_DATA_PREPARE");
}

#[test]
fn every_case_study_model_round_trips_through_ila_text() {
    use gila::designs::{i8051::datapath, riscv::store_buffer};
    use gila::expr::{import, ExprCtx};
    use gila::smt::prove_equiv;
    use gila::lang::to_ila_text;
    use std::collections::HashMap;

    for cs in gila::designs::all_case_studies() {
        // Use the abstracted variants of the memory-heavy designs so the
        // semantic equivalence queries stay small.
        let ila = match cs.name {
            "Datapath" => datapath::ila_abstracted(),
            "Store Buffer" => store_buffer::ila_abstracted(),
            _ => cs.ila.clone(),
        };
        let text = to_ila_text(&ila)
            .unwrap_or_else(|e| panic!("{}: print failed: {e}", cs.name));
        let back = parse_ila(&text)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{text}", cs.name));
        assert_eq!(
            back.stats().instructions,
            ila.stats().instructions,
            "{}",
            cs.name
        );
        // Semantic equivalence per instruction: decode and every update
        // agree for all inputs and states.
        for (orig_port, back_port) in ila.ports().iter().zip(back.ports()) {
            for (orig, repr) in orig_port
                .instructions()
                .iter()
                .zip(back_port.instructions())
            {
                let mut ctx = ExprCtx::new();
                let mut memo_a = HashMap::new();
                let mut memo_b = HashMap::new();
                let da = import(&mut ctx, orig_port.ctx(), orig.decode, &mut memo_a);
                let db = import(&mut ctx, back_port.ctx(), repr.decode, &mut memo_b);
                assert!(
                    prove_equiv(&mut ctx, da, db),
                    "{}/{}: decode of {} changed",
                    cs.name,
                    orig_port.name(),
                    orig.name
                );
                assert_eq!(
                    orig.updates.len(),
                    repr.updates.len(),
                    "{}/{}: update set of {} changed",
                    cs.name,
                    orig_port.name(),
                    orig.name
                );
                for (state, &ua) in &orig.updates {
                    let &ub = repr
                        .updates
                        .get(state)
                        .unwrap_or_else(|| panic!("{}: missing update of {state}", cs.name));
                    let ea = import(&mut ctx, orig_port.ctx(), ua, &mut memo_a);
                    let eb = import(&mut ctx, back_port.ctx(), ub, &mut memo_b);
                    assert!(
                        prove_equiv(&mut ctx, ea, eb),
                        "{}/{}: update of {state} in {} changed",
                        cs.name,
                        orig_port.name(),
                        orig.name
                    );
                }
            }
        }
    }
}
