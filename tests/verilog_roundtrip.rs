//! Verilog round trips: parse -> emit -> reparse -> co-simulate, for
//! every case-study RTL and for every ILA-synthesized implementation.

use gila::designs::{all_case_studies, i8051::datapath, riscv::store_buffer};
use gila::expr::BitVecValue;
use gila::rtl::{parse_verilog, RtlModule, RtlSimulator};
use gila::verify::synthesize_module;
use rand::{Rng, SeedableRng};

fn cosim_same(a: &RtlModule, b: &RtlModule, seed: u64, cycles: usize, label: &str) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut sim_a = RtlSimulator::new(a);
    let mut sim_b = RtlSimulator::new(b);
    for cycle in 0..cycles {
        let mut ins_a = std::collections::BTreeMap::new();
        for i in a.inputs() {
            let bits: Vec<bool> = (0..i.width).map(|_| rng.gen()).collect();
            ins_a.insert(i.name.clone(), BitVecValue::from_bits(&bits));
        }
        // b may have an extra clk pin (added by the emitter).
        let mut ins_b = ins_a.clone();
        if b.find_input("clk").is_some() && !ins_b.contains_key("clk") {
            ins_b.insert("clk".to_string(), BitVecValue::from_u64(1, 1));
        }
        sim_a.step(&ins_a).expect("valid inputs");
        sim_b.step(&ins_b).expect("valid inputs");
        for (name, v) in sim_a.state() {
            assert_eq!(
                v, &sim_b.state()[name],
                "{label}: state {name} diverged at cycle {cycle}"
            );
        }
    }
}

#[test]
fn handwritten_rtl_survives_emit_reparse() {
    for cs in all_case_studies() {
        let emitted = cs
            .rtl
            .to_verilog()
            .unwrap_or_else(|e| panic!("{}: emit failed: {e}", cs.name));
        let reparsed = parse_verilog(&emitted)
            .unwrap_or_else(|e| panic!("{}: emitted text invalid: {e}\n{emitted}", cs.name));
        assert_eq!(cs.rtl.state_bits(), reparsed.state_bits(), "{}", cs.name);
        cosim_same(&cs.rtl, &reparsed, 0x0E311 + cs.name.len() as u64, 60, cs.name);
    }
}

#[test]
fn synthesized_rtl_emits_valid_verilog() {
    for cs in all_case_studies() {
        let ila = match cs.name {
            "Datapath" => datapath::ila_abstracted(),
            "Store Buffer" => store_buffer::ila_abstracted(),
            _ => cs.ila.clone(),
        };
        let synth = synthesize_module(&ila)
            .unwrap_or_else(|e| panic!("{}: synthesis failed: {e}", cs.name));
        let emitted = synth
            .to_verilog()
            .unwrap_or_else(|e| panic!("{}: emit failed: {e}", cs.name));
        let reparsed = parse_verilog(&emitted)
            .unwrap_or_else(|e| panic!("{}: emitted text invalid: {e}\n{emitted}", cs.name));
        cosim_same(&synth, &reparsed, 0x5F17C + cs.name.len() as u64, 60, cs.name);
    }
}

#[test]
fn emit_reparse_is_sequentially_equivalent_not_just_cosimilar() {
    // Stronger than random co-simulation: BMC-based sequential
    // equivalence of the original and round-tripped memory interface,
    // over all input sequences up to the bound.
    use gila::designs::i8051::mem_iface;
    use gila::verify::check_rtl_equivalence;
    let a = mem_iface::rtl();
    let b = parse_verilog(&a.to_verilog().expect("emittable")).expect("valid");
    let compare: Vec<(&str, &str)> = vec![
        ("rom_addr_r", "rom_addr_r"),
        ("rom_data_r", "rom_data_r"),
        ("ram_addr_r", "ram_addr_r"),
        ("ram_data_r", "ram_data_r"),
        ("mem_wait_r", "mem_wait_r"),
        ("pc_r", "pc_r"),
        ("instr_buff_r", "instr_buff_r"),
    ];
    let outcome = check_rtl_equivalence(&a, &b, &compare, 4).expect("well-formed");
    assert!(outcome.equivalent(), "{outcome:?}");
}

#[test]
fn buggy_and_fixed_axi_slave_are_not_equivalent() {
    use gila::designs::axi::slave;
    use gila::verify::{check_rtl_equivalence, EquivOutcome};
    let outcome = check_rtl_equivalence(
        &slave::rtl(),
        &slave::buggy_rtl(),
        &[("rd_data_r", "rd_data_r")],
        4,
    )
    .expect("well-formed");
    let EquivOutcome::Diverges(cex) = outcome else {
        panic!("the bug must be observable: {outcome:?}");
    };
    assert!(cex.violation_step >= 1);
}

#[test]
fn hierarchical_rtl_verifies_against_an_ila() {
    // A two-level design (accumulator instantiating an adder) flattens
    // and then refines a one-port ILA through the standard engine.
    use gila::core::{PortIla, StateKind};
    use gila::expr::Sort;
    use gila::rtl::parse_verilog_hierarchy;
    use gila::verify::{verify_port, RefinementMap, VerifyOptions};

    let rtl = parse_verilog_hierarchy(
        r#"
module adder(clk, a, b, s);
  input clk;
  input [7:0] a;
  input [7:0] b;
  output [7:0] s;
  assign s = a + b;
endmodule

module acc(clk, x, en);
  input clk;
  input [7:0] x;
  input en;
  wire [7:0] next;
  reg [7:0] total;
  adder u_add (.a(total), .b(x), .s(next));
  always @(posedge clk) if (en) total <= next;
endmodule
"#,
        "acc",
    )
    .expect("valid hierarchy");

    let mut ila = PortIla::new("acc");
    let en = ila.input("en", Sort::Bv(1));
    let x = ila.input("x", Sort::Bv(8));
    let total = ila.state("total", Sort::Bv(8), StateKind::Output);
    let d = ila.ctx_mut().eq_u64(en, 1);
    let sum = ila.ctx_mut().bvadd(total, x);
    ila.instr("ACCUMULATE").decode(d).update("total", sum).add().unwrap();
    let d = ila.ctx_mut().eq_u64(en, 0);
    ila.instr("NOP").decode(d).add().unwrap();

    let mut map = RefinementMap::new("acc");
    map.map_state("total", "total");
    map.map_input("en", "en");
    map.map_input("x", "x");
    let report = verify_port(&ila, &rtl, &map, &VerifyOptions::default()).expect("well-formed");
    assert!(report.all_hold(), "{report:#?}");
}
