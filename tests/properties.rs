//! Property-based tests (proptest) on the platform's core invariants:
//! bit-vector arithmetic against a `u128` reference model, the
//! simplifier and bit-blaster against the concrete evaluator, the SAT
//! solver against brute force, and composition/integration invariants.

use std::collections::BTreeMap;

use gila::core::{integrate, PortIla, PortPriorityResolver, StateKind};
use gila::expr::{
    eval, simplify_cached, BitVecValue, Env, ExprCtx, ExprRef, Sort, Value,
};
use gila::sat::{Lit, Solver, Var};
use gila::smt::SmtSolver;
use proptest::prelude::*;
use rand::SeedableRng;

// ---------------------------------------------------------------------
// BitVecValue vs u128 reference semantics
// ---------------------------------------------------------------------

fn mask(w: u32) -> u128 {
    if w >= 128 {
        u128::MAX
    } else {
        (1u128 << w) - 1
    }
}

proptest! {
    #[test]
    fn bv_arith_matches_reference(a in any::<u64>(), b in any::<u64>(), w in 1u32..65) {
        let m = mask(w);
        let av = BitVecValue::from_u64(a, w);
        let bv = BitVecValue::from_u64(b, w);
        let (ar, br) = ((a as u128) & m, (b as u128) & m);
        prop_assert_eq!(av.add(&bv).to_u64() as u128, (ar + br) & m);
        prop_assert_eq!(av.sub(&bv).to_u64() as u128, ar.wrapping_sub(br) & m);
        prop_assert_eq!(av.mul(&bv).to_u64() as u128, (ar.wrapping_mul(br)) & m);
        prop_assert_eq!(av.and(&bv).to_u64() as u128, ar & br);
        prop_assert_eq!(av.or(&bv).to_u64() as u128, ar | br);
        prop_assert_eq!(av.xor(&bv).to_u64() as u128, ar ^ br);
        prop_assert_eq!(av.not().to_u64() as u128, !ar & m);
        prop_assert_eq!(av.ult(&bv), ar < br);
        prop_assert_eq!(av.ule(&bv), ar <= br);
        match ar.checked_div(br) {
            Some(q) => {
                prop_assert_eq!(av.udiv(&bv).to_u64() as u128, q);
                prop_assert_eq!(av.urem(&bv).to_u64() as u128, ar % br);
            }
            None => {
                prop_assert!(av.udiv(&bv).is_ones());
                prop_assert_eq!(av.urem(&bv), av.clone());
            }
        }
    }

    #[test]
    fn bv_shifts_match_reference(a in any::<u64>(), s in 0u64..80, w in 1u32..65) {
        let m = mask(w);
        let av = BitVecValue::from_u64(a, w);
        let sv = BitVecValue::from_u64(s, w);
        let ar = (a as u128) & m;
        let s_eff = (s as u128) & m;
        let expected_shl = if s_eff >= w as u128 { 0 } else { (ar << s_eff) & m };
        let expected_shr = if s_eff >= w as u128 { 0 } else { ar >> s_eff };
        prop_assert_eq!(av.shl(&sv).to_u64() as u128, expected_shl);
        prop_assert_eq!(av.lshr(&sv).to_u64() as u128, expected_shr);
    }

    #[test]
    fn bv_concat_extract_roundtrip(a in any::<u64>(), w1 in 1u32..33, w2 in 1u32..33) {
        let hi = BitVecValue::from_u64(a, w1);
        let lo = BitVecValue::from_u64(a.rotate_left(13), w2);
        let c = hi.concat(&lo);
        prop_assert_eq!(c.width(), w1 + w2);
        prop_assert_eq!(c.extract(w2 - 1, 0), lo);
        prop_assert_eq!(c.extract(w1 + w2 - 1, w2), hi);
    }

    #[test]
    fn bv_signed_comparison_matches_reference(a in any::<u64>(), b in any::<u64>(), w in 2u32..64) {
        let av = BitVecValue::from_u64(a, w);
        let bv = BitVecValue::from_u64(b, w);
        let sign_extend = |x: u64| -> i128 {
            let x = (x as u128) & mask(w);
            if x >> (w - 1) & 1 == 1 {
                x as i128 - (1i128 << w)
            } else {
                x as i128
            }
        };
        prop_assert_eq!(av.slt(&bv), sign_extend(a) < sign_extend(b));
        prop_assert_eq!(av.sle(&bv), sign_extend(a) <= sign_extend(b));
    }

    #[test]
    fn bv_hex_parse_format_roundtrip(a in any::<u64>(), w in 1u32..17) {
        // Formatting then parsing recovers the value (width rounded to
        // nibbles by parse, so compare after zext).
        let v = BitVecValue::from_u64(a, w * 4);
        let s = format!("{v:x}");
        let back = BitVecValue::parse_hex(&s).expect("valid hex");
        prop_assert_eq!(back, v);
    }
}

// ---------------------------------------------------------------------
// Random expressions: simplifier and bit-blaster agree with eval
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum RandomOp {
    Add,
    Sub,
    Mul,
    And,
    Or,
    Xor,
    Shl,
    Lshr,
    Ashr,
    Ite,
    Not,
    Neg,
    Udiv,
    Urem,
    Concat,
    Extract,
    Zext,
    Sext,
    Cmp,
}

fn random_op() -> impl Strategy<Value = RandomOp> {
    prop_oneof![
        Just(RandomOp::Add),
        Just(RandomOp::Sub),
        Just(RandomOp::Mul),
        Just(RandomOp::And),
        Just(RandomOp::Or),
        Just(RandomOp::Xor),
        Just(RandomOp::Shl),
        Just(RandomOp::Lshr),
        Just(RandomOp::Ashr),
        Just(RandomOp::Ite),
        Just(RandomOp::Not),
        Just(RandomOp::Neg),
        Just(RandomOp::Udiv),
        Just(RandomOp::Urem),
        Just(RandomOp::Concat),
        Just(RandomOp::Extract),
        Just(RandomOp::Zext),
        Just(RandomOp::Sext),
        Just(RandomOp::Cmp),
    ]
}

/// Every node is kept at width `W` (structural ops re-extend or slice
/// back) so any pool element can feed any operator.
fn build_expr(ctx: &mut ExprCtx, ops: &[(RandomOp, u8, u8)], consts: &[u64]) -> ExprRef {
    const W: u32 = 7;
    let x = ctx.var("x", Sort::Bv(W));
    let y = ctx.var("y", Sort::Bv(W));
    let mut pool = vec![x, y];
    for &c in consts {
        pool.push(ctx.bv_u64(c & 0x7F, W));
    }
    for (op, ia, ib) in ops {
        let a = pool[*ia as usize % pool.len()];
        let b = pool[*ib as usize % pool.len()];
        let e = match op {
            RandomOp::Add => ctx.bvadd(a, b),
            RandomOp::Sub => ctx.bvsub(a, b),
            RandomOp::Mul => ctx.bvmul(a, b),
            RandomOp::And => ctx.bvand(a, b),
            RandomOp::Or => ctx.bvor(a, b),
            RandomOp::Xor => ctx.bvxor(a, b),
            RandomOp::Shl => ctx.bvshl(a, b),
            RandomOp::Lshr => ctx.bvlshr(a, b),
            RandomOp::Ashr => ctx.bvashr(a, b),
            RandomOp::Ite => {
                let c = ctx.ult(a, b);
                ctx.ite(c, a, b)
            }
            RandomOp::Not => ctx.bvnot(a),
            RandomOp::Neg => ctx.bvneg(a),
            RandomOp::Udiv => ctx.bvudiv(a, b),
            RandomOp::Urem => ctx.bvurem(a, b),
            RandomOp::Concat => {
                let wide = ctx.concat(a, b);
                ctx.extract(wide, W - 1, 0)
            }
            RandomOp::Extract => {
                let hi = *ia as u32 % W;
                let lo = *ib as u32 % (hi + 1);
                let cut = ctx.extract(a, hi, lo);
                ctx.zext(cut, W)
            }
            RandomOp::Zext => {
                let cut = ctx.extract(a, W / 2, 0);
                ctx.zext(cut, W)
            }
            RandomOp::Sext => {
                let cut = ctx.extract(a, W / 2, 0);
                ctx.sext(cut, W)
            }
            RandomOp::Cmp => {
                // Exercise the boolean rewrites: a comparison network
                // folded back into the bit-vector world.
                let lt = ctx.ult(a, b);
                let eq = ctx.eq(a, b);
                let ne = ctx.not(eq);
                let both = ctx.and(lt, ne);
                let bit = ctx.bool_to_bv(both);
                ctx.zext(bit, W)
            }
        };
        pool.push(e);
    }
    *pool.last().expect("non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simplify_preserves_semantics(
        ops in proptest::collection::vec((random_op(), any::<u8>(), any::<u8>()), 1..12),
        consts in proptest::collection::vec(any::<u64>(), 1..4),
        seed in any::<u64>(),
    ) {
        let mut ctx = ExprCtx::new();
        let root = build_expr(&mut ctx, &ops, &consts);
        // The verify engine shares one memo table across many roots;
        // simplify through a shared table here too so the cached path
        // (memo hits included) is what the property exercises.
        let mut memo = std::collections::HashMap::new();
        let simplified = simplify_cached(&mut ctx, root, &mut memo);
        let x = ctx.find_var("x").expect("declared");
        let y = ctx.find_var("y").expect("declared");
        // Check the equivalence under several environments drawn from
        // the co-simulator's value distribution, not just one point.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let mut env = Env::new();
            env.bind(x, gila::verify::random_value(&mut rng, Sort::Bv(7)));
            env.bind(y, gila::verify::random_value(&mut rng, Sort::Bv(7)));
            prop_assert_eq!(
                eval(&ctx, root, &env).expect("bound"),
                eval(&ctx, simplified, &env).expect("bound")
            );
        }
    }

    #[test]
    fn blaster_agrees_with_evaluator(
        ops in proptest::collection::vec((random_op(), any::<u8>(), any::<u8>()), 1..8),
        consts in proptest::collection::vec(any::<u64>(), 1..3),
        vx in 0u64..128,
        vy in 0u64..128,
    ) {
        let mut ctx = ExprCtx::new();
        let root = build_expr(&mut ctx, &ops, &consts);
        let x = ctx.find_var("x").expect("declared");
        let y = ctx.find_var("y").expect("declared");
        let mut env = Env::new();
        env.bind_u64(&ctx, "x", vx);
        env.bind_u64(&ctx, "y", vy);
        let expected = eval(&ctx, root, &env).expect("bound").as_bv().clone();
        // Pin the inputs; the root must equal the evaluator's answer —
        // asserting the opposite must be UNSAT.
        let cx = ctx.eq_u64(x, vx);
        let cy = ctx.eq_u64(y, vy);
        let cr = ctx.bv(expected);
        let ne = ctx.ne(root, cr);
        let mut smt = SmtSolver::new();
        smt.assert(&ctx, cx);
        smt.assert(&ctx, cy);
        smt.assert(&ctx, ne);
        prop_assert!(!smt.check().is_sat());
    }
}

// ---------------------------------------------------------------------
// SAT solver vs brute force
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sat_agrees_with_brute_force(
        clauses in proptest::collection::vec(
            proptest::collection::vec((0usize..8, any::<bool>()), 1..4),
            1..24,
        ),
    ) {
        let n_vars = 8usize;
        let mut brute_sat = false;
        'outer: for m in 0u32..(1 << n_vars) {
            for c in &clauses {
                if !c.iter().any(|&(v, pos)| ((m >> v) & 1 == 1) == pos) {
                    continue 'outer;
                }
            }
            brute_sat = true;
            break;
        }
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..n_vars).map(|_| s.new_var()).collect();
        let mut ok = true;
        for c in &clauses {
            ok &= s.add_clause(c.iter().map(|&(v, pos)| Lit::new(vars[v], pos)));
        }
        let got = ok && s.solve().is_sat();
        prop_assert_eq!(got, brute_sat);
        if got {
            for c in &clauses {
                prop_assert!(c.iter().any(|&(v, pos)| s.value(vars[v]).expect("assigned") == pos));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Integration invariants
// ---------------------------------------------------------------------

/// Builds a port with `n` instructions selected by an input selector,
/// each writing a distinct constant to a shared state.
fn selector_port(name: &str, n: u64, shared: &str) -> PortIla {
    let mut p = PortIla::new(name);
    let sel = p.input(format!("{name}_sel"), Sort::Bv(4));
    p.state(shared, Sort::Bv(8), StateKind::Output);
    for i in 0..n {
        let ctx = p.ctx_mut();
        let d = if i + 1 == n {
            // Final instruction absorbs the remaining selector space so
            // the decode stays complete.
            let c = ctx.bv_u64(i, 4);
            ctx.uge(sel, c)
        } else {
            ctx.eq_u64(sel, i)
        };
        let v = ctx.bv_u64(0x10 + i, 8);
        p.instr(format!("{name}_I{i}"))
            .decode(d)
            .update(shared, v)
            .add()
            .expect("valid model");
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// |I_c| = |I_p1| * |I_p2| at the atomic level, for any sizes.
    #[test]
    fn integration_cross_product_size(n1 in 1u64..5, n2 in 1u64..5) {
        let a = selector_port("A", n1, "shared");
        let b = selector_port("B", n2, "shared");
        let resolver = PortPriorityResolver::new(["A", "B"]);
        let c = integrate("AB", &[&a, &b], &resolver).expect("resolved");
        prop_assert_eq!(
            c.num_atomic_instructions() as u64,
            n1 * n2
        );
        // Every integrated decode is the conjunction of its parts: the
        // integrated port is deterministic and complete if the parts are.
        prop_assert!(gila::core::decode_gap(&c, None).is_none());
        prop_assert!(gila::core::decode_overlaps(&c, None).is_empty());
    }

    /// Priority resolution always picks the first port's update.
    #[test]
    fn priority_resolution_picks_winner(n1 in 1u64..4, n2 in 1u64..4, i in 0u64..4, j in 0u64..4) {
        prop_assume!(i < n1 && j < n2);
        let a = selector_port("A", n1, "shared");
        let b = selector_port("B", n2, "shared");
        let resolver = PortPriorityResolver::new(["B", "A"]);
        let c = integrate("AB", &[&a, &b], &resolver).expect("resolved");
        let name = format!("A_I{i} & B_I{j}");
        let instr = c.find_instruction(&name).expect("combo exists");
        let upd = instr.updates["shared"];
        // B wins: the constant is B's.
        prop_assert_eq!(
            c.ctx().as_bv_const(upd),
            Some(&BitVecValue::from_u64(0x10 + j, 8))
        );
    }
}

// ---------------------------------------------------------------------
// Simulation determinism: module simulators never double-fire
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn decoder_simulation_total_and_deterministic(words in proptest::collection::vec((any::<bool>(), any::<u8>()), 1..40)) {
        use gila::designs::i8051::decoder;
        let port = decoder::port_ila();
        let mut sim = gila::core::PortSimulator::new(&port);
        for (wait, word) in words {
            let mut inputs = BTreeMap::new();
            inputs.insert("wait".to_string(), Value::Bv(BitVecValue::from_u64(wait as u64, 1)));
            inputs.insert("word_in".to_string(), Value::Bv(BitVecValue::from_u64(word as u64, 8)));
            // Exactly one instruction fires for every command.
            sim.step(&inputs).expect("complete and deterministic");
            // The step counter stays in range.
            prop_assert!(sim.state()["step"].as_bv().to_u64() <= 3);
        }
    }
}
