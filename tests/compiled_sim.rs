//! Acceptance tests of the compiled simulation backend and the mass
//! bug-hunting loop built on it.
//!
//! The compiled tape ([`gila::sim_compile`]) must be *observably
//! indistinguishable* from the interpreting simulators: same fired
//! instructions, same committed states, same divergence verdicts. The
//! differential harness ([`gila::verify::cosim_differential`]) drives
//! both backends from one shared stimulus stream and cross-checks full
//! ILA and RTL state every cycle; here it sweeps every registry design
//! over a seed grid, fanned out over a thread pool.
//!
//! On top of that sit the `gila hunt` guarantees: reports and telemetry
//! span sets identical at any job count, the seeded AXI read-burst bug
//! found and auto-shrunk to a pinned (golden) reproducer of at most
//! three commands, and shrunk streams that are 1-minimal by replay.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use gila::designs::{all_case_studies, CaseStudy};
use gila::trace::{span_set, Event, Tracer};
use gila::verify::{
    cosim_differential, cosimulate_compiled, hunt, replay_compiled, shrink_divergence, HuntConfig,
    HuntFinding, HuntReport, HuntTarget,
};

/// Seeds per (design, port) in the differential sweep.
const SEEDS: u64 = 64;
/// Cycles per seed in the differential sweep.
const CYCLES: usize = 1024;
/// Worker threads fanning the sweep out.
const THREADS: usize = 8;

/// Differentially tests the compiled backend against the interpreter on
/// every registry design: one shared random stimulus stream per task,
/// full-state cross-checks every cycle. A divergence *between the
/// models* (possible from the random unreachable start states the
/// harness draws) is fine — both backends must merely agree on it; any
/// disagreement between the backends is a failure.
#[test]
fn compiled_backend_mirrors_interpreter_on_every_design() {
    let designs = all_case_studies();
    let mut tasks: Vec<(usize, usize, u64, usize)> = Vec::new();
    for (c_i, cs) in designs.iter().enumerate() {
        // The Datapath interpreter walks two 256-entry memories per
        // cycle; a reduced grid keeps the sweep affordable while still
        // covering both of its ports.
        let (seeds, cycles) = if cs.name == "Datapath" {
            (8, 256)
        } else {
            (SEEDS, CYCLES)
        };
        for p_i in 0..cs.ila.ports().len() {
            for s in 0..seeds {
                tasks.push((c_i, p_i, s, cycles));
            }
        }
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(c_i, p_i, seed, cycles)) = tasks.get(i) else {
                    break;
                };
                let cs = &designs[c_i];
                let port = &cs.ila.ports()[p_i];
                let map = cs
                    .refmaps
                    .iter()
                    .find(|m| m.name == port.name())
                    .expect("one refinement map per port");
                cosim_differential(port, &cs.rtl, map, 0xD1FF + seed, cycles).unwrap_or_else(
                    |e| panic!("{}/{} seed {seed}: backends disagree: {e}", cs.name, port.name()),
                );
            });
        }
    });
}

fn targets_of<'a>(designs: &'a [CaseStudy], buggy: bool) -> Vec<HuntTarget<'a>> {
    let mut targets = Vec::new();
    for cs in designs {
        let rtl = if buggy {
            match &cs.buggy_rtl {
                Some(r) => r,
                None => continue,
            }
        } else {
            &cs.rtl
        };
        for port in cs.ila.ports() {
            let Some(map) = cs.refmaps.iter().find(|m| m.name == port.name()) else {
                continue;
            };
            targets.push(HuntTarget {
                design: cs.name,
                port,
                rtl,
                map,
            });
        }
    }
    targets
}

/// Finding identity up to everything the report guarantees.
fn finding_key(f: &HuntFinding) -> (String, String, u64, String, usize, Option<String>) {
    (
        f.design.clone(),
        f.port.clone(),
        f.seed,
        f.divergence.state.clone(),
        f.divergence.cycle,
        f.shrunk.as_ref().map(|s| s.divergence.command_stream()),
    )
}

/// The hunt's report — findings, shrunk reproducers, clean/cycle
/// counters — and its telemetry *span set* must be identical at any
/// worker count; only span interleaving may differ.
#[test]
fn hunt_is_deterministic_across_job_counts() {
    let designs = all_case_studies();
    // Buggy variants where a design ships one, fixed RTL otherwise — a
    // mix of finding and clean tasks exercises every outcome path.
    let mut targets = Vec::new();
    for cs in &designs {
        if cs.name == "Datapath" {
            continue;
        }
        let rtl = cs.buggy_rtl.as_ref().unwrap_or(&cs.rtl);
        for port in cs.ila.ports() {
            let Some(map) = cs.refmaps.iter().find(|m| m.name == port.name()) else {
                continue;
            };
            targets.push(HuntTarget {
                design: cs.name,
                port,
                rtl,
                map,
            });
        }
    }
    let run = |jobs: usize| -> (HuntReport, Vec<Event>) {
        let (tracer, ring) = Tracer::ring(1 << 16);
        let config = HuntConfig {
            seeds: 6,
            cycles: 160,
            jobs,
            ..HuntConfig::default()
        };
        let report = hunt(&targets, &config, &tracer).expect("targets validated");
        (report, ring.events())
    };
    let (r1, e1) = run(1);
    let (r4, e4) = run(4);

    assert_eq!(r1.tasks, r4.tasks);
    assert_eq!(r1.clean_tasks, r4.clean_tasks);
    assert_eq!(r1.cycles_run, r4.cycles_run);
    assert_eq!(r1.errors, r4.errors);
    let k1: Vec<_> = r1.findings.iter().map(finding_key).collect();
    let k4: Vec<_> = r4.findings.iter().map(finding_key).collect();
    assert_eq!(k1, k4, "findings must not depend on worker interleaving");
    assert!(!r1.findings.is_empty(), "the seeded bugs must surface");

    let jsonl = |events: &[Event]| {
        events
            .iter()
            .map(Event::to_json_line)
            .collect::<Vec<_>>()
            .join("\n")
    };
    let s1 = span_set(&jsonl(&e1)).expect("well-formed trace");
    let s4 = span_set(&jsonl(&e4)).expect("well-formed trace");
    assert_eq!(s1, s4, "span sets must be identical at any job count");
}

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/hunt")
        .join(file)
}

fn assert_matches_golden(file: &str, actual: &str) {
    let path = golden_path(file);
    if std::env::var("GILA_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "no golden at {}: {e} (run with GILA_REGEN_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        golden,
        actual,
        "{} drifted (regenerate with GILA_REGEN_GOLDEN=1)",
        path.display()
    );
}

/// The acceptance scenario: hunting the bundled bug-injected RTL
/// variants finds every documented bug, every reproducer auto-shrinks
/// to at most three commands, and the AXI Slave read-burst reproducer
/// is pinned byte-for-byte as a golden file that still replays to the
/// same divergence.
#[test]
fn hunt_finds_and_shrinks_the_seeded_bugs() {
    let designs = all_case_studies();
    let targets = targets_of(&designs, true);
    assert_eq!(
        targets.iter().map(|t| t.design).collect::<std::collections::BTreeSet<_>>().len(),
        3,
        "three designs ship bug-injected variants"
    );
    let config = HuntConfig {
        seeds: 8,
        cycles: 256,
        jobs: 4,
        ..HuntConfig::default()
    };
    let report = hunt(&targets, &config, &Tracer::disabled()).expect("targets validated");
    let found: std::collections::BTreeSet<&str> =
        report.findings.iter().map(|f| f.design.as_str()).collect();
    for design in ["AXI Slave", "L2 Cache", "Store Buffer"] {
        assert!(found.contains(design), "{design}: seeded bug not found");
    }
    for f in &report.findings {
        let s = f.shrunk.as_ref().expect("shrinking enabled");
        assert!(s.divergence.inputs.len() <= s.original_cycles);
        assert_eq!(s.divergence.state, f.divergence.state);
        // The AXI read-burst bug fires from a tiny window; its
        // reproducers must collapse to at most three commands. (The
        // Store Buffer bug genuinely needs the buffer filled first, so
        // its minimal traces are longer.)
        if f.design == "AXI Slave" {
            assert!(
                s.divergence.inputs.len() <= 3,
                "{}/{} seed {}: shrunk to {} commands, want <= 3",
                f.design,
                f.port,
                f.seed,
                s.divergence.inputs.len()
            );
        }
    }

    // Pin the first AXI Slave reproducer (deterministic: findings are
    // sorted by (design, port, seed), seeds fixed by the config).
    let f = report
        .findings
        .iter()
        .find(|f| f.design == "AXI Slave")
        .expect("checked above");
    let shrunk = &f.shrunk.as_ref().expect("shrinking enabled").divergence;
    assert_matches_golden("axi_slave_read_burst.stim", &shrunk.command_stream());

    // The pinned stream replays to the same divergence on the buggy
    // RTL and runs clean on the fixed one.
    let cs = designs.iter().find(|c| c.name == "AXI Slave").expect("registry");
    let port = cs
        .ila
        .ports()
        .iter()
        .find(|p| p.name() == f.port)
        .expect("port of the finding");
    let map = cs
        .refmaps
        .iter()
        .find(|m| m.name == port.name())
        .expect("one refinement map per port");
    let buggy = cs.buggy_rtl.as_ref().expect("AXI Slave ships a bug");
    let d = replay_compiled(port, buggy, map, &shrunk.start_state, &shrunk.inputs)
        .expect("replay runs")
        .expect("pinned stream reproduces");
    assert_eq!(d.state, f.divergence.state);
    let clean = replay_compiled(port, &cs.rtl, map, &shrunk.start_state, &shrunk.inputs)
        .expect("replay runs");
    assert!(clean.is_none(), "fixed RTL must not diverge: {clean:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: for any divergence the hunter surfaces, the shrunk
    /// stream (a) still replays to a divergence on the same ILA state
    /// and (b) is 1-minimal — dropping any single command kills the
    /// reproduction. The AXI Slave bug variant provides the synthetic
    /// divergences; seeds that happen not to diverge are discarded.
    #[test]
    fn shrunk_streams_reproduce_and_are_one_minimal(seed in 0u64..256) {
        let designs = all_case_studies();
        let cs = designs.iter().find(|c| c.name == "AXI Slave").expect("registry");
        let buggy = cs.buggy_rtl.as_ref().expect("AXI Slave ships a bug");
        let port = cs
            .ila
            .ports()
            .iter()
            .find(|p| p.name() == "READ-PORT")
            .expect("documented buggy port");
        let map = cs
            .refmaps
            .iter()
            .find(|m| m.name == port.name())
            .expect("one refinement map per port");

        let d = cosimulate_compiled(port, buggy, map, seed, 192)
            .expect("cosim runs");
        prop_assume!(d.is_some());
        let d = d.expect("assumed above");

        let s = shrink_divergence(port, buggy, map, &d).expect("shrink runs");
        prop_assert!(s.divergence.inputs.len() <= s.original_cycles);
        prop_assert_eq!(&s.divergence.state, &d.state);

        // (a) reproduces: replay diverges on the same state name.
        let r = replay_compiled(port, buggy, map, &s.divergence.start_state, &s.divergence.inputs)
            .expect("replay runs");
        prop_assert!(
            matches!(&r, Some(x) if x.state == d.state),
            "shrunk stream no longer reproduces: {:?}", r
        );

        // (b) 1-minimal: every command is load-bearing.
        for i in 0..s.divergence.inputs.len() {
            let mut inputs = s.divergence.inputs.clone();
            inputs.remove(i);
            let r = replay_compiled(port, buggy, map, &s.divergence.start_state, &inputs)
                .expect("replay runs");
            prop_assert!(
                !matches!(&r, Some(x) if x.state == d.state),
                "command {} of {} is removable — not 1-minimal",
                i,
                s.divergence.inputs.len()
            );
        }
    }
}
