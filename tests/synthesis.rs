//! Synthesis round trip: for every case study, synthesize RTL directly
//! from the module-ILA and verify the synthesized implementation with
//! identity refinement maps. This closes the loop spec -> impl -> check
//! entirely inside the platform and exercises the engine against a
//! second, independently produced implementation per design.

use gila::designs::{all_case_studies, i8051::datapath, riscv::store_buffer};
use gila::verify::{identity_refmaps, synthesize_module, verify_module, VerifyOptions};

#[test]
fn synthesized_implementations_verify_for_every_design() {
    for cs in all_case_studies() {
        // Use the abstracted variants of the memory-heavy designs to
        // keep the suite fast; the abstraction tests cover full size.
        let ila = match cs.name {
            "Datapath" => datapath::ila_abstracted(),
            "Store Buffer" => store_buffer::ila_abstracted(),
            _ => cs.ila.clone(),
        };
        let rtl = synthesize_module(&ila)
            .unwrap_or_else(|e| panic!("{}: synthesis failed: {e}", cs.name));
        let maps = identity_refmaps(&ila);
        let report = verify_module(&ila, &rtl, &maps, &VerifyOptions::default())
            .unwrap_or_else(|e| panic!("{}: setup error {e}", cs.name));
        assert!(
            report.all_hold(),
            "{}: synthesized RTL failed refinement: {report:#?}",
            cs.name
        );
        assert_eq!(
            report.instructions_checked(),
            ila.stats().instructions,
            "{}",
            cs.name
        );
    }
}

#[test]
fn synthesized_rtl_matches_handwritten_rtl_behaviour() {
    // Decoder: simulate the synthesized and hand-written RTL in
    // lockstep under random inputs; the mapped registers must agree.
    use gila::designs::i8051::decoder;
    use gila::expr::BitVecValue;
    use gila::rtl::RtlSimulator;
    use rand::{Rng, SeedableRng};

    let port = decoder::port_ila();
    let synth = synthesize_module(&decoder::ila()).expect("synthesizable");
    let hand = decoder::rtl();
    let map = &decoder::refinement_maps()[0];

    let mut synth_sim = RtlSimulator::new(&synth);
    let mut hand_sim = RtlSimulator::new(&hand);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xDEC0DE);
    for cycle in 0..200 {
        let wait = rng.gen_range(0..2u64);
        let word = rng.gen_range(0..256u64);
        let mut synth_ins = std::collections::BTreeMap::new();
        synth_ins.insert("wait".to_string(), BitVecValue::from_u64(wait, 1));
        synth_ins.insert("word_in".to_string(), BitVecValue::from_u64(word, 8));
        let mut hand_ins = std::collections::BTreeMap::new();
        hand_ins.insert("clk".to_string(), BitVecValue::from_u64(1, 1));
        hand_ins.insert("wait_data".to_string(), BitVecValue::from_u64(wait, 1));
        hand_ins.insert("op_in".to_string(), BitVecValue::from_u64(word, 8));
        synth_sim.step(&synth_ins).expect("valid");
        hand_sim.step(&hand_ins).expect("valid");
        for (ila_state, rtl_signal) in &map.state_map {
            // In the synthesized module the register carries the ILA name.
            let s = synth_sim.signal(ila_state, &synth_ins).expect("exists");
            let h = hand_sim.signal(rtl_signal, &hand_ins).expect("exists");
            assert_eq!(
                s, h,
                "cycle {cycle}: {ila_state} (synth) vs {rtl_signal} (hand) diverged"
            );
        }
    }
    let _ = port;
}
