//! ILA-vs-RTL co-simulation: for every case study, drive the ILA
//! simulator and the RTL simulator with the same random command streams
//! and check that the refinement-mapped states agree after every cycle
//! (via `gila_verify::cosimulate`).
//!
//! This is an independent (simulation-based) oracle for the same
//! correspondence the SAT-based refinement check proves, so it
//! cross-validates the engine, the simulators, and the models.

use gila::designs::all_case_studies;
use gila::verify::cosimulate;

/// Random command streams per (case study, port) for the agreement sweep.
const SEEDS: u64 = 16;
/// Cycle budget per agreement stream.
const CYCLES: usize = 60;
/// Base seed for the agreement sweep.
const SEED_BASE: u64 = 0xC0517;

/// Random command streams per (buggy design, port) for bug hunting.
const BUG_SEEDS: u64 = 16;
/// Cycle budget per bug-hunting stream — longer, since the injected bugs
/// need specific command prefixes to surface.
const BUG_CYCLES: usize = 120;
/// Base seed for the bug-hunting sweep.
const BUG_SEED_BASE: u64 = 0xB06;

#[test]
fn cosimulation_agrees_for_every_case_study() {
    for cs in all_case_studies() {
        for port in cs.ila.ports() {
            let map = cs
                .refmaps
                .iter()
                .find(|m| m.name == port.name())
                .expect("one map per port");
            for seed in 0..SEEDS {
                let d = cosimulate(port, &cs.rtl, map, SEED_BASE + seed, CYCLES)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", cs.name, port.name()));
                assert!(
                    d.is_none(),
                    "{}/{} seed {seed}: {}",
                    cs.name,
                    port.name(),
                    d.expect("checked")
                );
            }
        }
    }
}

#[test]
fn cosimulation_detects_the_injected_bugs() {
    // On a buggy RTL, random co-simulation must diverge for at least one
    // seed, on the port the paper blames.
    let expected_port = [
        ("AXI Slave", "READ-PORT"),
        ("L2 Cache", "PIPE1-PORT"),
        ("Store Buffer", "IN-OUT-PORT"),
    ];
    for cs in all_case_studies() {
        let Some(buggy) = &cs.buggy_rtl else { continue };
        let (_, blamed) = expected_port
            .iter()
            .find(|(n, _)| *n == cs.name)
            .expect("known buggy design");
        let mut diverged_on_blamed_port = false;
        for port in cs.ila.ports() {
            let map = cs
                .refmaps
                .iter()
                .find(|m| m.name == port.name())
                .expect("one map per port");
            for seed in 0..BUG_SEEDS {
                if let Some(d) = cosimulate(port, buggy, map, BUG_SEED_BASE + seed, BUG_CYCLES)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", cs.name, port.name()))
                {
                    assert_eq!(
                        port.name(),
                        *blamed,
                        "{}: divergence on unexpected port: {d}",
                        cs.name
                    );
                    diverged_on_blamed_port = true;
                }
            }
        }
        assert!(
            diverged_on_blamed_port,
            "{}: co-simulation failed to expose the injected bug",
            cs.name
        );
    }
}
