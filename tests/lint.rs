//! Golden tests for `gila-lint`.
//!
//! Lint output is deterministic by construction: ports are analyzed in
//! declaration order, passes run in pipeline order within a port, and
//! file-level findings come last. The job count only changes *where*
//! the per-port work runs, never the order results are assembled in —
//! so the same goldens must hold at `jobs = 1` and `jobs = 4`, and the
//! human and JSON renderings are stable artifacts we can diff.
//!
//! Regenerate goldens with `GILA_REGEN_GOLDEN=1 cargo test --test lint`
//! after an intentional lint change, and review the diff.

use std::path::PathBuf;
use std::sync::Arc;

use gila::designs::all_case_studies;
use gila::lang::parse_spec;
use gila::lint::{lint_module, lint_rtl, lint_spec, Code, LintOptions, LintReport};
use gila::rtl::parse_verilog;
use gila::trace::{RingSink, Tracer};

const SPECS: [(&str, &str); 5] = [
    ("counter", include_str!("../specs/counter.ila")),
    ("decoder", include_str!("../specs/decoder.ila")),
    ("axi_slave", include_str!("../specs/axi_slave.ila")),
    ("mem_iface", include_str!("../specs/mem_iface.ila")),
    ("broken", include_str!("../specs/broken.ila")),
];

const BROKEN_RTL: &str = include_str!("../specs/broken.v");

fn spec_report(name: &str, src: &str, jobs: usize) -> LintReport {
    let spec = parse_spec(src).unwrap_or_else(|e| panic!("{name}: {e}"));
    lint_spec(
        &format!("specs/{name}.ila"),
        &spec,
        &LintOptions { jobs, absint: true },
        &Tracer::disabled(),
    )
}

fn rtl_report(jobs: usize) -> LintReport {
    let _ = jobs; // the RTL passes are not parallelized
    let rtl = parse_verilog(BROKEN_RTL).unwrap();
    let mut report = LintReport::new("specs/broken.v");
    report.diagnostics = lint_rtl("specs/broken.v", &rtl, &Tracer::disabled());
    report
}

fn golden_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/lint")
        .join(file)
}

fn assert_matches_golden(file: &str, actual: &str) {
    let path = golden_path(file);
    if std::env::var("GILA_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "no golden at {}: {e} (run with GILA_REGEN_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        actual,
        golden,
        "{file}: lint output diverged — if the change is intentional, \
         regenerate with GILA_REGEN_GOLDEN=1"
    );
}

#[test]
fn spec_lint_matches_goldens_human_and_json() {
    for (name, src) in SPECS {
        let report = spec_report(name, src, 1);
        assert_matches_golden(&format!("{name}.lint"), &report.render_human());
        let mut json = report.to_json().pretty();
        json.push('\n');
        assert_matches_golden(&format!("{name}.lint.json"), &json);
    }
}

#[test]
fn rtl_lint_matches_goldens_human_and_json() {
    let report = rtl_report(1);
    assert_matches_golden("broken_rtl.lint", &report.render_human());
    let mut json = report.to_json().pretty();
    json.push('\n');
    assert_matches_golden("broken_rtl.lint.json", &json);
}

/// The deliberately broken fixtures must exercise every implemented
/// code, each finding carrying a span or a concrete witness.
#[test]
fn broken_fixtures_cover_every_code() {
    let spec = spec_report("broken", SPECS[4].1, 1);
    let rtl = rtl_report(1);
    let all: Vec<_> = spec
        .diagnostics
        .iter()
        .chain(rtl.diagnostics.iter())
        .collect();
    for code in Code::ALL {
        let hits: Vec<_> = all.iter().filter(|d| d.code == code).collect();
        assert!(!hits.is_empty(), "{code:?} not exercised by the fixtures");
        for d in hits {
            assert!(
                d.line.is_some() || d.witness.is_some() || !d.port.is_empty(),
                "{code:?} finding carries neither span, witness, nor port: {d:?}"
            );
        }
    }
    // The spec-side fixture alone covers GL001-GL010 with a span or a
    // SAT witness on every SAT-backed finding.
    for d in &spec.diagnostics {
        assert!(
            d.line.is_some() || d.witness.is_some(),
            "spec finding without span or witness: {d:?}"
        );
    }
}

/// Output must be identical at any job count (declaration-order
/// assembly, not completion order).
#[test]
fn lint_output_is_job_count_invariant() {
    for (name, src) in SPECS {
        let seq = spec_report(name, src, 1);
        let par = spec_report(name, src, 4);
        assert_eq!(
            seq.render_human(),
            par.render_human(),
            "{name}: jobs=4 diverged from jobs=1"
        );
        assert_eq!(seq.to_json().pretty(), par.to_json().pretty(), "{name}");
    }
}

/// The eight bundled case studies must stay free of error-class
/// diagnostics (their warnings document real abstraction choices).
#[test]
fn registry_designs_have_no_error_class_findings() {
    let jobs: usize = std::env::var("GILA_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let opts = LintOptions { jobs, absint: true };
    for cs in all_case_studies() {
        let mut report = lint_module(cs.name, &cs.ila, &opts, &Tracer::disabled());
        report
            .diagnostics
            .extend(lint_rtl(cs.name, &cs.rtl, &Tracer::disabled()));
        assert_eq!(
            report.errors(),
            0,
            "{}: {}",
            cs.name,
            report.render_human()
        );
    }
}

/// Every pass reports one `lint_pass` telemetry span per target, with
/// a diagnostic count and a wall-clock field.
#[test]
fn lint_passes_emit_timing_spans() {
    let (tracer, ring): (Tracer, Arc<RingSink>) = Tracer::ring(10_000);
    let spec = parse_spec(SPECS[4].1).unwrap();
    let report = lint_spec("broken", &spec, &LintOptions { jobs: 1, absint: true }, &tracer);
    let rtl = parse_verilog(BROKEN_RTL).unwrap();
    let rtl_diags = lint_rtl("broken_rtl", &rtl, &tracer);
    let events = ring.events();
    let spans: Vec<_> = events
        .iter()
        .map(|e| gila::json::parse(&e.to_json_line()).unwrap())
        .filter(|e| e.get("kind").and_then(|v| v.as_str()) == Some("lint_pass"))
        .collect();
    for pass in [
        "decode",
        "state_usage",
        "absint",
        "width",
        "compose",
        "rtl_unused_input",
        "rtl_undriven_state",
        "rtl_dead_state",
    ] {
        let span = spans
            .iter()
            .find(|s| s.get("label").and_then(|v| v.as_str()) == Some(pass))
            .unwrap_or_else(|| panic!("no lint_pass span for {pass:?}"));
        assert!(span.get("diags").and_then(|v| v.as_u64()).is_some(), "{pass}");
        assert!(span.get("wall_ns").and_then(|v| v.as_u64()).is_some(), "{pass}");
    }
    // The per-pass diag counts add up to the report totals.
    let spec_total: u64 = spans
        .iter()
        .filter(|s| s.get("port").and_then(|v| v.as_str()) == Some("broken"))
        .filter_map(|s| s.get("diags").and_then(|v| v.as_u64()))
        .sum();
    assert_eq!(spec_total as usize, report.diagnostics.len());
    let rtl_total: u64 = spans
        .iter()
        .filter(|s| s.get("port").and_then(|v| v.as_str()) == Some("broken_rtl"))
        .filter_map(|s| s.get("diags").and_then(|v| v.as_u64()))
        .sum();
    assert_eq!(rtl_total as usize, rtl_diags.len());
}

/// The four shipped specs stay free of error-class findings; the broken
/// fixture deterministically reports all four error-class codes.
#[test]
fn severity_classes_land_where_documented() {
    for (name, src) in &SPECS[..4] {
        let report = spec_report(name, src, 1);
        assert_eq!(report.errors(), 0, "{name}: {}", report.render_human());
    }
    let broken = spec_report("broken", SPECS[4].1, 1);
    for code in [
        Code::DecodeOverlap,
        Code::DeadInstruction,
        Code::UnresolvedConflict,
        Code::UnintegratedShared,
    ] {
        assert!(
            broken.diagnostics.iter().any(|d| d.code == code),
            "{code:?} missing from the broken fixture"
        );
    }
    assert!(broken.errors() >= 4);
    assert_eq!(broken.denied(&[Code::DecodeGap]), 1);
}
