//! Golden-trace tests for the telemetry layer.
//!
//! A single-threaded (`jobs = 1`) verification run is fully
//! deterministic: the CDCL solver branches deterministically, ports and
//! instructions run in declaration order, and every span's counters
//! depend only on the formula. So after stripping the volatile keys
//! (wall time, queue latency, worker id, steal flags) and sorting, the
//! trace is a stable artifact we can diff against a checked-in golden.
//!
//! A pooled run (`jobs = 4`) interleaves nondeterministically and its
//! per-worker CNF deltas differ (each persistent engine pays the
//! transition relation once), but the *set of work performed* — which
//! (port, instruction) jobs ran and which SAT checks they issued — must
//! be identical to the sequential run. That is the span-set test.
//!
//! Regenerate goldens with `GILA_REGEN_GOLDEN=1 cargo test --test
//! telemetry` after an intentional engine change, and review the diff.

use std::path::PathBuf;
use std::sync::Arc;

use gila::designs::all_case_studies;
use gila::trace::{canonicalize_jsonl, span_set, RingSink, Tracer};
use gila::verify::{
    identity_refmaps, synthesize_module, verify_module, ModuleReport, RefinementMap,
    SolveBudget, VerifyOptions,
};

/// The self-check fixture: the counter spec verified against its own
/// synthesized RTL (what `gila verify --spec specs/counter.ila` runs).
fn counter_fixture() -> (gila::core::ModuleIla, gila::rtl::RtlModule, Vec<RefinementMap>) {
    let ila = gila::lang::parse_ila(include_str!("../specs/counter.ila")).unwrap();
    let rtl = synthesize_module(&ila).unwrap();
    let maps = identity_refmaps(&ila);
    (ila, rtl, maps)
}

/// Runs `name`'s verification with `jobs` workers and a ring tracer,
/// returning the report and the raw JSONL trace.
fn traced_run(name: &str, jobs: usize) -> (ModuleReport, String) {
    let (tracer, ring): (Tracer, Arc<RingSink>) = Tracer::ring(100_000);
    let opts = VerifyOptions {
        jobs: Some(jobs),
        tracer,
        ..Default::default()
    };
    let report = match name {
        "counter" => {
            let (ila, rtl, maps) = counter_fixture();
            verify_module(&ila, &rtl, &maps, &opts).unwrap()
        }
        other => {
            let cs = all_case_studies()
                .into_iter()
                .find(|c| c.name == other)
                .unwrap_or_else(|| panic!("no case study {other:?}"));
            verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &opts).unwrap()
        }
    };
    let jsonl = ring
        .events()
        .iter()
        .map(|e| e.to_json_line())
        .collect::<Vec<_>>()
        .join("\n");
    (report, jsonl)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.trace"))
}

/// Diffs a canonicalized `jobs = 1` trace against the checked-in
/// golden; set `GILA_REGEN_GOLDEN=1` to rewrite it instead.
fn assert_matches_golden(name: &str) {
    let (report, jsonl) = traced_run(name, 1);
    assert!(report.all_hold(), "{name}: {report:#?}");
    let canon = canonicalize_jsonl(&jsonl).unwrap();
    let path = golden_path(name);
    if std::env::var("GILA_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &canon).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("no golden at {}: {e} (run with GILA_REGEN_GOLDEN=1)", path.display()));
    assert_eq!(
        canon,
        golden,
        "{name}: canonicalized trace diverged from {} — if the engine \
         change is intentional, regenerate with GILA_REGEN_GOLDEN=1",
        path.display()
    );
}

#[test]
fn counter_trace_matches_golden() {
    assert_matches_golden("counter");
}

#[test]
fn decoder_trace_matches_golden() {
    assert_matches_golden("Decoder");
}

#[test]
fn pooled_trace_performs_the_same_work_as_sequential() {
    for name in ["counter", "Decoder"] {
        let (seq_report, seq) = traced_run(name, 1);
        let (pool_report, pool) = traced_run(name, 4);
        assert!(seq_report.all_hold() && pool_report.all_hold(), "{name}");
        assert_eq!(
            span_set(&seq).unwrap(),
            span_set(&pool).unwrap(),
            "{name}: jobs=4 must issue exactly the jobs=1 span set"
        );
    }
}

#[test]
fn every_instruction_gets_a_span_with_counters() {
    let (report, jsonl) = traced_run("Decoder", 1);
    for port in &report.ports {
        for v in &port.verdicts {
            let span = jsonl
                .lines()
                .map(|l| gila::json::parse(l).unwrap())
                .find(|e| {
                    e.get("kind").and_then(|v| v.as_str()) == Some("instruction")
                        && e.get("port").and_then(|v| v.as_str()) == Some(port.port.as_str())
                        && e.get("instr").and_then(|v| v.as_str())
                            == Some(v.instruction.as_str())
                })
                .unwrap_or_else(|| panic!("no span for ({}, {})", port.port, v.instruction));
            // Solver counters and CNF deltas ride on the span and agree
            // with the verdict's telemetry fields.
            assert_eq!(
                span.get("decisions").and_then(|v| v.as_u64()),
                Some(v.effort.decisions)
            );
            assert_eq!(
                span.get("cnf_clauses").and_then(|v| v.as_u64()),
                Some(v.cnf_growth.clauses)
            );
            assert!(span.get("solves").and_then(|v| v.as_u64()).unwrap() >= 1);
        }
    }
}

#[test]
fn report_telemetry_sums_verdicts() {
    let (report, _) = traced_run("Decoder", 1);
    let t = &report.telemetry;
    assert_eq!(t.instructions as usize, report.instructions_checked());
    assert!(t.solves >= t.instructions);
    assert!(t.propagations > 0);
    assert!(t.cnf_clauses > 0);
    assert!(t.wall_ns > 0);
    assert_eq!(t.workers, 1);
    let summed: u64 = report.ports.iter().map(|p| p.telemetry.solves).sum();
    assert_eq!(t.solves, summed);
}

/// Budget-exhausted runs emit the new `budget_exhausted`/`retry` span
/// kinds — and ONLY such runs do, which is why the checked-in goldens
/// (recorded without budgets) stay valid without regeneration.
#[test]
fn exhausted_budgets_emit_spans_only_on_the_budgeted_path() {
    // Default run: no robustness spans anywhere in the trace.
    let (_, clean) = traced_run("counter", 1);
    for kind in ["budget_exhausted", "retry", "panic"] {
        assert!(
            !clean.contains(&format!("\"kind\":\"{kind}\"")),
            "default run leaked a {kind} span — goldens would break"
        );
    }
    // Budgeted run with a zero deadline: every attempt exhausts, each
    // retry is announced, and the report telemetry agrees.
    let (tracer, ring): (Tracer, Arc<RingSink>) = Tracer::ring(100_000);
    let (ila, rtl, maps) = counter_fixture();
    let opts = VerifyOptions {
        jobs: Some(1),
        tracer,
        budget: SolveBudget {
            conflicts: None,
            timeout: Some(std::time::Duration::ZERO),
        },
        retries: 1,
        ..Default::default()
    };
    let report = verify_module(&ila, &rtl, &maps, &opts).unwrap();
    let jsonl = ring
        .events()
        .iter()
        .map(|e| e.to_json_line())
        .collect::<Vec<_>>()
        .join("\n");
    let count = |kind: &str| {
        jsonl
            .lines()
            .filter(|l| l.contains(&format!("\"kind\":\"{kind}\"")))
            .count()
    };
    let instrs = report.instructions_checked();
    assert_eq!(report.counts().unknown, instrs);
    // Two attempts per instruction (initial + 1 retry), each exhausted.
    assert_eq!(count("budget_exhausted"), instrs * 2, "{jsonl}");
    assert_eq!(count("retry"), instrs, "{jsonl}");
    assert_eq!(report.telemetry.unknown, instrs as u64);
    assert_eq!(report.telemetry.retries, instrs as u64);
}

/// CI matrix hook: `GILA_TEST_JOBS` picks the pool size this suite
/// exercises (defaults to 1), so the same test binary covers both the
/// sequential and the pooled scheduler in separate CI legs.
#[test]
fn verification_holds_at_env_selected_job_count() {
    let jobs: usize = std::env::var("GILA_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let (report, jsonl) = traced_run("Decoder", jobs);
    assert!(report.all_hold(), "jobs={jobs}");
    assert!(report.telemetry.workers >= 1);
    assert!(span_set(&jsonl).unwrap().len() >= report.instructions_checked());
}
