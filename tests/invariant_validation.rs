//! Soundness of the refinement-map invariants: every invariant a case
//! study's maps assume must be provable on the RTL itself (from reset),
//! so the refinement results are not vacuous.

use gila::designs::all_case_studies;
use gila::mc::InductionOutcome;
use gila::verify::validate_invariants;

#[test]
fn every_case_study_invariant_is_inductive_on_its_rtl() {
    for cs in all_case_studies() {
        for map in &cs.refmaps {
            if map.invariants.is_empty() {
                continue;
            }
            let outcome = validate_invariants(&cs.rtl, &map.invariants, 2)
                .unwrap_or_else(|e| panic!("{}: invariant setup error {e}", cs.name));
            assert!(
                matches!(outcome, InductionOutcome::Proved { .. }),
                "{} / {}: invariants {:?} not proved: {outcome:?}",
                cs.name,
                map.name,
                map.invariants
            );
        }
    }
}

#[test]
fn violated_invariants_are_reported_with_reset_traces() {
    // A deliberately false invariant on the NoC router: the pointer does
    // reach 1 after a contended cycle.
    use gila::designs::openpiton::noc_router;
    let rtl = noc_router::rtl();
    let outcome = validate_invariants(&rtl, &["rt_rr == 3'd0".to_string()], 2).expect("setup");
    let InductionOutcome::Violated(cex) = outcome else {
        panic!("expected a violation, got {outcome:?}");
    };
    // The trace starts at reset (pointer 0) and shows the first advance.
    assert_eq!(cex.steps[0].states["rt_rr"].as_bv().to_u64(), 0);
    assert_ne!(
        cex.steps[cex.violation_step].states["rt_rr"]
            .as_bv()
            .to_u64(),
        0
    );
}
