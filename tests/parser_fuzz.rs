//! Grammar-driven fuzzing of the Verilog frontend: generate random
//! well-formed modules as source text, then require that (a) they parse
//! and elaborate, (b) they simulate without errors, and (c) the
//! emit -> reparse round trip is behaviour-preserving under random
//! stimulus.

use gila::expr::BitVecValue;
use gila::rtl::{parse_verilog, RtlSimulator};
use proptest::prelude::*;

/// A small expression grammar over the declared signals.
#[derive(Clone, Debug)]
enum GenExpr {
    Signal(u8),
    Literal(u8),
    Un(u8, Box<GenExpr>),
    Bin(u8, Box<GenExpr>, Box<GenExpr>),
    Tern(Box<GenExpr>, Box<GenExpr>, Box<GenExpr>),
}

fn gen_expr() -> impl Strategy<Value = GenExpr> {
    let leaf = prop_oneof![
        any::<u8>().prop_map(GenExpr::Signal),
        any::<u8>().prop_map(GenExpr::Literal),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (any::<u8>(), inner.clone()).prop_map(|(op, a)| GenExpr::Un(op, Box::new(a))),
            (any::<u8>(), inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| GenExpr::Bin(op, Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, a, b)| GenExpr::Tern(Box::new(c), Box::new(a), Box::new(b))),
        ]
    })
}

/// Renders a generated expression over `signals` (name, width) pairs.
fn render(e: &GenExpr, signals: &[(String, u32)]) -> String {
    match e {
        GenExpr::Signal(i) => signals[*i as usize % signals.len()].0.clone(),
        GenExpr::Literal(v) => format!("8'd{v}"),
        GenExpr::Un(op, a) => {
            let a = render(a, signals);
            match op % 3 {
                0 => format!("(~{a})"),
                1 => format!("(!{a})"),
                _ => format!("(-{a})"),
            }
        }
        GenExpr::Bin(op, a, b) => {
            let a = render(a, signals);
            let b = render(b, signals);
            let sym = match op % 14 {
                0 => "+",
                1 => "-",
                2 => "*",
                3 => "&",
                4 => "|",
                5 => "^",
                6 => "<<",
                7 => ">>",
                8 => "==",
                9 => "!=",
                10 => "<",
                11 => ">=",
                12 => "&&",
                _ => "||",
            };
            format!("({a} {sym} {b})")
        }
        GenExpr::Tern(c, a, b) => {
            let c = render(c, signals);
            let a = render(a, signals);
            let b = render(b, signals);
            format!("({c} ? {a} : {b})")
        }
    }
}

/// Assembles a module: two inputs, three registers, one always block
/// with generated RHSes (optionally under a generated condition).
fn module_source(exprs: &[GenExpr], cond: &Option<GenExpr>) -> String {
    let signals: Vec<(String, u32)> = vec![
        ("a".to_string(), 8),
        ("b".to_string(), 8),
        ("r0".to_string(), 8),
        ("r1".to_string(), 8),
        ("r2".to_string(), 8),
    ];
    let mut body = String::new();
    for (i, e) in exprs.iter().enumerate() {
        body.push_str(&format!("    r{} <= {};\n", i % 3, render(e, &signals)));
    }
    let always = match cond {
        Some(c) => format!(
            "  always @(posedge clk) begin\n    if ({}) begin\n{}    end\n  end\n",
            render(c, &signals),
            body.lines()
                .map(|l| format!("  {l}\n"))
                .collect::<String>()
        ),
        None => format!("  always @(posedge clk) begin\n{body}  end\n"),
    };
    format!(
        "module fuzzed(clk, a, b);\n  input clk;\n  input [7:0] a;\n  input [7:0] b;\n  \
         reg [7:0] r0;\n  reg [7:0] r1;\n  reg [7:0] r2;\n{always}endmodule\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_modules_parse_simulate_and_roundtrip(
        exprs in proptest::collection::vec(gen_expr(), 1..5),
        cond in proptest::option::of(gen_expr()),
        seeds in proptest::collection::vec(any::<u64>(), 2),
    ) {
        let src = module_source(&exprs, &cond);
        let m = parse_verilog(&src)
            .unwrap_or_else(|e| panic!("generated module rejected: {e}\n{src}"));
        m.validate().expect("closed module");
        // Round trip through the emitter.
        let emitted = m.to_verilog().expect("emittable subset");
        let m2 = parse_verilog(&emitted)
            .unwrap_or_else(|e| panic!("emitted text rejected: {e}\n{emitted}"));
        // Behavioural agreement under random stimulus.
        let mut s1 = RtlSimulator::new(&m);
        let mut s2 = RtlSimulator::new(&m2);
        let mut state = seeds.iter().fold(0u64, |acc, s| acc ^ s);
        for cycle in 0..30 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let av = (state >> 16) & 0xFF;
            let bv = (state >> 32) & 0xFF;
            let mut ins = std::collections::BTreeMap::new();
            ins.insert("clk".to_string(), BitVecValue::from_u64(1, 1));
            ins.insert("a".to_string(), BitVecValue::from_u64(av, 8));
            ins.insert("b".to_string(), BitVecValue::from_u64(bv, 8));
            s1.step(&ins).expect("valid inputs");
            s2.step(&ins).expect("valid inputs");
            prop_assert_eq!(
                s1.state(), s2.state(),
                "cycle {}: emit/reparse diverged\noriginal:\n{}\nemitted:\n{}",
                cycle, src, emitted
            );
        }
    }
}
