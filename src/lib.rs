//! # gila — Generalized Instruction-Level Abstractions
//!
//! Façade crate re-exporting the full gila platform: modeling of general
//! hardware modules with Instruction-Level Abstractions (ILAs), composition
//! of port-ILAs (including shared-state integration), and complete
//! instruction-by-instruction formal verification of RTL implementations
//! against module-ILA specifications.
//!
//! See the individual crates for details:
//! - [`expr`]: expression DSL (bool / bitvector / memory sorts)
//! - [`absint`]: abstract interpretation (inductive invariants, lint discharge)
//! - [`core`]: ILA model, ports, composition, simulation
//! - [`rtl`]: RTL IR, Verilog-subset frontend, simulator
//! - [`sat`] / [`smt`]: CDCL SAT solver and bit-blaster
//! - [`mc`]: transition systems and bounded model checking
//! - [`verify`]: refinement maps, property generation, verification engine
//! - [`lint`]: SAT-backed static analysis with structured diagnostics
//! - [`trace`]: structured verification telemetry (spans, counters, sinks)
//! - [`designs`]: the eight DATE 2021 case studies
pub use gila_absint as absint;
pub use gila_core as core;
pub use gila_designs as designs;
pub use gila_expr as expr;
pub use gila_json as json;
pub use gila_lang as lang;
pub use gila_lint as lint;
pub use gila_mc as mc;
pub use gila_rtl as rtl;
pub use gila_sat as sat;
pub use gila_sim_compile as sim_compile;
pub use gila_smt as smt;
pub use gila_trace as trace;
pub use gila_verify as verify;
