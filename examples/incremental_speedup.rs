//! Compares isolated per-instruction solving with the incremental
//! shared-solver mode across the case studies.
//!
//! ```text
//! cargo run --release --example incremental_speedup
//! ```

use gila::designs::all_case_studies;
use gila::verify::{verify_module, VerifyOptions};
use std::time::Instant;

fn main() {
    for cs in all_case_studies() {
        if cs.name == "Datapath" { continue; }
        let t0 = Instant::now();
        let base = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &VerifyOptions::default()).unwrap();
        let t_base = t0.elapsed();
        let t0 = Instant::now();
        let inc = verify_module(&cs.ila, &cs.rtl, &cs.refmaps, &VerifyOptions { incremental: true, ..Default::default() }).unwrap();
        let t_inc = t0.elapsed();
        assert!(base.all_hold() && inc.all_hold(), "{}", cs.name);
        println!("{:<15} isolated {:>9.2?}  incremental {:>9.2?}  ({:.1}x)", cs.name, t_base, t_inc, t_base.as_secs_f64()/t_inc.as_secs_f64());
    }
}
