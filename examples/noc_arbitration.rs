//! Round-robin integration at scale: the OpenPiton NoC router
//! (paper §V.C.3).
//!
//! Ten ports integrate down to two; the five IN-ports' conflicting
//! writes to the shared routing table are arbitrated round-robin, with
//! the arbiter pointer materialized as a new architectural state. The
//! example simulates contended cycles on the ILA and shows the pointer
//! rotating, then verifies all 64 integrated instructions against RTL.
//!
//! ```text
//! cargo run --release --example noc_arbitration
//! ```

use std::collections::BTreeMap;

use gila::core::PortSimulator;
use gila::designs::openpiton::noc_router;
use gila::expr::{BitVecValue, Value};
use gila::verify::{verify_module, VerifyOptions};

fn bv(x: u64, w: u32) -> Value {
    Value::Bv(BitVecValue::from_u64(x, w))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let in_port = noc_router::integrated_in_port();
    println!(
        "integrated IN-port: {} atomic instructions (2^5 combinations of 5 ports)",
        in_port.num_atomic_instructions()
    );

    // Simulate three fully-contended cycles: every direction receives a
    // packet for destination 0 simultaneously. The round-robin pointer
    // decides whose route is learned, then advances past the winner.
    let mut sim = PortSimulator::new(&in_port);
    let mut inputs = BTreeMap::new();
    for dir in noc_router::DIRS {
        inputs.insert(format!("in_{dir}_valid"), bv(1, 1));
        inputs.insert(format!("in_{dir}_dest"), bv(0, 3));
        inputs.insert(format!("in_{dir}_data"), bv(0xAB, 8));
    }
    println!("\nfully contended cycles (all five ports receive dest=0):");
    for cycle in 0..3 {
        let fired = sim.step(&inputs)?;
        let rt = sim.state()["rt"].as_mem().read(&BitVecValue::from_u64(0, 3));
        let ptr = sim.state()["rt_rr"].as_bv().to_u64();
        println!(
            "  cycle {cycle}: fired {fired}; rt[0] learned port {}; pointer now {ptr}",
            rt.to_u64()
        );
    }

    // A single receiver does not move the pointer.
    for dir in noc_router::DIRS {
        inputs.insert(format!("in_{dir}_valid"), bv(0, 1));
    }
    inputs.insert("in_w_valid".to_string(), bv(1, 1));
    let fired = sim.step(&inputs)?;
    println!(
        "  single receiver: fired {fired}; rt[0] now {}; pointer unchanged at {}",
        sim.state()["rt"]
            .as_mem()
            .read(&BitVecValue::from_u64(0, 3))
            .to_u64(),
        sim.state()["rt_rr"].as_bv().to_u64()
    );

    println!("\n== verifying all 64 integrated instructions against the RTL ==");
    let report = verify_module(
        &noc_router::ila(),
        &noc_router::rtl(),
        &noc_router::refinement_maps(),
        &VerifyOptions::default(),
    )?;
    assert!(report.all_hold());
    println!(
        "verified {} instructions in {:.2?} — the RTL's round-robin arbiter \
         matches the integration resolver exactly",
        report.instructions_checked(),
        report.total_time()
    );
    Ok(())
}
