//! The assembled 8051: the paper's three modules (decoder, datapath,
//! memory interface) instantiated in one hierarchical netlist, flattened,
//! and verified module-by-module with instance-prefixed refinement maps.
//!
//! ```text
//! cargo run --release --example full_chip_8051
//! ```

use gila::designs::i8051::top;
use gila::verify::{abstract_rtl_memory, verify_module, VerifyOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = top::rtl();
    println!(
        "flattened i8051_top: {} registers, {} memories, {} state bits\n",
        chip.regs().len(),
        chip.mems().len(),
        chip.state_bits()
    );
    // Shrink the datapath RAM (the paper's small-memory modeling).
    let chip = abstract_rtl_memory(&chip, "u_dp__iram", 4)?;

    let mut total = 0;
    for (ila, maps) in top::module_checks() {
        let report = verify_module(&ila, &chip, &maps, &VerifyOptions::default())?;
        let status = if report.all_hold() { "verified" } else { "FAILED" };
        println!(
            "{:<12} {:>2} instructions {status} in {:.2?}",
            ila.name(),
            report.instructions_checked(),
            report.total_time()
        );
        assert!(report.all_hold());
        total += report.instructions_checked();
    }
    println!("\nall {total} instruction properties hold on the full-chip netlist");
    Ok(())
}
