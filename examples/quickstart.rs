//! Quickstart: the full verification flow of the paper's Fig. 4 on a
//! small custom module.
//!
//! 1. Model the module as a port-ILA (instructions = decode + updates).
//! 2. Write (or parse) the RTL implementation.
//! 3. Supply a refinement map (state map, interface map, instruction map).
//! 4. Auto-generate and check one property per instruction.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gila::core::{PortIla, StateKind};
use gila::expr::Sort;
use gila::rtl::parse_verilog;
use gila::verify::{render_all_properties, verify_port, RefinementMap, VerifyOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Step 1: the specification: a byte accumulator with three
    //     instructions at its single command interface.
    let mut ila = PortIla::new("accumulator");
    let cmd = ila.input("cmd", Sort::Bv(2));
    let operand = ila.input("operand", Sort::Bv(8));
    let total = ila.state("total", Sort::Bv(8), StateKind::Output);

    let d = ila.ctx_mut().eq_u64(cmd, 0);
    ila.instr("NOP").decode(d).add()?;

    let d = ila.ctx_mut().eq_u64(cmd, 1);
    let sum = ila.ctx_mut().bvadd(total, operand);
    ila.instr("ACCUMULATE").decode(d).update("total", sum).add()?;

    let d = {
        let ctx = ila.ctx_mut();
        let c2 = ctx.eq_u64(cmd, 2);
        let c3 = ctx.eq_u64(cmd, 3);
        ctx.or(c2, c3)
    };
    let zero = ila.ctx_mut().bv_u64(0, 8);
    ila.instr("CLEAR").decode(d).update("total", zero).add()?;

    // --- Step 2: the implementation (Verilog subset).
    let rtl = parse_verilog(
        r#"
module accumulator(clk, cmd_in, val_in);
  input clk;
  input [1:0] cmd_in;
  input [7:0] val_in;
  reg [7:0] acc_r;
  always @(posedge clk) begin
    case (cmd_in)
      2'd0: acc_r <= acc_r;
      2'd1: acc_r <= acc_r + val_in;
      default: acc_r <= 8'd0;
    endcase
  end
endmodule
"#,
    )?;

    // --- Step 3: the refinement map.
    let mut map = RefinementMap::new("accumulator");
    map.map_state("total", "acc_r");
    map.map_input("cmd", "cmd_in");
    map.map_input("operand", "val_in");

    // --- Step 4: auto-generated properties, then the refinement check.
    println!("Auto-generated properties (Fig. 5 form):\n");
    println!("{}", render_all_properties(&ila, &map));

    let report = verify_port(&ila, &rtl, &map, &VerifyOptions::default())?;
    for v in &report.verdicts {
        println!(
            "instruction {:<12} -> {:?}  ({} CNF clauses, {:.2?})",
            v.instruction,
            if v.result.holds() { "HOLDS" } else { "FAILS" },
            v.stats.clauses,
            v.time,
        );
    }
    assert!(report.all_hold());
    println!("\nAll {} instructions verified: the RTL refines the ILA.", report.verdicts.len());
    Ok(())
}
