//! Liveness checking (the paper's §VI extension): justice properties
//! `GF p` on RTL, via the liveness-to-safety transformation.
//!
//! The AXI master's write engine should always eventually complete a
//! transaction (`GF host_wr_done_r`) — but only under fairness: if the
//! slave never acknowledges, the engine legitimately stalls forever.
//! The checker finds the stalling lasso without fairness and proves the
//! bounded absence of lassos with it.
//!
//! ```text
//! cargo run --release --example liveness
//! ```

use gila::designs::axi::master;
use gila::mc::{check_justice, LivenessOutcome};
use gila::verify::rtl_to_ts;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rtl = master::rtl();
    let (mut ts, signals) = rtl_to_ts(&rtl)?;

    // Justice: the write-done pulse recurs forever.
    let done = signals["host_wr_done_r"];
    let justice = ts.ctx_mut().eq_u64(done, 1);

    println!("== GF host_wr_done with an unconstrained environment ==");
    match check_justice(&ts, justice, 8) {
        LivenessOutcome::LassoFound(cex) => {
            println!(
                "lasso found (loop closes at step {}): the environment can stall the engine.",
                cex.violation_step
            );
            let last = &cex.steps[cex.violation_step];
            println!(
                "  looping with wr_phase = {} and host_wr_done = {}",
                last.states["wr_phase"].as_bv().to_u64(),
                last.states["host_wr_done_r"].as_bv().to_u64()
            );
        }
        other => panic!("expected a stalling lasso, got {other:?}"),
    }

    println!("\n== same property under fairness (requests keep coming, the slave always acks) ==");
    for fair_signal in [
        "host_wr_req",
        "s_wr_addr_ready",
        "s_wr_data_ready",
        "s_wr_resp_valid",
    ] {
        let v = signals[fair_signal];
        let c = ts.ctx_mut().eq_u64(v, 1);
        ts.add_constraint(c);
    }
    match check_justice(&ts, justice, 8) {
        LivenessOutcome::NoLassoUpTo(k) => {
            println!("no violating lasso with stem+loop up to {k} steps: the engine makes progress.")
        }
        other => panic!("expected progress, got {other:?}"),
    }
    Ok(())
}
