//! Small-memory abstraction: the paper's §V.B.3 ablation on the 8051
//! datapath.
//!
//! The datapath's 256-byte internal RAM dominates the SAT encoding; the
//! "standard small memory modeling" shrinks it to 16 bytes on both the
//! ILA and RTL sides, cutting verification time by more than an order
//! of magnitude (the paper: 176 s -> 9.5 s).
//!
//! ```text
//! cargo run --release --example memory_abstraction
//! ```

use std::time::Instant;

use gila::designs::i8051::datapath;
use gila::verify::{verify_module, VerifyOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let maps = datapath::refinement_maps();
    let opts = VerifyOptions::default();

    println!("== full-size datapath (256-byte internal RAM) ==");
    let t0 = Instant::now();
    let full = verify_module(&datapath::ila(), &datapath::rtl(), &maps, &opts)?;
    assert!(full.all_hold());
    let full_time = t0.elapsed();
    println!(
        "verified {} instructions in {:.2?}; peak CNF: {} clauses (~{:.1} MB)",
        full.instructions_checked(),
        full_time,
        full.peak_stats().clauses,
        full.peak_stats().estimated_mb()
    );

    println!("\n== abstracted datapath (16-byte RAM on both sides) ==");
    let t0 = Instant::now();
    let abst = verify_module(
        &datapath::ila_abstracted(),
        &datapath::rtl_abstracted(),
        &maps,
        &opts,
    )?;
    assert!(abst.all_hold());
    let abst_time = t0.elapsed();
    println!(
        "verified {} instructions in {:.2?}; peak CNF: {} clauses (~{:.1} MB)",
        abst.instructions_checked(),
        abst_time,
        abst.peak_stats().clauses,
        abst.peak_stats().estimated_mb()
    );

    println!(
        "\nspeedup: {:.1}x (the paper reports 176 s -> 9.5 s = 18.5x on its testbed)",
        full_time.as_secs_f64() / abst_time.as_secs_f64().max(1e-9)
    );
    Ok(())
}
