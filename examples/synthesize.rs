//! Specification-to-implementation synthesis: generate Verilog directly
//! from a module-ILA, then prove the generated RTL correct with the
//! same refinement engine (and export the spec as SMT-LIB for external
//! cross-checking).
//!
//! ```text
//! cargo run --release --example synthesize
//! ```

use gila::designs::i8051::mem_iface;
use gila::expr::to_smtlib_script;
use gila::verify::{identity_refmaps, synthesize_module, verify_module, VerifyOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ila = mem_iface::ila();
    println!(
        "synthesizing RTL from the {} module-ILA ({} instructions across {} ports)...\n",
        ila.name(),
        ila.stats().instructions,
        ila.stats().ports
    );
    let rtl = synthesize_module(&ila)?;
    let verilog = rtl.to_verilog()?;
    println!("---- generated Verilog ({} lines) ----", verilog.lines().count());
    for line in verilog.lines().take(24) {
        println!("{line}");
    }
    println!("  ... ({} more lines)\n", verilog.lines().count().saturating_sub(24));

    let path = std::env::temp_dir().join("gila_mem_iface_synth.v");
    std::fs::write(&path, &verilog)?;
    println!("full module written to {}\n", path.display());

    // The generated implementation is correct by construction — prove it.
    let maps = identity_refmaps(&ila);
    let report = verify_module(&ila, &rtl, &maps, &VerifyOptions::default())?;
    assert!(report.all_hold());
    println!(
        "refinement check: all {} instructions verified in {:.2?}",
        report.instructions_checked(),
        report.total_time()
    );

    // Export one decode condition as SMT-LIB for external solvers.
    let port = &ila.ports()[0];
    let instr = &port.instructions()[0];
    let mut ctx = port.ctx().clone();
    let decode = instr.decode;
    let _ = &mut ctx;
    let script = to_smtlib_script(&ctx, &[decode]);
    println!(
        "\nSMT-LIB export of {:?}'s decode condition:\n{script}",
        instr.name
    );
    Ok(())
}
