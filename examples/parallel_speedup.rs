//! Measures the multi-core speedup of parallel per-instruction
//! verification on the heaviest design (the full 256-byte-RAM datapath).
//!
//! ```text
//! cargo run --release --example parallel_speedup
//! ```

use gila::designs::i8051::datapath;
use gila::verify::{verify_module, VerifyOptions};
use std::time::Instant;

fn main() {
    let (ila, rtl, maps) = (datapath::ila(), datapath::rtl(), datapath::refinement_maps());
    let t0 = Instant::now();
    let r = verify_module(&ila, &rtl, &maps, &VerifyOptions::default()).unwrap();
    assert!(r.all_hold());
    let seq = t0.elapsed();
    let t0 = Instant::now();
    let r = verify_module(&ila, &rtl, &maps, &VerifyOptions { parallel: true, ..Default::default() }).unwrap();
    assert!(r.all_hold());
    let par = t0.elapsed();
    println!("sequential: {seq:.2?}  parallel: {par:.2?}  speedup: {:.1}x", seq.as_secs_f64()/par.as_secs_f64());
}
