//! Bug hunt: reproduces the paper's AXI slave finding (§V.B.1).
//!
//! The slave's READ port must compute outgoing data from the burst mode
//! *latched at address commit* (`tx_rd_burst`); the buggy implementation
//! reads the live `rd_burst_in` input instead. The refinement check
//! produces a counterexample trace in milliseconds (the paper: 0.01 s
//! with JasperGold).
//!
//! ```text
//! cargo run --release --example bug_hunt
//! ```

use gila::designs::axi::slave;
use gila::verify::{cex_to_vcd, verify_module, CheckResult, VerifyOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ila = slave::ila();
    let maps = slave::refinement_maps();

    println!("== verifying the buggy AXI slave ==");
    let opts = VerifyOptions {
        stop_at_first_cex: true,
        ..Default::default()
    };
    let report = verify_module(&ila, &slave::buggy_rtl(), &maps, &opts)?;
    let port = &report.ports[0];
    let v = port
        .first_counterexample()
        .expect("the injected bug must be found");
    println!(
        "counterexample found in {:.2?} at instruction {:?}\n",
        report.time_to_first_counterexample().expect("bug found"),
        v.instruction
    );
    let CheckResult::CounterExample(cex) = &v.result else {
        unreachable!()
    };
    println!("mismatched architectural states: {:?}", cex.mismatched_states);
    println!("\nRTL start state (cycle 0):");
    for (name, value) in &cex.rtl_start_state {
        println!("  {name:<18} = {value:?}");
    }
    println!("\ninputs applied at cycle 0:");
    for (name, value) in &cex.rtl_inputs[0] {
        println!("  {name:<18} = {value:?}");
    }
    println!("\nRTL state at the finish cycle:");
    for (name, value) in &cex.rtl_finish_state {
        println!("  {name:<18} = {value:?}");
    }
    println!("\nILA post-state (what the specification requires):");
    for (name, value) in &cex.ila_post_state {
        println!("  {name:<18} = {value:?}");
    }
    println!(
        "\nNote how rd_burst_in != tx_rd_burst in the witness: the \
         implementation used the wrong one."
    );

    // Dump the trace for a waveform viewer.
    let vcd = cex_to_vcd(cex, "axi_slave");
    let path = std::env::temp_dir().join("gila_axi_slave_bug.vcd");
    std::fs::write(&path, vcd)?;
    println!("\nwaveform written to {}", path.display());

    println!("\n== verifying the fixed AXI slave ==");
    let report = verify_module(&ila, &slave::rtl(), &maps, &VerifyOptions::default())?;
    assert!(report.all_hold());
    println!(
        "all {} instructions verified in {:.2?}",
        report.instructions_checked(),
        report.total_time()
    );
    Ok(())
}
