//! Shared-state integration: the 8051 memory interface (paper §III-C).
//!
//! Shows the methodology's handling of ports that update the same
//! architectural state:
//!
//! 1. Integrating the ROM- and RAM-ports *without* a conflict resolver
//!    flags the exact instruction combinations the informal
//!    specification leaves ambiguous (**specification gaps**).
//! 2. Encoding the documented rule ("an update of `mem_wait` to 1 has
//!    priority over an update to 0") as a `ValuePriorityResolver` yields
//!    the integrated ROM-RAM port of Fig. 3 with 3 x 3 = 9 instructions.
//! 3. The integrated module-ILA then verifies against the RTL.
//!
//! ```text
//! cargo run --release --example shared_state
//! ```

use gila::core::{integrate, shared_states, IntegrateError, NoResolver, ValuePriorityResolver};
use gila::designs::i8051::mem_iface;
use gila::expr::BitVecValue;
use gila::verify::{verify_module, VerifyOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rom = mem_iface::rom_port();
    let ram = mem_iface::ram_port();
    println!(
        "ROM-port and RAM-port share state(s): {:?}\n",
        shared_states(&[&rom, &ram])
    );

    println!("== integrating with no conflict resolver ==");
    match integrate("ROM-RAM", &[&rom, &ram], &NoResolver) {
        Err(IntegrateError::SpecificationGaps(gaps)) => {
            println!("specification gaps found ({}):", gaps.len());
            for g in &gaps {
                println!("  - {g}");
            }
        }
        other => panic!("expected specification gaps, got {other:?}"),
    }

    println!("\n== integrating with the documented priority rule ==");
    let resolver = ValuePriorityResolver::new(BitVecValue::from_u64(1, 1));
    let integrated = integrate("ROM-RAM-PORT", &[&rom, &ram], &resolver)?;
    println!(
        "integrated port has {} instructions (vs {} + {} before):",
        integrated.num_atomic_instructions(),
        rom.num_atomic_instructions(),
        ram.num_atomic_instructions()
    );
    for i in integrated.instructions() {
        let updated: Vec<&str> = i.updates.keys().map(String::as_str).collect();
        println!("  {:<22} updates {}", i.name, updated.join(", "));
    }

    println!("\n== verifying the full memory interface against its RTL ==");
    let report = verify_module(
        &mem_iface::ila(),
        &mem_iface::rtl(),
        &mem_iface::refinement_maps(),
        &VerifyOptions::default(),
    )?;
    assert!(report.all_hold());
    println!(
        "all {} instructions across {} ports verified in {:.2?}",
        report.instructions_checked(),
        report.ports.len(),
        report.total_time()
    );
    Ok(())
}
