//! The textual specification path: load a `.ila` file, smoke-test it by
//! random co-simulation against the RTL, then prove it with the
//! refinement engine — the recommended bring-up workflow.
//!
//! ```text
//! cargo run --release --example dsl_quickstart
//! ```

use gila::lang::parse_ila;
use gila::rtl::parse_verilog;
use gila::verify::{cosimulate, verify_module, RefinementMap, VerifyOptions};

const SPEC: &str = include_str!("../specs/counter.ila");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the specification.
    let ila = parse_ila(SPEC)?;
    println!("{}", ila.describe());

    // 2. The implementation under test.
    let rtl = parse_verilog(
        r#"
module counter(clk, en_in);
  input clk; input en_in;
  reg [7:0] count;
  always @(posedge clk) if (en_in) count <= count + 8'd1;
endmodule
"#,
    )?;

    // 3. The refinement map (what the paper stores as JSON).
    let mut map = RefinementMap::new("counter");
    map.map_state("cnt", "count");
    map.map_input("en", "en_in");
    println!("refinement map ({} JSON lines):\n{}\n", map.size_loc(), map.to_json());

    // 4. Cheap first: co-simulate a few thousand random cycles.
    for seed in 0..8 {
        match cosimulate(&ila.ports()[0], &rtl, &map, seed, 2_000)? {
            None => {}
            Some(d) => {
                println!("co-simulation found a divergence: {d}");
                return Ok(());
            }
        }
    }
    println!("co-simulation: 16,000 random cycles without divergence");

    // 5. Then prove it for all inputs and states.
    let report = verify_module(&ila, &rtl, &[map], &VerifyOptions::default())?;
    assert!(report.all_hold());
    println!(
        "proof: all {} instruction properties hold ({:.2?})",
        report.instructions_checked(),
        report.total_time()
    );
    Ok(())
}
