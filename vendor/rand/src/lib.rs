//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `gen`, `gen_bool`
//! and `gen_range` over integer ranges. The generator is splitmix64 —
//! deterministic, seedable, and statistically plenty for test-input
//! generation (no cryptographic claims).

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is offered).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from the full domain via `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                (lo + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u128 + 1;
                (lo + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, blanket-implemented for every
/// `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        // 53 uniform mantissa bits give a fraction in [0, 1).
        let frac = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        frac < p
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(3..=8usize);
            assert!((3..=8).contains(&v));
            let w = rng.gen_range(0..256);
            assert!((0..256).contains(&w));
            let x = rng.gen_range(0..64u64);
            assert!(x < 64);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
