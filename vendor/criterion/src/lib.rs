//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of criterion it uses: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, warm_up_time, measurement_time,
//! bench_function, finish}`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurements are plain
//! wall-clock statistics (mean/min/max over the collected samples)
//! printed to stdout — no HTML reports, outlier analysis, or comparison
//! against saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level bench context. Groups are purely organizational here.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Accepted for CLI compatibility; filtering options are ignored.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: self.default_sample_size,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Ungrouped single-function form.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        let mut group = BenchmarkGroup {
            _parent: self,
            name: String::new(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(3),
        };
        group.bench_function(id, f);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// A named set of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        bencher.report(&label);
        self
    }

    pub fn finish(self) {}
}

/// Runs the measured closure and records per-iteration wall-clock times.
pub struct Bencher {
    samples: Vec<Duration>,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.samples.clear();
        // Warm-up: run untimed until the warm-up budget elapses (at
        // least once, so one-shot setup costs don't pollute sample 0).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: up to `sample_size` samples within the time budget
        // (always at least one sample).
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if measure_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label}: no samples collected");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("non-empty");
        let max = *self.samples.iter().max().expect("non-empty");
        println!(
            "{label}: time [{} .. {} .. {}] ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Defines a function running the listed bench targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_bounded_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs >= 6, "warm-up plus at least five samples");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
