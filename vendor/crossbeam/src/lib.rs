//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the two pieces it uses:
//!
//! * [`thread::scope`] — crossbeam's scoped-thread API, implemented on
//!   top of `std::thread::scope` (stable since 1.63). Panics in spawned
//!   threads that the caller joined are reported through the returned
//!   `Result`, matching crossbeam's contract.
//! * [`deque`] — `Injector`/`Worker`/`Stealer` work-stealing queues. The
//!   lock-free Chase-Lev deques of real crossbeam are replaced by
//!   mutex-protected ring buffers; the scheduler's job granularity (one
//!   bounded-model-check per job, milliseconds to seconds each) makes
//!   queue contention irrelevant.

pub mod thread {
    use std::any::Any;
    use std::marker::PhantomData;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Error payload of a panicked scope: the panic value of the first
    /// unhandled child panic (or of the closure itself).
    pub type ScopeResult<R> = Result<R, Box<dyn Any + Send + 'static>>;

    /// A handle for spawning scoped threads; wraps `std::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        _marker: PhantomData<&'env ()>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again
        /// (crossbeam convention) so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    f(&Scope {
                        inner,
                        _marker: PhantomData,
                    })
                }),
            }
        }
    }

    /// Join handle for a scoped thread; `join` returns `Err` with the
    /// panic payload if the thread panicked.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope in which threads borrowing from the calling
    /// stack frame can be spawned; all spawned threads are joined before
    /// `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                f(&Scope {
                    inner: s,
                    _marker: PhantomData,
                })
            })
        }))
    }
}

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Outcome of a steal attempt. The mutex-backed implementation never
    /// yields `Retry`; it exists for API compatibility with retry loops
    /// written against real crossbeam.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }
    }

    /// A global FIFO injection queue shared by reference among workers.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Injector<T> {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, task: T) {
            self.queue.lock().expect("injector poisoned").push_back(task);
        }

        pub fn steal(&self) -> Steal<T> {
            match self.queue.lock().expect("injector poisoned").pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Moves a batch of tasks into `dest`'s local queue and returns
        /// one task from the batch.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut queue = self.queue.lock().expect("injector poisoned");
            let first = match queue.pop_front() {
                Some(t) => t,
                None => return Steal::Empty,
            };
            // Take up to half of what remains (capped like crossbeam's
            // batch limit) so other workers still find work.
            let extra = (queue.len() / 2).min(16);
            let mut local = dest.inner.lock().expect("worker poisoned");
            for _ in 0..extra {
                match queue.pop_front() {
                    Some(t) => local.push_back(t),
                    None => break,
                }
            }
            Steal::Success(first)
        }

        pub fn is_empty(&self) -> bool {
            self.queue.lock().expect("injector poisoned").is_empty()
        }

        pub fn len(&self) -> usize {
            self.queue.lock().expect("injector poisoned").len()
        }
    }

    /// A worker-owned queue; other threads steal through [`Stealer`]
    /// handles created by [`Worker::stealer`].
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_fifo() -> Worker<T> {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn new_lifo() -> Worker<T> {
            // LIFO scheduling order is an optimization, not a contract;
            // the mutex-backed queue serves FIFO either way.
            Worker::new_fifo()
        }

        pub fn push(&self, task: T) {
            self.inner.lock().expect("worker poisoned").push_back(task);
        }

        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("worker poisoned").pop_front()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("worker poisoned").is_empty()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().expect("worker poisoned").len()
        }
    }

    /// A handle for stealing from another worker's queue.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals from the far end of the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match self.inner.lock().expect("worker poisoned").pop_back() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        pub fn is_empty(&self) -> bool {
            self.inner.lock().expect("worker poisoned").is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let sum = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| scope.spawn(move |_| x * 2))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<u64>()
        })
        .expect("scope completes");
        assert_eq!(sum, 20);
    }

    #[test]
    fn joined_panics_surface_as_errors() {
        let result = super::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join().is_err()
        });
        assert!(result.expect("scope itself completes"));
    }

    #[test]
    fn injector_fans_out_every_task_exactly_once() {
        let injector = Injector::new();
        const N: usize = 1000;
        for i in 0..N {
            injector.push(i);
        }
        let seen = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    let local: Worker<usize> = Worker::new_fifo();
                    loop {
                        let task = local.pop().or_else(|| {
                            injector.steal_batch_and_pop(&local).success()
                        });
                        match task {
                            Some(_) => {
                                seen.fetch_add(1, Ordering::Relaxed);
                            }
                            None => break,
                        }
                    }
                });
            }
        })
        .expect("workers complete");
        assert_eq!(seen.load(Ordering::Relaxed), N);
    }

    #[test]
    fn stealers_drain_worker_queues() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(w.pop(), Some(1));
        assert!(s.steal().is_empty());
    }
}
