//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest it uses: the `proptest!` macro, `Strategy` with
//! `prop_map`/`prop_recursive`, `any`, `Just`, `prop_oneof!`, tuple and
//! range strategies, `collection::vec`, `option::of`, and the
//! `prop_assert*`/`prop_assume!` macros. Inputs are generated from a
//! deterministic per-test seed; failing cases therefore reproduce exactly.
//! There is **no shrinking** — a failure reports the generated values via
//! the assertion message instead of a minimized case.

pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Size specification for [`vec`]: an exact length or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub(crate) lo: usize,
        pub(crate) hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            SizeRange {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_excl: *r.end() + 1,
            }
        }
    }

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy producing `None` roughly a quarter of the time and
    /// `Some` of the inner strategy's value otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines deterministic random-input test functions.
///
/// Accepts an optional leading `#![proptest_config(...)]` and one or more
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut ran: u32 = 0;
            let mut rejected: u32 = 0;
            while ran < config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        let ok: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                            ::core::result::Result::Ok(());
                        ok
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => ran += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        if rejected > config.cases.saturating_mul(16) + 256 {
                            panic!(
                                "proptest {}: too many rejected cases ({} accepted)",
                                stringify!($name),
                                ran
                            );
                        }
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!("proptest {} (case {}): {}", stringify!($name), ran, msg)
                    }
                }
            }
        }
    )*};
}

/// Chooses uniformly among the given strategies (which must share a value
/// type). Weights are not supported by this stand-in.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (without counting it) when the condition is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_any(x in 1u32..65, b in any::<bool>(), v in any::<u64>()) {
            prop_assert!((1..65).contains(&x));
            let _ = (b, v);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn composite_strategies(
            xs in crate::collection::vec((0usize..8, any::<u8>()), 1..12),
            o in crate::option::of(Just(3u8)),
            tagged in prop_oneof![Just(0u8), (1u8..4).prop_map(|v| v * 10)],
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 12);
            for (a, _) in &xs {
                prop_assert!(*a < 8);
            }
            if let Some(v) = o {
                prop_assert_eq!(v, 3);
            }
            prop_assert!(tagged == 0 || (10..=30).contains(&tagged));
        }
    }

    #[derive(Clone, Debug)]
    #[allow(dead_code)] // Leaf payload exists to exercise prop_map, not to be read
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_strategies_bound_depth(
            t in any::<u8>().prop_map(Tree::Leaf).prop_recursive(3, 24, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            }),
        ) {
            prop_assert!(depth(&t) <= 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        let s = crate::collection::vec(0u64..1000, 3..9);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
