//! The `Strategy` trait and the combinators this workspace uses.
//!
//! A strategy is just a deterministic-from-RNG value generator; unlike
//! real proptest there is no shrinking tree, so combinators compose by
//! direct generation.

use std::rc::Rc;

use crate::collection::SizeRange;
use crate::test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Builds a bounded-depth recursive strategy: `recurse` receives a
    /// strategy for the shallower levels and returns the strategy for one
    /// level up. `desired_size` and `expected_branch_size` are accepted
    /// for API compatibility but only `depth` bounds generation.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // Mix leaves back in at every level so generated structures
            // vary in depth rather than always bottoming out at `depth`.
            current = Union::weighted(vec![(1, leaf.clone()), (2, recurse(current).boxed())]).boxed();
        }
        current
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A clonable, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    pub(crate) source: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform or weighted choice among same-valued strategies
/// (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u32,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!options.is_empty(), "Union of zero strategies");
        let total_weight = options.iter().map(|(w, _)| *w).sum();
        assert!(total_weight > 0, "Union with zero total weight");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight as usize) as u32;
        for (w, s) in &self.options {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

/// `any::<T>()` — the canonical full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

#[derive(Clone, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical `any()` strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias ~1/8 of draws toward the edge values that uniform
                // sampling of wide domains essentially never hits.
                if rng.below(8) == 0 {
                    match rng.below(3) {
                        0 => 0 as $t,
                        1 => 1 as $t,
                        _ => <$t>::MAX,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                (lo + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi - lo) as u128 + 1;
                (lo + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `collection::vec` combinator.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi_excl - self.size.lo;
        let len = self.size.lo + if span > 0 { rng.below(span) } else { 0 };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `option::of` combinator.
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
