//! Deterministic test-case generation machinery: the per-test RNG,
//! run configuration, and the reject/fail result type threaded through
//! the `prop_assert*` macros.

/// Splitmix64 generator seeded from the test name (or an explicit seed),
/// so every run of a given test sees the same case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the FNV-1a hash of `name`; honors `PROPTEST_SEED` (an
    /// integer) as an override for reproducing alternative sequences.
    pub fn deterministic(name: &str) -> TestRng {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.trim().parse::<u64>() {
                return TestRng { state: seed };
            }
        }
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "TestRng::below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// Run configuration; only the case count is configurable.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not counted.
    Reject(&'static str),
    /// A `prop_assert*!` failed — the test fails with this message.
    Fail(String),
}
